// table2_summary — regenerates Table II: per application the maximum
// speedup over all placements, the HBM-only speedup, and the HBM usage of
// the smallest configuration achieving 90 % of the maximum; paper values
// are printed alongside for comparison.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace hmpt;
  bench::print_header("Table II",
                      "summary of results on the selected benchmarks");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "Max Speedup", "HBM-only Speedup",
               "90% Speedup HBM Usage [%]", "paper: max", "paper: hbm",
               "paper: usage [%]"});
  for (const auto& app : suite) {
    const auto summary = bench::sweep_app(simulator, app);
    table.add_row({app.name, cell(summary.max_speedup, 2),
                   cell(summary.hbm_only_speedup, 2),
                   cell(summary.usage90 * 100.0, 1),
                   cell(app.paper.max_speedup, 2),
                   cell(app.paper.hbm_only_speedup, 2),
                   cell(app.paper.usage90 * 100.0, 1)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("table2", table);
  return 0;
}
