// micro_library — google-benchmark microbenchmarks of the library's hot
// paths: arena allocation, page-map lookup, sampler feeding, phase timing
// and full configuration sweeps. These guard the "lightweight tool"
// property the paper claims: interception and sampling must stay cheap
// relative to application work.
#include <benchmark/benchmark.h>

#include "core/config_space.h"
#include "core/experiment.h"
#include "pools/pool_allocator.h"
#include "sample/sampler.h"
#include "shim/shim_allocator.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"
#include "workloads/fft.h"
#include "workloads/line_solver.h"
#include "workloads/trace_io.h"

namespace {

using namespace hmpt;

void BM_ArenaAllocFree(benchmark::State& state) {
  pools::PoolArena arena(1u << 30);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = arena.allocate(size);
    benchmark::DoNotOptimize(p);
    arena.deallocate(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaAllocFree)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_PageMapLookup(benchmark::State& state) {
  pools::PageMap map;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i)
    map.insert(static_cast<std::uintptr_t>(i) * 8192 + 4096, 4096, i % 2,
               static_cast<std::uint64_t>(i));
  std::uintptr_t probe = 4096 + 100;
  for (auto _ : state) {
    auto hit = map.lookup(probe);
    benchmark::DoNotOptimize(hit);
    probe = (probe + 8192) % (static_cast<std::uintptr_t>(n) * 8192);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PageMapLookup)->Arg(64)->Arg(4096);

void BM_ShimAllocate(benchmark::State& state) {
  auto machine = topo::two_pool_testbed();
  pools::PoolAllocator pool(machine);
  shim::ShimAllocator shim(pool);
  for (auto _ : state) {
    void* p = shim.allocate_named("bench::block", 4096);
    benchmark::DoNotOptimize(p);
    shim.deallocate(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShimAllocate);

void BM_SamplerFeed(benchmark::State& state) {
  auto machine = topo::two_pool_testbed();
  pools::PoolAllocator pool(machine);
  auto alloc = pool.allocate(1u << 20, topo::PoolKind::DDR);
  const auto map = pool.page_map_snapshot();
  sample::IbsSampler sampler(
      {static_cast<std::uint64_t>(state.range(0)),
       sample::SamplingMode::Poisson, 1});
  const auto base = reinterpret_cast<std::uintptr_t>(alloc.ptr);
  std::uintptr_t addr = base;
  for (auto _ : state) {
    sampler.feed({addr, false, 0.0}, map);
    addr = base + (addr - base + 64) % (1u << 20);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerFeed)->Arg(64)->Arg(1024);

void BM_PhaseTiming(benchmark::State& state) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);
  const auto trace = app.workload->trace();
  const auto placement =
      sim::Placement::uniform(app.workload->num_groups(),
                              topo::PoolKind::HBM);
  for (auto _ : state) {
    const double t =
        simulator.time_trace(trace, placement, app.context);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhaseTiming);

void BM_Fft3d(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<workloads::Complex> volume(n * n * n,
                                         workloads::Complex(1.0, 0.5));
  for (auto _ : state) {
    workloads::fft3d_inplace(volume.data(), n, n, n, false);
    workloads::fft3d_inplace(volume.data(), n, n, n, true);
    benchmark::DoNotOptimize(volume.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Fft3d)->Arg(8)->Arg(16)->Arg(32);

void BM_TridiagonalSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> sub(n, -1.0), diag(n, 4.0), super(n, -1.0), rhs(n),
      scratch(n);
  sub[0] = super[n - 1] = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = static_cast<double>(i % 13);
    workloads::solve_tridiagonal(sub.data(), diag.data(), super.data(),
                                 rhs.data(), scratch.data(), n);
    benchmark::DoNotOptimize(rhs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TridiagonalSolve)->Arg(64)->Arg(1024);

void BM_TraceSerialisation(benchmark::State& state) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_kwave_model(simulator);
  for (auto _ : state) {
    const auto text = workloads::serialize_workload(*app.workload);
    const auto restored = workloads::parse_workload(text);
    benchmark::DoNotOptimize(restored.num_groups());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceSerialisation);

void BM_FullSweep(benchmark::State& state) {
  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_sp_model(simulator);  // 8 groups = 256
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  for (auto _ : state) {
    tuner::ExperimentRunner runner(simulator, app.context, {1, true});
    auto sweep = runner.sweep(*app.workload, space);
    benchmark::DoNotOptimize(sweep.baseline_time);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullSweep);

}  // namespace

BENCHMARK_MAIN();
