// fig05_mixed_stream — regenerates Fig. 5: STREAM Copy (a) and Add (b)
// bandwidth when each work array is placed individually in DDR or HBM
// (16 GB per array). The headline anomaly: HBM->DDR copy reaches only
// ~65 % of the bandwidth its placement suggests, while DDR->HBM does not
// suffer; and DDR+HBM->HBM matches HBM-only Add while saving a third of
// the HBM capacity.
#include <iostream>

#include "bench_util.h"
#include "workloads/stream.h"

namespace {

using hmpt::topo::PoolKind;

hmpt::sim::Placement place(PoolKind a, PoolKind b, PoolKind c) {
  return hmpt::sim::Placement({a, b, c});
}

const char* short_name(PoolKind kind) {
  return kind == PoolKind::DDR ? "DDR" : "HBM";
}

}  // namespace

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 5",
                      "STREAM Copy/Add bandwidth vs per-array placement");

  auto simulator = sim::MachineSimulator::paper_platform_single();
  const double array_bytes = 16.0 * GB;
  const PoolKind D = PoolKind::DDR, H = PoolKind::HBM;

  // --- Fig. 5a: Copy (c = a). Arrays: a read, c written (group 0 / 2).
  {
    Table table({"placement", "threads_per_tile", "bandwidth_GBps"});
    std::vector<ChartSeries> series;
    const std::pair<PoolKind, PoolKind> configs[] = {
        {D, D}, {D, H}, {H, D}, {H, H}};
    const char glyphs[] = {'1', '2', '3', '4'};
    int gi = 0;
    for (const auto& [src, dst] : configs) {
      ChartSeries s{std::string(short_name(src)) + "->" + short_name(dst),
                    glyphs[gi++], {}, {}};
      for (int tpt = 1; tpt <= 12; ++tpt) {
        const auto ctx = simulator.socket_context(tpt);
        const auto phase =
            workloads::make_stream_phase(workloads::StreamKernel::Copy,
                                         array_bytes);
        const double bw =
            simulator.phase_bandwidth(phase, place(src, src, dst), ctx);
        table.add_row({s.name, std::to_string(tpt), cell(bw / GB, 1)});
        s.x.push_back(tpt);
        s.y.push_back(bw / GB);
      }
      series.push_back(std::move(s));
    }
    std::cout << "-- Fig. 5a: Copy --\n";
    ChartOptions options;
    options.title = "STREAM Copy bandwidth by placement";
    options.x_label = "Threads/Tile [-]";
    options.y_label = "Bandwidth [GB/s]";
    options.y_min = 0.0;
    std::cout << render_xy_chart(series, options);
    bench::print_csv_block("fig05a", table);

    const auto ctx = simulator.socket_context(12);
    const auto phase = workloads::make_stream_phase(
        workloads::StreamKernel::Copy, array_bytes);
    const double hbm_to_ddr =
        simulator.phase_bandwidth(phase, place(H, H, D), ctx);
    const double ddr_to_hbm =
        simulator.phase_bandwidth(phase, place(D, D, H), ctx);
    std::cout << "paper check: HBM->DDR / DDR->HBM = "
              << cell(hbm_to_ddr / ddr_to_hbm, 2)
              << " (paper: ~0.65 of expected for HBM->DDR)\n";
  }

  // --- Fig. 5b: Add (c = a + b).
  {
    Table table({"placement", "threads_per_tile", "bandwidth_GBps"});
    std::vector<ChartSeries> series;
    const std::tuple<PoolKind, PoolKind, PoolKind> configs[] = {
        {D, D, D}, {D, D, H}, {D, H, D}, {D, H, H}, {H, H, D}, {H, H, H}};
    const char glyphs[] = {'1', '2', '3', '4', '5', '6'};
    int gi = 0;
    for (const auto& [a, b, c] : configs) {
      ChartSeries s{std::string(short_name(a)) + "+" + short_name(b) +
                        "->" + short_name(c),
                    glyphs[gi++], {}, {}};
      for (int tpt = 1; tpt <= 12; ++tpt) {
        const auto ctx = simulator.socket_context(tpt);
        const auto phase = workloads::make_stream_phase(
            workloads::StreamKernel::Add, array_bytes);
        const double bw =
            simulator.phase_bandwidth(phase, place(a, b, c), ctx);
        table.add_row({s.name, std::to_string(tpt), cell(bw / GB, 1)});
        s.x.push_back(tpt);
        s.y.push_back(bw / GB);
      }
      series.push_back(std::move(s));
    }
    std::cout << "-- Fig. 5b: Add --\n";
    ChartOptions options;
    options.title = "STREAM Add bandwidth by placement";
    options.x_label = "Threads/Tile [-]";
    options.y_label = "Bandwidth [GB/s]";
    options.y_min = 0.0;
    std::cout << render_xy_chart(series, options);
    bench::print_csv_block("fig05b", table);

    const auto ctx = simulator.socket_context(12);
    const auto phase = workloads::make_stream_phase(
        workloads::StreamKernel::Add, array_bytes);
    const double mixed =
        simulator.phase_bandwidth(phase, place(D, H, H), ctx);
    const double hbm_only =
        simulator.phase_bandwidth(phase, place(H, H, H), ctx);
    std::cout << "paper check: DDR+HBM->HBM / HBM-only = "
              << cell(mixed / hbm_only, 2)
              << " (paper: ~1.0, saving a third of HBM capacity)\n";
  }
  return 0;
}
