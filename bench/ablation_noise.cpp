// ablation_noise — repetition count vs decision stability under
// measurement noise.
//
// The paper averages each configuration over n runs (Sec. III-A). This
// ablation injects realistic run-to-run noise into the simulated
// measurements and reports, for increasing n, how often the analysis still
// identifies the true best configuration and the true minimal 90 %-speedup
// configuration of the MG model (50 trials per point).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/summary.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation",
                      "measurement repetitions vs decision stability");

  // Ground truth from the noise-free platform.
  auto clean = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(clean);
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  tuner::ExperimentRunner clean_runner(clean, app.context, {1, true});
  const auto truth = tuner::summarize(clean_runner.sweep(*app.workload,
                                                         space));

  constexpr int kTrials = 50;
  constexpr double kSigma = 0.02;  // 2 % run-to-run noise

  Table table({"repetitions", "best_config_correct_pct",
               "usage90_config_correct_pct", "mean_speedup_error"});
  for (const int reps : {1, 2, 3, 5, 10}) {
    int best_ok = 0, usage_ok = 0;
    double speedup_err = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      sim::MachineSimulator noisy(
          topo::xeon_max_9468_duo_flat_snc4(),
          sim::default_spr_hbm_calibration(),
          {kSigma, static_cast<std::uint64_t>(trial * 977 + reps)});
      tuner::ExperimentRunner runner(noisy, app.context, {reps, true});
      const auto summary =
          tuner::summarize(runner.sweep(*app.workload, space));
      if (summary.max_mask == truth.max_mask) ++best_ok;
      if (summary.usage90_mask == truth.usage90_mask) ++usage_ok;
      speedup_err +=
          std::fabs(summary.max_speedup - truth.max_speedup);
    }
    table.add_row({std::to_string(reps),
                   cell(100.0 * best_ok / kTrials, 0),
                   cell(100.0 * usage_ok / kTrials, 0),
                   cell(speedup_err / kTrials, 4)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_noise", table);
  std::cout << "expected: n = 3 (the paper's practice) is where the "
               "90 %-footprint decision stabilises under ~2 % noise\n";
  return 0;
}
