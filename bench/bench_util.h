// bench_util.h — shared plumbing of the figure/table harnesses.
//
// Every harness prints a header naming the paper artefact it regenerates,
// a CSV block (machine-readable), and an ASCII rendering. Keeping the
// format uniform lets `for b in build/bench/*; do $b; done` produce a
// complete reproduction log.
#pragma once

#include <iostream>
#include <string>

#include "common/chart.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/config_space.h"
#include "core/experiment.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/app_models.h"

namespace hmpt::bench {

inline void print_header(const std::string& artefact,
                         const std::string& description) {
  std::cout << "\n=== " << artefact << " — " << description << " ===\n";
}

inline void print_csv_block(const std::string& name, const Table& table) {
  std::cout << "--- csv: " << name << " ---\n"
            << table.to_csv() << "--- end csv ---\n";
}

/// Sweep one paper application and summarise it.
inline tuner::SummaryAnalysis sweep_app(sim::MachineSimulator& sim,
                                        const workloads::AppInfo& app,
                                        int repetitions = 3) {
  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  tuner::ExperimentRunner runner(sim, app.context, {repetitions, true});
  const auto sweep = runner.sweep(*app.workload, space);
  return tuner::summarize(sweep);
}

}  // namespace hmpt::bench
