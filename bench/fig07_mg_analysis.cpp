// fig07_mg_analysis — regenerates Fig. 7: the full analysis of the NPB
// Multi-Grid benchmark. (a) detailed view: all 7 non-baseline placement
// configurations of the 3 significant allocations with measured speedup,
// linear-estimate speedup, HBM usage and HBM access-sample fraction;
// (b) summary view: speedup vs HBM footprint scatter with the max and
// 90 %-of-max lines.
#include <iostream>

#include "bench_util.h"
#include "core/report.h"

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 7", "analysis of NPB: Multi-Grid (mg.D)");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_mg_model(simulator);

  tuner::ConfigSpace space([&] {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    return bytes;
  }());
  tuner::ExperimentRunner runner(simulator, app.context, {3, true});
  const auto sweep = runner.sweep(*app.workload, space);
  const auto summary = tuner::summarize(sweep);

  std::cout << "-- Fig. 7a: detailed view --\n";
  const auto detailed = tuner::render_detailed_view(sweep, summary);
  std::cout << detailed.table.to_text() << detailed.bar_chart;
  bench::print_csv_block("fig07a", detailed.table);

  std::cout << "-- Fig. 7b: summary view --\n";
  const auto view = tuner::render_summary_view(summary, app.variant);
  std::cout << view.scatter;
  bench::print_csv_block("fig07b", view.table);

  std::cout << "paper check: groups 0/1 individually >1.6x, both together "
               ">2.2x, max "
            << cell(summary.max_speedup, 2) << " at usage "
            << cell(summary.max_usage * 100.0, 1) << " % (paper: 2.27 at "
            << "69.6 %)\n";
  return 0;
}
