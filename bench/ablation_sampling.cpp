// ablation_sampling — IBS sampling-period sensitivity.
//
// The tool's densities drive grouping and the online tuner's priorities;
// hardware IBS periods trade overhead for accuracy. This ablation feeds a
// known 4-group traffic mix through the sampler at increasing periods and
// reports the density estimation error and the sample budget, showing the
// period range where the paper's density-based ranking stays reliable.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "pools/page_map.h"
#include "sample/sampler.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "IBS sampling period vs density error");

  // Ground truth: 4 allocations with densities 0.55 / 0.30 / 0.10 / 0.05.
  const double truth[4] = {0.55, 0.30, 0.10, 0.05};
  pools::PageMap map;
  for (int r = 0; r < 4; ++r)
    map.insert(0x100000u * static_cast<std::uintptr_t>(r + 1), 0x40000,
               r % 2, static_cast<std::uint64_t>(r + 1));

  constexpr int kEvents = 2'000'000;
  Table table({"period", "samples", "max_density_error",
               "ranking_correct"});
  for (const std::uint64_t period :
       {64ull, 256ull, 1024ull, 4096ull, 16384ull, 65536ull}) {
    sample::IbsSampler sampler({period, sample::SamplingMode::Poisson, 7});
    Rng rng(11);
    for (int i = 0; i < kEvents; ++i) {
      const double u = rng.next_double();
      int r = 0;
      double acc = truth[0];
      while (u > acc && r < 3) acc += truth[++r];
      sampler.feed({0x100000u * static_cast<std::uintptr_t>(r + 1) +
                        rng.next_below(0x40000),
                    false, 0.0},
                   map);
    }
    const auto report = sampler.report();
    double max_err = 0.0;
    bool ranking = true;
    double prev = 2.0;
    for (int r = 0; r < 4; ++r) {
      const double d = report.density(static_cast<std::uint64_t>(r + 1));
      max_err = std::max(max_err, std::fabs(d - truth[r]));
      if (d > prev) ranking = false;  // truth is descending
      prev = d;
    }
    table.add_row({std::to_string(period),
                   std::to_string(report.samples_kept), cell(max_err, 4),
                   ranking ? "yes" : "NO"});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_sampling", table);
  std::cout << "expected: density error grows ~1/sqrt(samples); the\n"
               "hot/cold ranking the tuner needs survives far coarser\n"
               "periods than exact densities do\n";
  return 0;
}
