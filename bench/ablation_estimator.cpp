// ablation_estimator — accuracy of the independent-groups linear estimate
// (Fig. 7a's orange bars) across all applications: per app the max/mean
// absolute error and RMSE of est(S) = 1 + sum (s_i - 1) against measured
// speedups, plus the worst configuration. Apps with shared-bandwidth
// phases (MG, k-Wave) interact and show larger errors than the additive
// solvers.
#include <iostream>

#include "bench_util.h"
#include "core/report.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "linear-estimator error per application");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "max_abs_err", "mean_abs_err", "rmse",
               "worst_config"});
  for (const auto& app : suite) {
    tuner::ConfigSpace space([&] {
      std::vector<double> bytes;
      for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
      return bytes;
    }());
    tuner::ExperimentRunner runner(simulator, app.context, {2, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const tuner::LinearEstimator estimator(sweep);
    const auto err = tuner::estimator_error(sweep, estimator);
    table.add_row({app.name, cell(err.max_abs, 4), cell(err.mean_abs, 4),
                   cell(err.rmse, 4),
                   tuner::mask_label(err.worst_mask, sweep.num_groups)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_estimator", table);
  std::cout << "expected: near-zero error for the additive solvers "
               "(BT/LU/SP/UA/IS); visible error for MG and k-Wave whose "
               "phases co-stream multiple groups\n";
  return 0;
}
