// ablation_estimator — accuracy of the independent-groups linear estimate
// (Fig. 7a's orange bars) across all applications: per app the max/mean
// absolute error and RMSE of est(S) = 1 + sum (s_i - 1) against measured
// speedups, plus the worst configuration. Apps with shared-bandwidth
// phases (MG, k-Wave) interact and show larger errors than the additive
// solvers.
//
// Second table: the "estimator" strategy in action — fit from the n
// single-group runs, measure only the top-k predicted placements, and
// compare achieved speedup and measurement cost against the exhaustive
// sweep (O(n + k) vs O(2^n) configurations).
#include <iostream>

#include "bench_util.h"
#include "core/report.h"
#include "core/session.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "linear-estimator error per application");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "max_abs_err", "mean_abs_err", "rmse",
               "worst_config"});
  for (const auto& app : suite) {
    tuner::ConfigSpace space([&] {
      std::vector<double> bytes;
      for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
      return bytes;
    }());
    tuner::ExperimentRunner runner(simulator, app.context, {2, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const tuner::LinearEstimator estimator(sweep);
    const auto err = tuner::estimator_error(sweep, estimator);
    table.add_row({app.name, cell(err.max_abs, 4), cell(err.mean_abs, 4),
                   cell(err.rmse, 4),
                   tuner::mask_label(err.worst_mask, sweep.num_groups)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_estimator", table);
  std::cout << "expected: near-zero error for the additive solvers "
               "(BT/LU/SP/UA/IS); visible error for MG and k-Wave whose "
               "phases co-stream multiple groups\n";

  bench::print_header("Ablation",
                      "estimator-guided strategy vs exhaustive sweep");
  Table guided_table({"Application", "optimal", "guided", "achieved",
                      "guided configs", "sweep configs"});
  for (const auto& app : suite) {
    const auto exhaustive = tuner::Session::on(simulator)
                                .workload(app.workload)
                                .context(app.context)
                                .strategy("exhaustive")
                                .repetitions(1)
                                .run();
    const auto guided = tuner::Session::on(simulator)
                            .workload(app.workload)
                            .context(app.context)
                            .strategy("estimator")
                            .repetitions(1)
                            .top_k(3)
                            .run();
    guided_table.add_row(
        {app.name, cell(exhaustive.speedup, 2) + "x",
         cell(guided.speedup, 2) + "x",
         format_percent(guided.speedup / exhaustive.speedup),
         std::to_string(guided.configs_measured),
         std::to_string(exhaustive.configs_measured)});
  }
  std::cout << guided_table.to_text();
  bench::print_csv_block("ablation_estimator_guided", guided_table);
  std::cout << "expected: the guided strategy stays within a few percent "
               "of the optimum at 1 + n + k measured configurations, a "
               "large saving for the 8-group solvers (12 vs 256)\n";
  return 0;
}
