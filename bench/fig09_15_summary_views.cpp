// fig09_15_summary_views — regenerates Figs. 9-15: the summary view
// (speedup vs HBM memory footprint with max / 90 %-of-max lines) for every
// application of the evaluation: MG, UA, SP, BT, LU, IS and k-Wave.
#include <iostream>

#include "bench_util.h"
#include "core/report.h"

int main() {
  using namespace hmpt;
  bench::print_header("Figs. 9-15", "summary views for all benchmarks");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  const char* figure_of[] = {"Fig. 9",  "Fig. 12", "Fig. 13", "Fig. 11",
                             "Fig. 10", "Fig. 14", "Fig. 15"};
  int idx = 0;
  for (const auto& app : suite) {
    tuner::ConfigSpace space([&] {
      std::vector<double> bytes;
      for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
      return bytes;
    }());
    tuner::ExperimentRunner runner(simulator, app.context, {3, true});
    const auto sweep = runner.sweep(*app.workload, space);
    const auto summary = tuner::summarize(sweep);

    std::cout << "\n-- " << figure_of[idx++] << ": " << app.name << " ("
              << app.variant << ") --\n";
    const auto view = tuner::render_summary_view(summary, app.variant);
    std::cout << view.scatter;
    std::cout << "  max " << cell(summary.max_speedup, 2) << "x (paper "
              << cell(app.paper.max_speedup, 2) << "x), HBM-only "
              << cell(summary.hbm_only_speedup, 2) << "x (paper "
              << cell(app.paper.hbm_only_speedup, 2) << "x), 90% usage "
              << cell(summary.usage90 * 100.0, 1) << " % (paper "
              << cell(app.paper.usage90 * 100.0, 1) << " %)\n";
    bench::print_csv_block(app.variant, view.table);
  }
  return 0;
}
