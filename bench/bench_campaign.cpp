// bench_campaign — scenarios/sec of the campaign engine and the resume
// hit-rate of its outcome store.
//
// Runs a fixed scenario matrix (paper workloads × platforms × all three
// strategies) several ways and reports each as a throughput:
//
//   cold        empty store, every scenario executes and is persisted
//   resume      same campaign again with resume: every scenario must load
//               from the store (hit-rate 1.0; anything less is a
//               fingerprint instability bug)
//   dry-run     plan-only pass (matrix expansion + fingerprinting)
//   shard-cold  the same campaign as 3 disjoint --shard slices, each into
//               its own store with a manifest
//   merge       hmpt_merge's engine unioning the 3 shard stores; the
//               merged runs.csv/summary.json must match the unsharded
//               cold run byte-for-byte
//
// Results go to stdout (CSV + table) and to a JSON file (default
// BENCH_campaign.json) so CI can accumulate the trajectory.
//
//   bench_campaign [--quick] [--jobs N] [--json FILE]
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/merge.h"
#include "common/json.h"
#include "common/thread_pool.h"

namespace {

using namespace hmpt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[noreturn]] void usage_exit(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--quick] [--jobs N] [--json FILE]\n"
            << "  --jobs N  concurrent scenarios (N >= 0; 0 = all hardware\n"
            << "            threads)\n";
  std::exit(1);
}

int parse_jobs(const char* argv0, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0 ||
      value > INT_MAX) {
    std::cerr << "--jobs: not a count >= 0: '" << text << "'\n";
    usage_exit(argv0);
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int jobs = 0;  // 0 = all hardware threads
  std::string json_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--jobs" && i + 1 < argc)
      jobs = parse_jobs(argv[0], argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else usage_exit(argv[0]);
  }

  campaign::ScenarioMatrix matrix;
  for (const char* name : quick
           ? std::vector<const char*>{"mg", "bt"}
           : std::vector<const char*>{"mg", "bt", "lu", "sp", "kwave"})
    matrix.workloads.push_back(campaign::parse_workload_spec(name));
  matrix.platforms = {"xeon-max", "spr-cxl"};
  matrix.strategies = {"exhaustive", "estimator", "online"};
  matrix.repetitions = quick ? 1 : 3;
  const auto scenarios = matrix.expand();

  bench::print_header("BENCH campaign throughput",
                      "scenario-matrix engine + resumable outcome store");
  std::cout << "scenarios: " << scenarios.size()
            << ", scenario jobs: " << jobs << " (0 = "
            << ThreadPool::hardware_jobs() << " hardware threads)\n";

  campaign::CampaignOptions options;
  options.output_dir =
      (std::filesystem::temp_directory_path() / "hmpt_bench_campaign")
          .string();
  options.scenario_jobs = jobs;
  std::filesystem::remove_all(options.output_dir);

  struct Phase {
    std::string name;
    double seconds = 0.0;
    double scenarios_per_sec = 0.0;
    int executed = 0;
    int cached = 0;
  };
  std::vector<Phase> phases;

  const auto timed = [&](const std::string& name,
                         const campaign::CampaignOptions& opts) {
    const campaign::CampaignRunner runner(opts);
    const auto start = Clock::now();
    const auto result = runner.run(scenarios);
    Phase phase;
    phase.name = name;
    phase.seconds = seconds_since(start);
    phase.scenarios_per_sec =
        static_cast<double>(scenarios.size()) / phase.seconds;
    phase.executed = result.executed;
    phase.cached = result.cached;
    phases.push_back(phase);
    return result;
  };

  const auto cold = timed("cold", options);
  auto resume_options = options;
  resume_options.resume = true;
  const auto warm = timed("resume", resume_options);
  auto dry_options = options;
  dry_options.dry_run = true;
  timed("dry-run", dry_options);

  const double hit_rate =
      static_cast<double>(warm.cached) /
      static_cast<double>(scenarios.size());

  // Shard-and-merge: the same campaign as three disjoint slices, each
  // executing into its own store with a shard manifest, then merged.
  const int kShards = 3;
  std::vector<std::string> shard_dirs;
  {
    const auto start = Clock::now();
    Phase phase;
    phase.name = "shard-cold";
    for (int i = 1; i <= kShards; ++i) {
      campaign::CampaignOptions shard_options = options;
      shard_options.output_dir =
          options.output_dir + "-shard" + std::to_string(i);
      std::filesystem::remove_all(shard_options.output_dir);
      const campaign::ShardSpec spec{i, kShards};
      const auto result = campaign::CampaignRunner(shard_options)
                              .run(campaign::shard_scenarios(scenarios, spec));
      campaign::make_manifest(scenarios, spec, result)
          .save(shard_options.output_dir);
      phase.executed += result.executed;
      shard_dirs.push_back(shard_options.output_dir);
    }
    phase.seconds = seconds_since(start);
    phase.scenarios_per_sec =
        static_cast<double>(scenarios.size()) / phase.seconds;
    phases.push_back(phase);
  }
  const std::string merged_dir = options.output_dir + "-merged";
  std::filesystem::remove_all(merged_dir);
  const auto merge_start = Clock::now();
  campaign::MergeStats merge_stats;
  const auto merged =
      campaign::merge_shards(shard_dirs, merged_dir, &merge_stats);
  {
    Phase phase;
    phase.name = "merge";
    phase.seconds = seconds_since(merge_start);
    phase.scenarios_per_sec =
        static_cast<double>(scenarios.size()) / phase.seconds;
    phase.cached = merged.cached;
    phases.push_back(phase);
  }
  // The whole point of the merge: artefacts identical to the unsharded run.
  const bool merged_matches_cold =
      campaign::runs_table(merged).to_csv() ==
          campaign::runs_table(cold).to_csv() &&
      campaign::summary_json(merged).dump() ==
          campaign::summary_json(cold).dump();

  Table table({"phase", "scenarios/s", "seconds", "executed", "cached"});
  for (const auto& phase : phases)
    table.add_row({phase.name, cell(phase.scenarios_per_sec, 1),
                   cell(phase.seconds, 4), std::to_string(phase.executed),
                   std::to_string(phase.cached)});
  bench::print_csv_block("campaign_throughput", table);
  std::cout << table.to_text();
  std::cout << "\nresume hit-rate: " << cell(hit_rate, 3)
            << " (1.000 = every scenario served from the store)\n";
  std::cout << "merged == unsharded artefacts: "
            << (merged_matches_cold ? "yes" : "NO — MERGE BUG") << " ("
            << merge_stats.outcomes_merged << " outcome files from "
            << merge_stats.shards << " shards)\n";

  JsonObject doc;
  doc["bench"] = Json(std::string("campaign"));
  doc["scenarios"] = Json(static_cast<int>(scenarios.size()));
  doc["jobs"] = Json(jobs);
  doc["quick"] = Json(quick);
  doc["resume_hit_rate"] = Json(hit_rate);
  doc["shards"] = Json(kShards);
  doc["merged_matches_cold"] = Json(merged_matches_cold);
  JsonArray phase_array;
  for (const auto& phase : phases) {
    JsonObject p;
    p["name"] = Json(phase.name);
    p["seconds"] = Json(phase.seconds);
    p["scenarios_per_sec"] = Json(phase.scenarios_per_sec);
    p["executed"] = Json(phase.executed);
    p["cached"] = Json(phase.cached);
    phase_array.push_back(Json(std::move(p)));
  }
  doc["phases"] = Json(std::move(phase_array));
  std::ofstream os(json_path);
  if (!os.good()) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  os << Json(std::move(doc)).dump();
  std::cout << "wrote " << json_path << "\n";

  return (hit_rate == 1.0 && merged_matches_cold) ? 0 : 1;
}
