// fig03_latency_window — regenerates Fig. 3: single-core pointer-chase
// latency vs working-set window size (8 kB .. 256 MB) with the chase ring
// in DDR vs HBM; the L1/L2/L3 plateaus and the ~20 % HBM latency penalty
// should be visible.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 3",
                      "pointer-chase latency vs window size, DDR vs HBM");

  auto simulator = sim::MachineSimulator::paper_platform_single();

  Table table({"window_kB", "ddr_latency_ns", "hbm_latency_ns",
               "hbm_penalty"});
  ChartSeries ddr{"DDR", 'd', {}, {}};
  ChartSeries hbm{"HBM", 'h', {}, {}};

  for (int exp = 3; exp <= 18; ++exp) {
    const double window = static_cast<double>(1u << exp) * KB;
    const double lat_ddr =
        simulator.chase_latency(window, topo::PoolKind::DDR);
    const double lat_hbm =
        simulator.chase_latency(window, topo::PoolKind::HBM);
    table.add_row({std::to_string(1u << exp), cell(lat_ddr / ns, 1),
                   cell(lat_hbm / ns, 1), cell(lat_hbm / lat_ddr, 3)});
    ddr.x.push_back(exp);
    ddr.y.push_back(lat_ddr / ns);
    hbm.x.push_back(exp);
    hbm.y.push_back(lat_hbm / ns);
  }

  std::cout << table.to_text();
  ChartOptions options;
  options.title = "chase latency vs log2(window kB)";
  options.x_label = "log2(Window size [kB])";
  options.y_label = "Latency [ns]";
  options.y_min = 0.0;
  std::cout << render_xy_chart({ddr, hbm}, options);
  bench::print_csv_block("fig03", table);

  const double full_ddr =
      simulator.chase_latency(256.0 * MB, topo::PoolKind::DDR);
  const double full_hbm =
      simulator.chase_latency(256.0 * MB, topo::PoolKind::HBM);
  std::cout << "paper check: out-of-cache HBM penalty ~20 % (measured "
            << cell((full_hbm / full_ddr - 1.0) * 100.0, 1) << " %)\n";
  return 0;
}
