// fig02_stream_bandwidth — regenerates Fig. 2: STREAM bandwidth (average
// over Copy/Scale/Add/Triad) vs threads per tile on one socket, once with
// all arrays in DDR and once in HBM (16 GB per array).
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "workloads/stream.h"

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 2",
                      "STREAM bandwidth, all data in DDR or HBM, one socket");

  auto simulator = sim::MachineSimulator::paper_platform_single();
  const double array_bytes = 16.0 * GB;
  const std::vector<workloads::StreamKernel> kernels = {
      workloads::StreamKernel::Copy, workloads::StreamKernel::Scale,
      workloads::StreamKernel::Add, workloads::StreamKernel::Triad};

  Table table({"threads_per_tile", "ddr_avg_GBps", "hbm_avg_GBps"});
  ChartSeries ddr{"DDR Average", 'd', {}, {}};
  ChartSeries hbm{"HBM Average", 'h', {}, {}};

  for (int tpt = 1; tpt <= simulator.machine().cores_per_tile(); ++tpt) {
    const auto ctx = simulator.socket_context(tpt);
    std::vector<double> bw_ddr, bw_hbm;
    for (const auto kernel : kernels) {
      const auto phase = workloads::make_stream_phase(kernel, array_bytes);
      bw_ddr.push_back(simulator.phase_bandwidth(
          phase, sim::Placement::uniform(3, topo::PoolKind::DDR), ctx));
      bw_hbm.push_back(simulator.phase_bandwidth(
          phase, sim::Placement::uniform(3, topo::PoolKind::HBM), ctx));
    }
    const double ddr_avg = harmonic_mean(bw_ddr);
    const double hbm_avg = harmonic_mean(bw_hbm);
    table.add_row({std::to_string(tpt), cell(ddr_avg / GB, 1),
                   cell(hbm_avg / GB, 1)});
    ddr.x.push_back(tpt);
    ddr.y.push_back(ddr_avg / GB);
    hbm.x.push_back(tpt);
    hbm.y.push_back(hbm_avg / GB);
  }

  std::cout << table.to_text();
  ChartOptions options;
  options.title = "STREAM average bandwidth vs threads/tile";
  options.x_label = "Threads/Tile [-]";
  options.y_label = "Bandwidth [GB/s]";
  options.y_min = 0.0;
  std::cout << render_xy_chart({ddr, hbm}, options);
  bench::print_csv_block("fig02", table);

  std::cout << "paper check: DDR plateau ~200 GB/s, HBM reaching ~650-700 "
               "GB/s at 12 threads/tile\n";
  return 0;
}
