// fig08_roofline — regenerates Fig. 8: the estimated roofline of a single
// Xeon Max 9468 at 2.1 GHz (L1/L2/HBM/DDR bandwidth roofs, DP vector and
// scalar FMA peaks) with the NPB applications and the STREAM Add/Triad
// kernels placed at their DRAM arithmetic intensity.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "simmem/roofline.h"
#include "workloads/stream.h"

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 8", "roofline of 1x Intel Xeon Max 9468");

  const auto roofline = sim::spr_hbm_roofline();
  auto simulator = sim::MachineSimulator::paper_platform();

  Table ceilings({"ceiling", "value", "unit"});
  for (const auto& c : roofline.ceilings())
    ceilings.add_row({c.name,
                      cell(c.value / (c.is_bandwidth ? GB : 1e9), 1),
                      c.is_bandwidth ? "GB/s" : "GFLOP/s"});
  std::cout << ceilings.to_text();

  Table points({"application", "arithmetic_intensity_flop_per_byte",
                "attainable_DDR_GFLOPs", "attainable_HBM_GFLOPs"});
  ChartSeries apps{"applications", 'a', {}, {}};

  auto add_point = [&](const std::string& name, double ai) {
    const double ddr = roofline.attainable(ai, "DDR");
    const double hbm = roofline.attainable(ai, "HBM");
    points.add_row({name, cell(ai, 3), cell(ddr / 1e9, 1),
                    cell(hbm / 1e9, 1)});
    apps.x.push_back(std::log10(ai));
    apps.y.push_back(std::log10(hbm / 1e9));
  };

  for (const auto& app : workloads::paper_benchmark_suite(simulator))
    add_point(app.name, workloads::arithmetic_intensity(*app.workload));
  // STREAM context points, as in the paper.
  add_point("STREAM: Add",
            workloads::stream_flops_per_elem(workloads::StreamKernel::Add) /
                (3.0 * sizeof(double)));
  add_point("STREAM: Triad",
            workloads::stream_flops_per_elem(
                workloads::StreamKernel::Triad) /
                (3.0 * sizeof(double)));

  std::cout << points.to_text();

  // Roofline curve (log-log) for the two DRAM roofs.
  ChartSeries ddr_roof{"DDR roof", 'd', {}, {}};
  ChartSeries hbm_roof{"HBM roof", 'h', {}, {}};
  for (double e = -1.5; e <= 2.0; e += 0.125) {
    const double ai = std::pow(10.0, e);
    ddr_roof.x.push_back(e);
    ddr_roof.y.push_back(std::log10(roofline.attainable(ai, "DDR") / 1e9));
    hbm_roof.x.push_back(e);
    hbm_roof.y.push_back(std::log10(roofline.attainable(ai, "HBM") / 1e9));
  }
  ChartOptions options;
  options.title = "roofline (log10-log10)";
  options.x_label = "log10 AI [FLOP/Byte]";
  options.y_label = "log10 Performance [GFLOP/s]";
  std::cout << render_xy_chart({ddr_roof, hbm_roof, apps}, options);
  bench::print_csv_block("fig08", points);

  std::cout << "paper check: ridge points DDR "
            << cell(roofline.ridge_point("DDR"), 1) << " / HBM "
            << cell(roofline.ridge_point("HBM"), 1)
            << " FLOP/Byte; NPB apps sit in the memory-bound region\n";
  return 0;
}
