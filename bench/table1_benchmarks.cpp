// table1_benchmarks — regenerates Table I: the evaluated benchmarks, their
// variant, memory usage and number of filtered allocations, plus the group
// count the tuner actually sweeps (top-7 + rest, Sec. III-A) and each
// model's DRAM arithmetic intensity for cross-checking against Fig. 8.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace hmpt;
  bench::print_header("Table I", "benchmark configurations and properties");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto suite = workloads::paper_benchmark_suite(simulator);

  Table table({"Application", "Benchmark Variant", "Memory Usage [GB]",
               "Filtered Allocations", "Tuned Groups",
               "AI [FLOP/Byte]"});
  for (const auto& app : suite) {
    table.add_row({app.name, app.variant, cell(app.memory_bytes / GB, 2),
                   std::to_string(app.filtered_allocations),
                   std::to_string(app.workload->num_groups()),
                   cell(workloads::arithmetic_intensity(*app.workload), 3)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("table1", table);
  return 0;
}
