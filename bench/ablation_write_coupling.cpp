// ablation_write_coupling — sensitivity of the Fig. 5 mixed-placement
// results to the cross-pool write-coupling penalty (the model mechanism
// behind the HBM->DDR ~65 % anomaly). Sweeps the penalty factor and prints
// how the Copy placements and the STREAM-workload sweep react; with the
// penalty off (factor 1.0) HBM->DDR copy would look symmetric to DDR->HBM,
// which contradicts the paper's measurement.
#include <iostream>

#include "bench_util.h"
#include "workloads/stream.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "cross-pool write-coupling penalty");

  const double factors[] = {1.0, 0.9, 0.8, 0.65, 0.5};
  Table table({"penalty_factor", "copy_ddr_to_hbm_GBps",
               "copy_hbm_to_ddr_GBps", "asymmetry_ratio"});

  for (const double factor : factors) {
    auto config = sim::default_spr_hbm_calibration();
    config.cross_pool_write_penalty = factor;
    sim::MachineSimulator simulator(topo::xeon_max_9468_single_flat_snc4(),
                                    config);
    const auto ctx = simulator.socket_context(12);
    const auto phase = workloads::make_stream_phase(
        workloads::StreamKernel::Copy, 16.0 * GB);
    using topo::PoolKind;
    const double d2h = simulator.phase_bandwidth(
        phase,
        sim::Placement({PoolKind::DDR, PoolKind::DDR, PoolKind::HBM}), ctx);
    const double h2d = simulator.phase_bandwidth(
        phase,
        sim::Placement({PoolKind::HBM, PoolKind::HBM, PoolKind::DDR}), ctx);
    table.add_row({cell(factor, 2), cell(d2h / GB, 1), cell(h2d / GB, 1),
                   cell(h2d / d2h, 3)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_write_coupling", table);
  std::cout << "paper check: the paper's measured asymmetry corresponds to "
               "factor ~0.65; factor 1.0 (no coupling) predicts symmetric "
               "copies, which the hardware does not show\n";
  return 0;
}
