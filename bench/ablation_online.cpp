// ablation_online — online tuning vs exhaustive sweep.
//
// The paper's outlook is a dynamic tool (Sec. III). This ablation compares
// the online tuner (greedy migration with confirmation runs) against the
// exhaustive 2^n x n sweep on every benchmark: achieved fraction of the
// optimal speedup and measured-run budget, with and without measurement
// noise.
#include <iostream>

#include "bench_util.h"
#include "core/online.h"
#include "core/summary.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "online tuner vs exhaustive sweep");

  Table table({"Application", "optimal", "online(clean)", "runs",
               "online(2% noise)", "runs(noise)", "sweep runs"});

  auto clean = sim::MachineSimulator::paper_platform();
  for (const auto& app : workloads::paper_benchmark_suite(clean)) {
    std::vector<double> bytes;
    for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
    tuner::ConfigSpace space(bytes);

    tuner::ExperimentRunner runner(clean, app.context, {3, true});
    const auto summary =
        tuner::summarize(runner.sweep(*app.workload, space));

    tuner::OnlineTuner online_clean(clean, app.context);
    const auto r_clean = online_clean.tune(*app.workload, space);

    sim::MachineSimulator noisy(topo::xeon_max_9468_duo_flat_snc4(),
                                sim::default_spr_hbm_calibration(),
                                {0.02, 1234});
    tuner::OnlineTunerOptions noisy_options;
    noisy_options.patience = 2;  // noise warrants a second look
    tuner::OnlineTuner online_noisy(noisy, app.context, noisy_options);
    const auto r_noisy = online_noisy.tune(*app.workload, space);

    table.add_row({app.name, cell(summary.max_speedup, 2) + "x",
                   cell(r_clean.speedup, 2) + "x",
                   std::to_string(r_clean.iterations_used),
                   cell(r_noisy.speedup, 2) + "x",
                   std::to_string(r_noisy.iterations_used),
                   std::to_string(3 * space.size())});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_online", table);
  std::cout << "expected: the online tuner reaches >= 90 % of the optimum "
               "in tens of runs instead of hundreds-to-thousands; noise "
               "costs some extra confirmation runs\n";
  return 0;
}
