// ablation_online — online tuning vs exhaustive sweep.
//
// The paper's outlook is a dynamic tool (Sec. III). This ablation compares
// the "online" strategy (greedy migration with confirmation runs) against
// the exhaustive 2^n x n sweep on every benchmark — both driven through
// the same Session facade: achieved fraction of the optimal speedup and
// measured-run budget, with and without measurement noise.
#include <iostream>

#include "bench_util.h"
#include "core/session.h"

int main() {
  using namespace hmpt;
  bench::print_header("Ablation", "online strategy vs exhaustive sweep");

  Table table({"Application", "optimal", "online(clean)", "runs",
               "online(2% noise)", "runs(noise)", "sweep runs"});

  auto clean = sim::MachineSimulator::paper_platform();
  for (const auto& app : workloads::paper_benchmark_suite(clean)) {
    const auto exhaustive = tuner::Session::on(clean)
                                .workload(app.workload)
                                .context(app.context)
                                .strategy("exhaustive")
                                .repetitions(3)
                                .run();
    const auto r_clean = tuner::Session::on(clean)
                             .workload(app.workload)
                             .context(app.context)
                             .strategy("online")
                             .run();

    sim::MachineSimulator noisy(topo::xeon_max_9468_duo_flat_snc4(),
                                sim::default_spr_hbm_calibration(),
                                {0.02, 1234});
    const auto r_noisy = tuner::Session::on(noisy)
                             .workload(app.workload)
                             .context(app.context)
                             .strategy("online")
                             .patience(2)  // noise warrants a second look
                             .run();

    table.add_row({app.name, cell(exhaustive.speedup, 2) + "x",
                   cell(r_clean.speedup, 2) + "x",
                   std::to_string(r_clean.measurements),
                   cell(r_noisy.speedup, 2) + "x",
                   std::to_string(r_noisy.measurements),
                   std::to_string(exhaustive.measurements)});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_online", table);
  std::cout << "expected: the online strategy reaches >= 90 % of the "
               "optimum in tens of runs instead of hundreds-to-thousands; "
               "noise costs some extra confirmation runs\n";
  return 0;
}
