// ablation_grouping — how the group budget (top-k + rest) affects the
// achievable result. The paper fixes 8 groups; this ablation re-runs the
// UA model (56 raw allocations folded to 8) with coarser budgets by
// merging the tail groups, showing the lost tuning resolution: the max
// speedup survives coarse grouping but the minimal 90 %-speedup footprint
// degrades (more data must move because it is welded to hot groups).
#include <iostream>

#include "bench_util.h"

namespace {

using namespace hmpt;

/// Merge the last `tail` groups of a workload into one, remapping traffic.
class MergedTailWorkload final : public workloads::Workload {
 public:
  MergedTailWorkload(workloads::WorkloadPtr base, int keep)
      : base_(std::move(base)), keep_(keep) {
    HMPT_REQUIRE(keep_ >= 1 && keep_ < base_->num_groups(),
                 "keep out of range");
  }
  std::string name() const override {
    return base_->name() + "/merged" + std::to_string(keep_);
  }
  std::vector<workloads::GroupInfo> groups() const override {
    auto gs = base_->groups();
    std::vector<workloads::GroupInfo> out(
        gs.begin(), gs.begin() + keep_);
    workloads::GroupInfo rest{"merged_rest", 0.0};
    for (std::size_t i = static_cast<std::size_t>(keep_); i < gs.size();
         ++i)
      rest.bytes += gs[i].bytes;
    out.push_back(rest);
    return out;
  }
  sim::PhaseTrace trace() const override {
    auto trace = base_->trace();
    for (auto& phase : trace.phases)
      for (auto& s : phase.streams)
        if (s.group >= keep_) s.group = keep_;
    return trace;
  }

 private:
  workloads::WorkloadPtr base_;
  int keep_;
};

}  // namespace

int main() {
  bench::print_header("Ablation", "group budget (top-k + rest) on ua.D");

  auto simulator = sim::MachineSimulator::paper_platform();
  const auto app = workloads::make_ua_model(simulator);

  Table table({"groups", "max_speedup", "usage90_percent",
               "configs_measured"});
  for (int keep = app.workload->num_groups() - 1; keep >= 1; --keep) {
    workloads::WorkloadPtr wl =
        keep == app.workload->num_groups() - 1
            ? app.workload
            : std::make_shared<MergedTailWorkload>(app.workload, keep);
    // keep == n-1 keeps the original grouping; smaller keeps merge tails.
    tuner::ConfigSpace space([&] {
      std::vector<double> bytes;
      for (const auto& g : wl->groups()) bytes.push_back(g.bytes);
      return bytes;
    }());
    tuner::ExperimentRunner runner(simulator, app.context, {2, true});
    const auto sweep = runner.sweep(*wl, space);
    const auto summary = tuner::summarize(sweep);
    table.add_row({std::to_string(wl->num_groups()),
                   cell(summary.max_speedup, 3),
                   cell(summary.usage90 * 100.0, 1),
                   std::to_string(space.size())});
  }
  std::cout << table.to_text();
  bench::print_csv_block("ablation_grouping", table);
  std::cout << "expected: max speedup is stable; the 90 %-speedup HBM "
               "footprint grows as grouping coarsens\n";
  return 0;
}
