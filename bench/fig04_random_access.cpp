// fig04_random_access — regenerates Fig. 4: HBM-vs-DDR speedup of (a)
// random indirect summation and (b) random pointer chase over a 32 GB
// array spread over all nodes of one socket, as a function of threads per
// tile. Speedup below 1 means DDR is faster (latency wins); the indirect
// sum crosses above 1 at high thread counts (bandwidth wins).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace hmpt;
  bench::print_header("Fig. 4",
                      "random access HBM speedup vs threads/tile, 32 GB");

  auto simulator = sim::MachineSimulator::paper_platform_single();
  const auto& model = simulator.pool_model();
  const double window = 32.0 * GB;

  Table table({"threads_per_tile", "indirect_sum_speedup",
               "pointer_chase_speedup"});
  ChartSeries indirect{"Random Indirect Sum", 'i', {}, {}};
  ChartSeries chase{"Random Pointer Chase", 'c', {}, {}};

  const double lat_ddr = simulator.cache().effective_latency(
      window, model.idle_latency(topo::PoolKind::DDR));
  const double lat_hbm = simulator.cache().effective_latency(
      window, model.idle_latency(topo::PoolKind::HBM));

  for (int tpt = 1; tpt <= simulator.machine().cores_per_tile(); ++tpt) {
    const auto ctx = simulator.socket_context(tpt);
    const double sum_ddr = simulator.random_access_bandwidth(
        topo::PoolKind::DDR, ctx.threads, ctx.tiles);
    const double sum_hbm = simulator.random_access_bandwidth(
        topo::PoolKind::HBM, ctx.threads, ctx.tiles);
    const double chase_ddr =
        model.chase_bandwidth(topo::PoolKind::DDR, ctx.threads, lat_ddr);
    const double chase_hbm =
        model.chase_bandwidth(topo::PoolKind::HBM, ctx.threads, lat_hbm);

    const double s_sum = sum_hbm / sum_ddr;
    const double s_chase = chase_hbm / chase_ddr;
    table.add_row({std::to_string(tpt), cell(s_sum, 3), cell(s_chase, 3)});
    indirect.x.push_back(tpt);
    indirect.y.push_back(s_sum);
    chase.x.push_back(tpt);
    chase.y.push_back(s_chase);
  }

  std::cout << table.to_text();
  ChartOptions options;
  options.title = "HBM speedup of random access patterns";
  options.x_label = "Threads/Tile [-]";
  options.y_label = "HBM Speedup [-]";
  options.hlines = {1.0};
  std::cout << render_xy_chart({indirect, chase}, options);
  bench::print_csv_block("fig04", table);

  std::cout << "paper check: chase stays ~0.84 (latency-bound); indirect "
               "sum rises towards ~1.0 as DDR saturates\n";
  return 0;
}
