// bench_sweep_throughput — configs/sec of the 2^n measurement campaign.
//
// The sweep is the hot path every strategy, bench and CLI run sits on;
// this harness tracks how fast the engine drives it on the paper
// workloads (k-Wave and NPB Multi-Grid) across four engine settings:
//
//   serial-seed        faithful re-run of the original engine loop: one
//                      full trace timing per repetition, per configuration
//   serial             rep-hoisted engine, jobs=1, no memoization
//   memoized           jobs=1 + per-phase Gray-order timing cache
//   parallel           jobs=hardware, no memoization
//   parallel-memoized  jobs=hardware + per-worker timing caches
//
// Every variant must produce a bit-identical SweepResult (the simulator's
// per-(mask, repetition) noise streams are order-independent); the harness
// verifies that before reporting. Results go to stdout (CSV + table) and
// to a JSON file (default BENCH_sweep.json) so CI can accumulate the
// throughput trajectory.
//
//   bench_sweep_throughput [--quick] [--jobs N] [--json FILE]
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace {

using namespace hmpt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The original engine loop, kept as the throughput baseline: re-times the
/// full trace for every repetition of every configuration and re-derives
/// the trace per configuration, exactly like the seed ExperimentRunner.
tuner::SweepResult seed_sweep(sim::MachineSimulator& sim,
                              const workloads::Workload& workload,
                              const tuner::ConfigSpace& space,
                              sim::ExecutionContext ctx, int reps) {
  tuner::SweepResult sweep;
  sweep.num_groups = space.num_groups();
  sweep.configs.resize(space.size());

  const auto measure = [&](tuner::ConfigMask mask, double baseline_time) {
    const auto trace = workload.trace();
    const auto placement = space.placement(mask);
    RunningStats stats;
    for (int rep = 0; rep < reps; ++rep)
      stats.add(sim.measure_trace(trace, placement, ctx,
                                  {mask, static_cast<std::uint64_t>(rep)}));
    tuner::ConfigResult result;
    result.mask = mask;
    result.mean_time = stats.mean();
    result.stddev_time = stats.stddev();
    result.speedup =
        baseline_time > 0.0 ? baseline_time / stats.mean() : 1.0;
    result.hbm_usage = space.hbm_usage(mask);
    result.hbm_density = tuner::hbm_access_fraction(trace, placement);
    result.groups_in_hbm = space.popcount(mask);
    return result;
  };

  tuner::ConfigResult baseline = measure(0, 0.0);
  baseline.speedup = 1.0;
  sweep.baseline_time = baseline.mean_time;
  sweep.configs[0] = baseline;
  for (const tuner::ConfigMask mask : space.gray_masks()) {
    if (mask == 0) continue;
    sweep.configs[mask] = measure(mask, sweep.baseline_time);
  }
  return sweep;
}

/// Measured times must agree bit-for-bit across variants; hbm_density is
/// summed in a different (still exact) order by the seed loop, so it gets
/// a tolerance.
bool sweeps_identical(const tuner::SweepResult& a,
                      const tuner::SweepResult& b) {
  if (a.configs.size() != b.configs.size()) return false;
  if (a.baseline_time != b.baseline_time) return false;
  for (std::size_t i = 0; i < a.configs.size(); ++i) {
    const auto& x = a.configs[i];
    const auto& y = b.configs[i];
    if (x.mask != y.mask || x.mean_time != y.mean_time ||
        x.stddev_time != y.stddev_time || x.speedup != y.speedup)
      return false;
    const double density_gap = x.hbm_density - y.hbm_density;
    if (density_gap > 1e-12 || density_gap < -1e-12) return false;
  }
  return true;
}

struct VariantResult {
  std::string name;
  int jobs = 1;
  double configs_per_sec = 0.0;
  double speedup_vs_seed = 1.0;
};

struct WorkloadResult {
  std::string name;
  int groups = 0;
  std::size_t configs = 0;
  bool identical = true;
  std::vector<VariantResult> variants;
};

[[noreturn]] void usage_exit(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--quick] [--jobs N] [--json FILE]\n"
            << "  --jobs N  worker threads for the parallel variants\n"
            << "            (N >= 0; 0 = all hardware threads)\n";
  std::exit(1);
}

/// Strict numeric parsing, matching hmpt_analyze's flag validation.
int parse_jobs(const char* argv0, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0 ||
      value > INT_MAX) {
    std::cerr << "--jobs: not a count >= 0: '" << text << "'\n";
    usage_exit(argv0);
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmpt;

  bool quick = false;
  int jobs = 0;  // 0 = all hardware threads
  std::string json_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--jobs" && i + 1 < argc)
      jobs = parse_jobs(argv[0], argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else usage_exit(argv[0]);
  }
  const int parallel_jobs = jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
  const double min_seconds = quick ? 0.1 : 1.0;
  constexpr int kReps = 3;
  constexpr double kSigma = 0.02;  // realistic run-to-run noise

  bench::print_header("BENCH sweep throughput",
                      "parallel + memoized measurement campaign");
  std::cout << "hardware threads: " << ThreadPool::hardware_jobs()
            << ", parallel variants use jobs=" << parallel_jobs
            << ", repetitions=" << kReps << "\n";

  sim::MachineSimulator simulator(topo::xeon_max_9468_duo_flat_snc4(),
                                  sim::default_spr_hbm_calibration(),
                                  {kSigma, 42});

  std::vector<workloads::AppInfo> apps;
  apps.push_back(workloads::make_kwave_model(simulator));
  apps.push_back(workloads::make_mg_model(simulator));

  Table table({"workload", "variant", "jobs", "configs/s", "vs seed"});
  std::vector<WorkloadResult> results;

  for (const auto& app : apps) {
    tuner::ConfigSpace space([&] {
      std::vector<double> bytes;
      for (const auto& g : app.workload->groups()) bytes.push_back(g.bytes);
      return bytes;
    }());

    WorkloadResult wr;
    wr.name = app.workload->name();
    wr.groups = space.num_groups();
    wr.configs = space.size();

    const tuner::SweepResult reference =
        seed_sweep(simulator, *app.workload, space, app.context, kReps);

    struct Variant {
      const char* name;
      int jobs;
      bool memoize;
      bool seed_path;
    };
    const std::vector<Variant> variants = {
        {"serial-seed", 1, false, true},
        {"serial", 1, false, false},
        {"memoized", 1, true, false},
        {"parallel", parallel_jobs, false, false},
        {"parallel-memoized", parallel_jobs, true, false},
    };

    double seed_rate = 0.0;
    for (const auto& variant : variants) {
      tuner::ExperimentOptions options;
      options.repetitions = kReps;
      options.gray_order = true;
      options.jobs = variant.jobs;
      options.memoize = variant.memoize;
      tuner::ExperimentRunner runner(simulator, app.context, options);

      // Correctness first: every engine variant must reproduce the seed
      // reference (comparing seed to itself would prove nothing).
      if (!variant.seed_path &&
          !sweeps_identical(reference, runner.sweep(*app.workload, space))) {
        wr.identical = false;
        std::cerr << "FAIL: " << wr.name << " variant " << variant.name
                  << " diverged from the reference sweep\n";
      }

      // Then throughput: whole sweeps until the clock says enough.
      int sweeps = 0;
      const auto start = Clock::now();
      double elapsed = 0.0;
      do {
        if (variant.seed_path) {
          seed_sweep(simulator, *app.workload, space, app.context, kReps);
        } else {
          runner.sweep(*app.workload, space);
        }
        ++sweeps;
        elapsed = seconds_since(start);
      } while (elapsed < min_seconds);

      VariantResult vr;
      vr.name = variant.name;
      vr.jobs = variant.jobs;
      vr.configs_per_sec =
          static_cast<double>(sweeps) * static_cast<double>(space.size()) /
          elapsed;
      if (variant.seed_path) seed_rate = vr.configs_per_sec;
      vr.speedup_vs_seed =
          seed_rate > 0.0 ? vr.configs_per_sec / seed_rate : 1.0;
      wr.variants.push_back(vr);

      table.add_row({wr.name, vr.name, std::to_string(vr.jobs),
                     cell(vr.configs_per_sec, 0),
                     cell(vr.speedup_vs_seed, 2) + "x"});
    }
    results.push_back(std::move(wr));
  }

  bench::print_csv_block("sweep_throughput", table);
  std::cout << table.to_text();

  bool all_identical = true;
  for (const auto& wr : results) all_identical = all_identical && wr.identical;
  std::cout << "\nall variants bit-identical to the reference sweep: "
            << (all_identical ? "yes" : "NO") << "\n";

  std::ofstream json(json_path);
  if (!json.good()) {
    std::cerr << "cannot write " << json_path << "\n";
    return 2;
  }
  json << "{\n"
       << "  \"bench\": \"sweep_throughput\",\n"
       << "  \"hardware_threads\": " << ThreadPool::hardware_jobs() << ",\n"
       << "  \"parallel_jobs\": " << parallel_jobs << ",\n"
       << "  \"repetitions\": " << kReps << ",\n"
       << "  \"noise_sigma\": " << kSigma << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"identical_results\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < results.size(); ++w) {
    const auto& wr = results[w];
    json << "    {\n"
         << "      \"name\": \"" << wr.name << "\",\n"
         << "      \"groups\": " << wr.groups << ",\n"
         << "      \"configs\": " << wr.configs << ",\n"
         << "      \"variants\": [\n";
    for (std::size_t v = 0; v < wr.variants.size(); ++v) {
      const auto& vr = wr.variants[v];
      json << "        {\"name\": \"" << vr.name << "\", \"jobs\": "
           << vr.jobs << ", \"configs_per_sec\": " << vr.configs_per_sec
           << ", \"speedup_vs_seed\": " << vr.speedup_vs_seed << "}"
           << (v + 1 < wr.variants.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (w + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "throughput JSON written to " << json_path << "\n";

  return all_identical ? 0 : 2;
}
