#!/usr/bin/env python3
"""Validate a Chrome trace-event file the --trace flags write.

Loads the `{"traceEvents": [...]}` document and checks the invariants
the obs/trace.h recorder guarantees, so a regression that would render
the file unloadable in Perfetto/chrome://tracing fails CI instead of
silently producing a broken artefact:

  * the document is well-formed JSON with a `traceEvents` list,
  * every event carries name/ph/pid/tid (and a numeric ts unless it is
    a metadata event), with ph drawn from the phases the recorder
    emits: B, E, i, I, C, M,
  * per (pid, tid) lane, timestamps never decrease (one writer per
    lane, a monotonic clock),
  * per lane, B/E events balance and never close an unopened span (the
    renderer drops orphan closes and synthesises missing ones).

Stdlib only — runs anywhere CI has a python3.

Usage: check_trace.py TRACE_FILE [--min-events N]

--min-events fails the check when fewer than N non-metadata events were
recorded (default 1): a traced smoke campaign that records nothing is a
broken trace hook, not a quiet success.

Exit status: 0 when every check passes, 1 otherwise (each violation is
reported on stderr).
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "I", "C", "M"}
REQUIRED_FIELDS = ("name", "ph", "pid", "tid")


def check(path, min_events):
    errors = []

    def fail(message):
        errors.append(message)

    try:
        with open(path, "rb") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        return ["%s: unreadable or malformed JSON: %s" % (path, error)]

    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no traceEvents list" % path]

    lanes = {}  # (pid, tid) -> {"last_ts": float, "open": int}
    recorded = 0
    for index, event in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, index)
        if not isinstance(event, dict):
            fail("%s: not an object" % where)
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in event]
        if missing:
            fail("%s: missing %s" % (where, ", ".join(missing)))
            continue
        phase = event["ph"]
        if phase not in ALLOWED_PHASES:
            fail("%s: unexpected ph %r" % (where, phase))
            continue
        if phase == "M":
            continue  # metadata: no timestamp ordering contract
        recorded += 1

        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail("%s: ts missing or not a number" % where)
            continue
        lane_key = (event["pid"], event["tid"])
        lane = lanes.setdefault(lane_key, {"last_ts": None, "open": 0})
        if lane["last_ts"] is not None and ts < lane["last_ts"]:
            fail("%s: ts %s < previous %s on lane pid=%s tid=%s"
                 % (where, ts, lane["last_ts"], lane_key[0], lane_key[1]))
        lane["last_ts"] = ts

        if phase == "B":
            lane["open"] += 1
        elif phase == "E":
            if lane["open"] == 0:
                fail("%s: E without a matching B on lane pid=%s tid=%s"
                     % (where, lane_key[0], lane_key[1]))
            else:
                lane["open"] -= 1

    for (pid, tid), lane in sorted(lanes.items()):
        if lane["open"] != 0:
            fail("%s: %d unclosed span(s) on lane pid=%s tid=%s"
                 % (path, lane["open"], pid, tid))

    if recorded < min_events:
        fail("%s: only %d non-metadata event(s) recorded (need >= %d)"
             % (path, recorded, min_events))
    return errors


def main(argv):
    args = argv[1:]
    min_events = 1
    if "--min-events" in args:
        at = args.index("--min-events")
        try:
            min_events = int(args[at + 1])
        except (IndexError, ValueError):
            print("--min-events needs an integer", file=sys.stderr)
            return 1
        del args[at:at + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 1

    errors = check(args[0], min_events)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print("%s: trace OK" % args[0])
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
