// hmpt_merge — merge sharded campaign outcome stores into one campaign.
//
// The inverse of `hmpt_campaign --shard i/N`: takes the N shard store
// directories, validates their shard.manifest.json files against one
// another (same campaign fingerprint, shard count and scenario order;
// indices exactly 1..N; disjoint slices covering the campaign), unions
// the content-addressed outcome records into the output store — failing
// loudly when two stores hold different outcomes for the same
// fingerprint — and writes runs.csv / summary.json byte-for-byte
// identical to what an unsharded run of the same campaign writes:
//
//   hmpt_merge --out DIR SHARD_DIR [SHARD_DIR...]
//              [--store-format dir|packed] [--report] [--quiet]
//
// Each shard store may be dir- or packed-format (auto-detected per
// directory, mixes welcome); --store-format picks the output layout
// independently, so a merge doubles as a lossless format conversion.
// An unsharded store (hmpt_campaign writes a 1/1 manifest) merges too, so
// "merge one store into a fresh directory" also serves as artefact
// regeneration from outcomes alone.
//
// Exit codes: 0 success (even when shards recorded failed scenarios —
// they are faithfully reproduced in the merged summary), 1 bad usage,
// 2 merge failure (missing/mismatched manifests, incomplete coverage,
// conflicting outcomes).
#include <iostream>
#include <string>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/merge.h"
#include "report/report.h"
#include "version.h"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --out DIR SHARD_DIR [SHARD_DIR...]\n"
      << "  --out DIR                  merged outcome store + artefacts\n"
      << "                             (required)\n"
      << "  --store-format dir|packed  merged store layout (default dir);\n"
      << "                             shards of either format merge into\n"
      << "                             either, losslessly\n"
      << "  --report                   also write report/index.html\n"
      << "  --quiet                    only print errors and the artefact\n"
      << "                             paths\n"
      << "\n"
      << "Each SHARD_DIR is the --out directory of one `hmpt_campaign\n"
      << "--shard i/N` run (it must contain shard.manifest.json). All N\n"
      << "shards of the campaign are required; the merged runs.csv and\n"
      << "summary.json are byte-identical to an unsharded run's.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmpt;

  std::string output_dir;
  std::vector<std::string> shard_dirs;
  campaign::StoreFormat output_format = campaign::StoreFormat::Dir;
  bool quiet = false;
  bool write_html_report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 1;
      }
      output_dir = argv[++i];
    } else if (arg == "--store-format") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 1;
      }
      try {
        output_format = campaign::store_format_from(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    } else if (arg == "--report") {
      write_html_report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--version") {
      hmpt::cli::print_version("hmpt_merge");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else {
      shard_dirs.push_back(arg);
    }
  }
  if (output_dir.empty() || shard_dirs.empty()) {
    usage(argv[0]);
    return 1;
  }

  try {
    campaign::MergeStats stats;
    const auto result = campaign::merge_shards(shard_dirs, output_dir,
                                               &stats, output_format);
    const auto paths = campaign::write_artifacts(result, output_dir);

    if (!quiet) {
      std::cout << "campaign " << stats.campaign << ": merged "
                << stats.shards << " shard" << (stats.shards == 1 ? "" : "s")
                << ", " << stats.scenarios << " scenarios ("
                << stats.outcomes_merged << " outcome files copied, "
                << stats.failed << " recorded failures)\n";
      std::cout << "\nranked scenarios:\n"
                << campaign::ranked_table(result).to_text() << "\n";
    }
    for (const auto& path : paths) std::cout << "wrote " << path << "\n";
    if (write_html_report)
      std::cout << "wrote " << report::write_report(result, output_dir)
                << "\n";
    std::cout << "merged outcome store: " << output_dir
              << (output_format == campaign::StoreFormat::Packed
                      ? "/outcomes.log"
                      : "/outcomes/")
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "merge failed: " << e.what() << '\n';
    return 2;
  }
}
