// hmpt_campaign — scenario-matrix sweeps with a resumable outcome store.
//
// Expands a campaign (workloads × platforms × strategies × tiers ×
// budgets), declared in a campaign file and/or via repeatable flags, into
// a deduplicated scenario list and runs every scenario through the tuner,
// persisting each outcome as JSON under the output directory:
//
//   hmpt_campaign [<campaign-file>]
//                 [--workload NAME[:k=v,...]]... [--platform NAME]...
//                 [--strategy NAME]... [--tiers K]... [--budget-gb N]...
//                 [--tier-budget-gb T:N]... [--reps N] [--top-k N]
//                 [--out DIR] [--store-format dir|packed] [--shard I/N]
//                 [--plan FILE] [--assign FILE] [--progress-manifest]
//                 [--fleet N] [--worker-bin PATH] [--exec-template T]
//                 [--sync-template T] [--straggler-after S]
//                 [--poll-interval S] [--max-deals N]
//                 [--resume] [--dry-run] [--keep-going] [--report]
//                 [--jobs N] [--measure-jobs N]
//                 [--retries N] [--scenario-timeout S] [--quiet]
//                 [--list-workloads] [--list-platforms]
//
// --resume skips every scenario whose fingerprint is already stored (a
// re-run of a finished campaign executes nothing and reproduces runs.csv
// byte-for-byte); --dry-run prints the same scenario plan a real run
// starts with and exits. Flags default missing axes: platform xeon-max,
// strategy exhaustive.
//
// --shard I/N runs the I-th of N deterministic slices of the campaign
// (fingerprint-ordered, round-robin — disjoint, stable under --resume and
// across hosts). Every real run writes a shard.manifest.json next to its
// outcomes (an unsharded run is the 1/1 shard); hmpt_merge validates N
// such stores against the campaign fingerprint and reproduces the
// unsharded artefacts byte-for-byte.
//
// --fleet N runs the whole campaign as N shard worker processes with
// work stealing and merges the result in-process (see src/fleet/fleet.h
// and the dedicated hmpt_fleet tool — this flag is the same dispatcher).
// --plan/--assign/--progress-manifest are the worker side of that
// protocol: run the exact scenario list of a dispatcher-written plan
// file, restricted to an assigned fingerprint set, rewriting the shard
// manifest after every scenario so the dispatcher can tail progress and
// a SIGKILLed worker leaves a valid manifest.
//
// Exit codes: 0 success, 1 bad usage, 2 campaign failure (including any
// failed scenario under --keep-going).
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/merge.h"
#include "campaign/platforms.h"
#include "cli_parse.h"
#include "common/error.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "obs/trace.h"
#include "report/report.h"
#include "version.h"

namespace {

using namespace hmpt;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [<campaign-file>] [options]\n"
      << "  --workload NAME[:k=v,...]  add a workload (repeatable; see\n"
      << "                             --list-workloads)\n"
      << "  --platform NAME            add a platform (repeatable; default\n"
      << "                             xeon-max; see --list-platforms)\n"
      << "  --strategy NAME            add a strategy (repeatable; default\n"
      << "                             exhaustive)\n"
      << "  --tiers K                  add a tier count (repeatable;\n"
      << "                             default 0 = platform native)\n"
      << "  --budget-gb N              add an HBM budget (repeatable;\n"
      << "                             default 0 = full machine)\n"
      << "  --tier-budget-gb T:N       tier T capacity cap, all scenarios\n"
      << "                             (repeatable)\n"
      << "  --reps N                   measurement repetitions (default 3)\n"
      << "  --top-k N                  estimator: configs to measure\n"
      << "                             (default 3)\n"
      << "  --out DIR                  outcome store + artefacts (default\n"
      << "                             campaign-out)\n"
      << "  --store-format dir|packed  outcome store layout: one JSON file\n"
      << "                             per scenario (dir, default) or one\n"
      << "                             append-only outcomes.log + index\n"
      << "                             for fleet-scale campaigns\n"
      << "  --shard I/N                run the I-th of N deterministic\n"
      << "                             slices of the campaign (1-based;\n"
      << "                             merge the stores with hmpt_merge)\n"
      << "  --plan FILE                run the exact scenario list of a\n"
      << "                             plan file (written by the fleet\n"
      << "                             dispatcher) instead of a campaign\n"
      << "                             file / matrix flags\n"
      << "  --assign FILE              run only the fingerprints listed in\n"
      << "                             FILE (one per line; each must\n"
      << "                             belong to the campaign)\n"
      << "  --progress-manifest        rewrite shard.manifest.json\n"
      << "                             atomically after every scenario, so\n"
      << "                             a dispatcher can tail progress and\n"
      << "                             a killed run leaves a valid\n"
      << "                             manifest\n"
      << "  --fleet N                  run the campaign as N shard worker\n"
      << "                             processes with work stealing, then\n"
      << "                             merge (artefacts byte-identical to\n"
      << "                             an unsharded run; see hmpt_fleet)\n"
      << "  --worker-bin PATH          fleet: worker binary (default:\n"
      << "                             this binary)\n"
      << "  --exec-template T          fleet: launch each worker via\n"
      << "                             /bin/sh -c with {cmd}/{index}\n"
      << "                             substituted (ssh/srun seam)\n"
      << "  --sync-template T          fleet: run per worker store before\n"
      << "                             the merge ({dir}/{index})\n"
      << "  --straggler-after S        fleet: steal from a worker with no\n"
      << "                             progress for S seconds (default 30)\n"
      << "  --poll-interval S          fleet: manifest poll interval in\n"
      << "                             seconds (default 0.2)\n"
      << "  --max-deals N              fleet: launch cap per scenario\n"
      << "                             (default 3)\n"
      << "  --resume                   skip scenarios already stored\n"
      << "  --dry-run                  print the scenario plan, run nothing\n"
      << "  --keep-going               record failures and continue\n"
      << "                             (default: fail fast)\n"
      << "  --report                   also write a self-contained HTML\n"
      << "                             report to <out>/report/index.html\n"
      << "  --trace FILE               record a Chrome trace-event JSON of\n"
      << "                             the run (load in chrome://tracing\n"
      << "                             or Perfetto); artefacts are\n"
      << "                             byte-identical with or without it\n"
      << "  --jobs N                   concurrent scenarios (N >= 0;\n"
      << "                             0 = all hardware threads; default 1)\n"
      << "  --measure-jobs N           measurement threads per scenario\n"
      << "                             (default 1)\n"
      << "  --retries N                retries per scenario after the first\n"
      << "                             attempt (default 0 = fail fast);\n"
      << "                             deterministic exponential backoff\n"
      << "  --scenario-timeout S       per-attempt deadline in seconds\n"
      << "                             (default 0 = none; cooperative)\n"
      << "  --quiet                    suppress per-scenario progress\n"
      << "  --list-workloads           print the workload registry and exit\n"
      << "  --list-platforms           print the platform catalogue and exit\n";
}

int parse_int(const char* argv0, const std::string& flag, const char* text) {
  return hmpt::cli::parse_int(flag, text, [argv0] { usage(argv0); });
}

double parse_double(const char* argv0, const std::string& flag,
                    const char* text) {
  return hmpt::cli::parse_double(flag, text, [argv0] { usage(argv0); });
}

/// This binary's own path — the default fleet worker binary.
std::string self_exe_path() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_file;
  campaign::ScenarioMatrix flags;  // axes added by CLI flags
  campaign::CampaignOptions options;
  campaign::ShardSpec shard;  // default 1/1 = the whole campaign
  int reps = -1;    // -1 = not set on the command line
  int top_k = -1;
  bool quiet = false;
  bool write_html_report = false;
  std::string trace_path;
  std::string plan_path;    // --plan: dispatcher-written scenario list
  std::string assign_path;  // --assign: fingerprint subset to run
  bool progress_manifest = false;
  int fleet_workers = 0;  // --fleet N; 0 = no fleet, run in-process
  fleet::FleetOptions fleet_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      try {
        flags.workloads.push_back(campaign::parse_workload_spec(next()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--platform") flags.platforms.emplace_back(next());
    else if (arg == "--strategy") flags.strategies.emplace_back(next());
    else if (arg == "--tiers")
      flags.tiers.push_back(parse_int(argv[0], arg, next()));
    else if (arg == "--budget-gb")
      flags.budgets_gb.push_back(parse_double(argv[0], arg, next()));
    else if (arg == "--tier-budget-gb") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--tier-budget-gb expects T:N (e.g. 2:64)\n";
        usage(argv[0]);
        return 1;
      }
      flags.tier_budgets_gb.emplace_back(
          parse_int(argv[0], arg, spec.substr(0, colon).c_str()),
          parse_double(argv[0], arg, spec.substr(colon + 1).c_str()));
    }
    else if (arg == "--reps") reps = parse_int(argv[0], arg, next());
    else if (arg == "--top-k") top_k = parse_int(argv[0], arg, next());
    else if (arg == "--out") options.output_dir = next();
    else if (arg == "--store-format") {
      try {
        options.store_format = campaign::store_format_from(next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--shard") {
      try {
        shard = campaign::parse_shard_spec(next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--plan") plan_path = next();
    else if (arg == "--assign") assign_path = next();
    else if (arg == "--progress-manifest") progress_manifest = true;
    else if (arg == "--fleet")
      fleet_workers = parse_int(argv[0], arg, next());
    else if (arg == "--worker-bin") fleet_options.worker_bin = next();
    else if (arg == "--exec-template") fleet_options.exec_template = next();
    else if (arg == "--sync-template") fleet_options.sync_template = next();
    else if (arg == "--straggler-after")
      fleet_options.straggler_after_s = parse_double(argv[0], arg, next());
    else if (arg == "--poll-interval")
      fleet_options.poll_interval_s = parse_double(argv[0], arg, next());
    else if (arg == "--max-deals")
      fleet_options.max_deals = parse_int(argv[0], arg, next());
    else if (arg == "--resume") options.resume = true;
    else if (arg == "--dry-run") options.dry_run = true;
    else if (arg == "--keep-going") options.keep_going = true;
    else if (arg == "--report") write_html_report = true;
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--jobs")
      options.scenario_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--measure-jobs")
      options.measure_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--retries")
      options.attempts = 1 + parse_int(argv[0], arg, next());
    else if (arg == "--scenario-timeout")
      options.scenario_timeout_s = parse_double(argv[0], arg, next());
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list-workloads") {
      std::cout << campaign::WorkloadRegistry::instance().list_text();
      return 0;
    }
    else if (arg == "--list-platforms") {
      std::cout << campaign::platform_catalog_text();
      return 0;
    }
    else if (arg == "--version") {
      cli::print_version("hmpt_campaign");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (campaign_file.empty()) {
      campaign_file = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (options.scenario_jobs < 0 || options.measure_jobs < 0) {
    std::cerr << "--jobs/--measure-jobs must be >= 0\n";
    usage(argv[0]);
    return 1;
  }
  if ((reps != -1 && reps < 1) || (top_k != -1 && top_k < 1)) {
    std::cerr << "--reps/--top-k must be >= 1\n";
    usage(argv[0]);
    return 1;
  }
  if (options.attempts < 1 || options.scenario_timeout_s < 0.0) {
    std::cerr << "--retries and --scenario-timeout must be >= 0\n";
    usage(argv[0]);
    return 1;
  }
  if (fleet_workers < 0) {
    std::cerr << "--fleet must be >= 1\n";
    usage(argv[0]);
    return 1;
  }
  if (fleet_workers > 0 &&
      (!shard.is_whole() || !assign_path.empty() || progress_manifest)) {
    std::cerr << "--fleet does its own dealing; it cannot be combined with "
                 "--shard, --assign or --progress-manifest\n";
    usage(argv[0]);
    return 1;
  }
  if (fleet_workers == 0 &&
      (!fleet_options.worker_bin.empty() ||
       !fleet_options.exec_template.empty() ||
       !fleet_options.sync_template.empty())) {
    std::cerr << "--worker-bin/--exec-template/--sync-template need --fleet\n";
    usage(argv[0]);
    return 1;
  }

  // Declaring the campaign (file parse, axis validation, expansion) is
  // usage territory: errors exit 1 with the usage text, like bad flags.
  // Only failures while actually running scenarios exit 2.
  std::vector<campaign::Scenario> scenarios;
  try {
    if (!plan_path.empty()) {
      // A plan file *is* the campaign — mixing in matrix axes would
      // change the campaign fingerprint out from under the dispatcher
      // that wrote the plan.
      const bool matrix_input =
          !campaign_file.empty() || !flags.workloads.empty() ||
          !flags.platforms.empty() || !flags.strategies.empty() ||
          !flags.tiers.empty() || !flags.budgets_gb.empty() ||
          !flags.tier_budgets_gb.empty() || reps != -1 || top_k != -1;
      if (matrix_input)
        raise("--plan replaces the campaign file and matrix flags");
      scenarios = campaign::load_scenario_plan(plan_path);
    } else {
      // The campaign file provides the base matrix; flags append to its
      // axes, so "hmpt_campaign nightly.campaign --platform knl" widens
      // the declared campaign by one platform.
      campaign::ScenarioMatrix matrix;
      if (!campaign_file.empty())
        matrix = campaign::ScenarioMatrix::load(campaign_file);
      matrix.workloads.insert(matrix.workloads.end(),
                              flags.workloads.begin(),
                              flags.workloads.end());
      matrix.platforms.insert(matrix.platforms.end(),
                              flags.platforms.begin(),
                              flags.platforms.end());
      matrix.strategies.insert(matrix.strategies.end(),
                               flags.strategies.begin(),
                               flags.strategies.end());
      matrix.tiers.insert(matrix.tiers.end(), flags.tiers.begin(),
                          flags.tiers.end());
      matrix.budgets_gb.insert(matrix.budgets_gb.end(),
                               flags.budgets_gb.begin(),
                               flags.budgets_gb.end());
      matrix.tier_budgets_gb.insert(matrix.tier_budgets_gb.end(),
                                    flags.tier_budgets_gb.begin(),
                                    flags.tier_budgets_gb.end());
      if (reps != -1) matrix.repetitions = reps;
      if (top_k != -1) matrix.top_k = top_k;
      if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
      if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
      scenarios = matrix.expand();
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    usage(argv[0]);
    return 1;
  }

  // The slice this process runs: the whole campaign (the default 1/1
  // shard keeps the scenario list in matrix order, so artefacts are
  // unchanged), a deterministic fingerprint-ordered partition, or — as a
  // fleet worker — exactly the dispatcher-assigned fingerprint set.
  std::vector<campaign::Scenario> slice;
  if (!assign_path.empty()) {
    try {
      std::map<std::string, const campaign::Scenario*> by_fp;
      for (const auto& scenario : scenarios)
        by_fp.emplace(scenario.fingerprint(), &scenario);
      const auto fps = fleet::load_assignment(assign_path);
      const std::set<std::string> want(fps.begin(), fps.end());
      for (const auto& fp : want) {  // set order = fingerprint order
        const auto it = by_fp.find(fp);
        if (it == by_fp.end())
          raise("assigned fingerprint is not in the campaign: " + fp);
        slice.push_back(*it->second);
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      usage(argv[0]);
      return 1;
    }
  } else {
    slice = shard.is_whole() ? scenarios
                             : campaign::shard_scenarios(scenarios, shard);
  }

  if (fleet_workers > 0) {
    // Fleet mode: this process becomes the dispatcher; the campaign runs
    // in worker child processes and is merged in-process at the end.
    if (options.dry_run) {
      std::cout << "campaign: " << scenarios.size() << " scenarios, fleet of "
                << fleet_workers << " workers\n"
                << campaign::plan_table(scenarios).to_text()
                << "\ndry run: nothing executed\n";
      return 0;
    }
    try {
      if (!trace_path.empty()) obs::TraceRecorder::instance().start();
      fleet_options.workers = fleet_workers;
      fleet_options.output_dir = options.output_dir;
      fleet_options.store_format = options.store_format;
      fleet_options.worker_jobs = options.scenario_jobs;
      fleet_options.measure_jobs = options.measure_jobs;
      fleet_options.attempts = options.attempts;
      fleet_options.scenario_timeout_s = options.scenario_timeout_s;
      fleet_options.keep_going = options.keep_going;
      if (fleet_options.worker_bin.empty())
        fleet_options.worker_bin = self_exe_path();
      if (fleet_options.worker_bin.empty())
        raise("cannot resolve this binary's path; pass --worker-bin");

      std::cout << "campaign: " << scenarios.size() << " scenarios, fleet of "
                << fleet_workers << " workers\n"
                << campaign::plan_table(scenarios).to_text() << "\n";
      fleet::FleetStats stats;
      const auto result = fleet::run_fleet(
          scenarios, fleet_options, &stats,
          quiet ? fleet::FleetLog{} : fleet::FleetLog{[](const std::string& m) {
            std::cout << m << "\n";
          }});
      campaign::make_manifest(scenarios, campaign::ShardSpec{}, result)
          .save(options.output_dir);
      const auto paths =
          campaign::write_artifacts(result, options.output_dir);
      std::cout << "\nranked scenarios:\n"
                << campaign::ranked_table(result).to_text();
      std::cout << "\nfleet of " << stats.workers << ": " << stats.launches
                << " launches, " << stats.steals << " steals, "
                << stats.worker_deaths << " worker deaths; merged "
                << stats.merge.outcomes_merged << " outcomes ("
                << stats.merge.overlapping << " overlapping, "
                << stats.merge.failed << " failed)\n";
      for (const auto& path : paths) std::cout << "wrote " << path << "\n";
      if (!trace_path.empty()) {
        obs::TraceRecorder::instance().stop_and_write(trace_path);
        std::cout << "wrote " << trace_path << "\n";
      }
      if (write_html_report)
        std::cout << "wrote "
                  << report::write_report(result, options.output_dir) << "\n";
      std::cout << "outcome store: " << options.output_dir
                << (options.store_format == campaign::StoreFormat::Packed
                        ? "/outcomes.log"
                        : "/outcomes/")
                << "\n";
      return result.ok() ? 0 : 2;
    } catch (const std::exception& e) {
      std::cerr << "fleet failed: " << e.what() << '\n';
      return 2;
    }
  }

  std::cout << "campaign: " << scenarios.size() << " scenarios";
  if (!shard.is_whole() || !assign_path.empty())
    std::cout << " (fingerprint "
              << campaign::campaign_fingerprint(scenarios) << "), "
              << (assign_path.empty() ? "shard " + shard.to_string()
                                      : "assigned")
              << ": " << slice.size() << " scenarios";
  std::cout << "\n" << campaign::plan_table(slice).to_text();
  if (options.dry_run) {
    std::cout << "\ndry run: nothing executed\n";
    return 0;
  }
  std::cout << "\n";

  try {
    // Arm the recorder before any scenario runs; everything between here
    // and the stop below lands in the trace. Purely observational: the
    // artefacts written further down are byte-identical either way.
    if (!trace_path.empty()) obs::TraceRecorder::instance().start();
    const campaign::CampaignRunner runner(options);
    // --progress-manifest: the manifest is rewritten atomically after
    // every scenario instead of once at the end, so a fleet dispatcher
    // can tail it and a kill at any instant leaves a valid manifest of
    // exactly the finished scenarios.
    std::optional<campaign::ManifestProgress> progress;
    if (progress_manifest)
      progress.emplace(scenarios, shard, options.output_dir);
    const auto result = runner.run(
        slice, [&](std::size_t index, const campaign::ScenarioRun& run) {
          if (progress) progress->record(run);
          if (quiet) return;
          std::cout << "[" << index + 1 << "/" << slice.size() << "] "
                    << campaign::to_string(run.status) << " "
                    << run.scenario.label();
          if (run.status == campaign::ScenarioRun::Status::Executed ||
              run.status == campaign::ScenarioRun::Status::Cached)
            std::cout << " — " << cell(run.outcome.speedup, 2) << "x";
          if (run.status == campaign::ScenarioRun::Status::Failed)
            std::cout << " — " << run.error;
          std::cout << "\n";
        });

    // Every real run leaves a manifest so its store can be validated and
    // merged (an unsharded run is the 1/1 shard of its own campaign).
    // Under --progress-manifest the incremental writer already holds the
    // union of this and any earlier generation's entries — writing
    // make_manifest's snapshot instead would drop the earlier ones.
    if (!progress)
      campaign::make_manifest(scenarios, shard, result)
          .save(options.output_dir);

    const auto paths =
        campaign::write_artifacts(result, options.output_dir);
    std::cout << "\nranked scenarios:\n"
              << campaign::ranked_table(result).to_text();
    std::cout << "\nexecuted " << result.executed << ", cached "
              << result.cached << ", failed " << result.failed << " of "
              << result.runs.size() << " scenarios in "
              << cell(result.seconds, 2) << " s\n";
    for (const auto& path : paths) std::cout << "wrote " << path << "\n";
    std::cout << "wrote "
              << campaign::ShardManifest::path_in(options.output_dir)
              << "\n";
    std::optional<report::TraceTimeline> timeline;
    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().stop_and_write(trace_path);
      std::cout << "wrote " << trace_path << "\n";
      if (write_html_report)
        timeline = report::load_trace_timeline(trace_path);
    }
    if (write_html_report)
      std::cout << "wrote "
                << report::write_report(result, options.output_dir, "",
                                        timeline ? &*timeline : nullptr)
                << "\n";
    std::cout << "outcome store: " << runner.store().directory()
              << (runner.store().format() == campaign::StoreFormat::Packed
                      ? "/outcomes.log"
                      : "/outcomes/")
              << "\n";
    return result.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << '\n';
    return 2;
  }
}
