// hmpt_campaign — scenario-matrix sweeps with a resumable outcome store.
//
// Expands a campaign (workloads × platforms × strategies × tiers ×
// budgets), declared in a campaign file and/or via repeatable flags, into
// a deduplicated scenario list and runs every scenario through the tuner,
// persisting each outcome as JSON under the output directory:
//
//   hmpt_campaign [<campaign-file>]
//                 [--workload NAME[:k=v,...]]... [--platform NAME]...
//                 [--strategy NAME]... [--tiers K]... [--budget-gb N]...
//                 [--tier-budget-gb T:N]... [--reps N] [--top-k N]
//                 [--out DIR] [--store-format dir|packed] [--shard I/N]
//                 [--resume] [--dry-run] [--keep-going] [--report]
//                 [--jobs N] [--measure-jobs N]
//                 [--retries N] [--scenario-timeout S] [--quiet]
//                 [--list-workloads] [--list-platforms]
//
// --resume skips every scenario whose fingerprint is already stored (a
// re-run of a finished campaign executes nothing and reproduces runs.csv
// byte-for-byte); --dry-run prints the same scenario plan a real run
// starts with and exits. Flags default missing axes: platform xeon-max,
// strategy exhaustive.
//
// --shard I/N runs the I-th of N deterministic slices of the campaign
// (fingerprint-ordered, round-robin — disjoint, stable under --resume and
// across hosts). Every real run writes a shard.manifest.json next to its
// outcomes (an unsharded run is the 1/1 shard); hmpt_merge validates N
// such stores against the campaign fingerprint and reproduces the
// unsharded artefacts byte-for-byte.
//
// Exit codes: 0 success, 1 bad usage, 2 campaign failure (including any
// failed scenario under --keep-going).
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/campaign.h"
#include "campaign/merge.h"
#include "campaign/platforms.h"
#include "cli_parse.h"
#include "common/units.h"
#include "obs/trace.h"
#include "report/report.h"
#include "version.h"

namespace {

using namespace hmpt;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [<campaign-file>] [options]\n"
      << "  --workload NAME[:k=v,...]  add a workload (repeatable; see\n"
      << "                             --list-workloads)\n"
      << "  --platform NAME            add a platform (repeatable; default\n"
      << "                             xeon-max; see --list-platforms)\n"
      << "  --strategy NAME            add a strategy (repeatable; default\n"
      << "                             exhaustive)\n"
      << "  --tiers K                  add a tier count (repeatable;\n"
      << "                             default 0 = platform native)\n"
      << "  --budget-gb N              add an HBM budget (repeatable;\n"
      << "                             default 0 = full machine)\n"
      << "  --tier-budget-gb T:N       tier T capacity cap, all scenarios\n"
      << "                             (repeatable)\n"
      << "  --reps N                   measurement repetitions (default 3)\n"
      << "  --top-k N                  estimator: configs to measure\n"
      << "                             (default 3)\n"
      << "  --out DIR                  outcome store + artefacts (default\n"
      << "                             campaign-out)\n"
      << "  --store-format dir|packed  outcome store layout: one JSON file\n"
      << "                             per scenario (dir, default) or one\n"
      << "                             append-only outcomes.log + index\n"
      << "                             for fleet-scale campaigns\n"
      << "  --shard I/N                run the I-th of N deterministic\n"
      << "                             slices of the campaign (1-based;\n"
      << "                             merge the stores with hmpt_merge)\n"
      << "  --resume                   skip scenarios already stored\n"
      << "  --dry-run                  print the scenario plan, run nothing\n"
      << "  --keep-going               record failures and continue\n"
      << "                             (default: fail fast)\n"
      << "  --report                   also write a self-contained HTML\n"
      << "                             report to <out>/report/index.html\n"
      << "  --trace FILE               record a Chrome trace-event JSON of\n"
      << "                             the run (load in chrome://tracing\n"
      << "                             or Perfetto); artefacts are\n"
      << "                             byte-identical with or without it\n"
      << "  --jobs N                   concurrent scenarios (N >= 0;\n"
      << "                             0 = all hardware threads; default 1)\n"
      << "  --measure-jobs N           measurement threads per scenario\n"
      << "                             (default 1)\n"
      << "  --retries N                retries per scenario after the first\n"
      << "                             attempt (default 0 = fail fast);\n"
      << "                             deterministic exponential backoff\n"
      << "  --scenario-timeout S       per-attempt deadline in seconds\n"
      << "                             (default 0 = none; cooperative)\n"
      << "  --quiet                    suppress per-scenario progress\n"
      << "  --list-workloads           print the workload registry and exit\n"
      << "  --list-platforms           print the platform catalogue and exit\n";
}

int parse_int(const char* argv0, const std::string& flag, const char* text) {
  return hmpt::cli::parse_int(flag, text, [argv0] { usage(argv0); });
}

double parse_double(const char* argv0, const std::string& flag,
                    const char* text) {
  return hmpt::cli::parse_double(flag, text, [argv0] { usage(argv0); });
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_file;
  campaign::ScenarioMatrix flags;  // axes added by CLI flags
  campaign::CampaignOptions options;
  campaign::ShardSpec shard;  // default 1/1 = the whole campaign
  int reps = -1;    // -1 = not set on the command line
  int top_k = -1;
  bool quiet = false;
  bool write_html_report = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      try {
        flags.workloads.push_back(campaign::parse_workload_spec(next()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--platform") flags.platforms.emplace_back(next());
    else if (arg == "--strategy") flags.strategies.emplace_back(next());
    else if (arg == "--tiers")
      flags.tiers.push_back(parse_int(argv[0], arg, next()));
    else if (arg == "--budget-gb")
      flags.budgets_gb.push_back(parse_double(argv[0], arg, next()));
    else if (arg == "--tier-budget-gb") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--tier-budget-gb expects T:N (e.g. 2:64)\n";
        usage(argv[0]);
        return 1;
      }
      flags.tier_budgets_gb.emplace_back(
          parse_int(argv[0], arg, spec.substr(0, colon).c_str()),
          parse_double(argv[0], arg, spec.substr(colon + 1).c_str()));
    }
    else if (arg == "--reps") reps = parse_int(argv[0], arg, next());
    else if (arg == "--top-k") top_k = parse_int(argv[0], arg, next());
    else if (arg == "--out") options.output_dir = next();
    else if (arg == "--store-format") {
      try {
        options.store_format = campaign::store_format_from(next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--shard") {
      try {
        shard = campaign::parse_shard_spec(next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--resume") options.resume = true;
    else if (arg == "--dry-run") options.dry_run = true;
    else if (arg == "--keep-going") options.keep_going = true;
    else if (arg == "--report") write_html_report = true;
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--jobs")
      options.scenario_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--measure-jobs")
      options.measure_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--retries")
      options.attempts = 1 + parse_int(argv[0], arg, next());
    else if (arg == "--scenario-timeout")
      options.scenario_timeout_s = parse_double(argv[0], arg, next());
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list-workloads") {
      std::cout << campaign::WorkloadRegistry::instance().list_text();
      return 0;
    }
    else if (arg == "--list-platforms") {
      std::cout << campaign::platform_catalog_text();
      return 0;
    }
    else if (arg == "--version") {
      cli::print_version("hmpt_campaign");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (campaign_file.empty()) {
      campaign_file = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (options.scenario_jobs < 0 || options.measure_jobs < 0) {
    std::cerr << "--jobs/--measure-jobs must be >= 0\n";
    usage(argv[0]);
    return 1;
  }
  if ((reps != -1 && reps < 1) || (top_k != -1 && top_k < 1)) {
    std::cerr << "--reps/--top-k must be >= 1\n";
    usage(argv[0]);
    return 1;
  }
  if (options.attempts < 1 || options.scenario_timeout_s < 0.0) {
    std::cerr << "--retries and --scenario-timeout must be >= 0\n";
    usage(argv[0]);
    return 1;
  }

  // Declaring the campaign (file parse, axis validation, expansion) is
  // usage territory: errors exit 1 with the usage text, like bad flags.
  // Only failures while actually running scenarios exit 2.
  std::vector<campaign::Scenario> scenarios;
  try {
    // The campaign file provides the base matrix; flags append to its
    // axes, so "hmpt_campaign nightly.campaign --platform knl" widens the
    // declared campaign by one platform.
    campaign::ScenarioMatrix matrix;
    if (!campaign_file.empty())
      matrix = campaign::ScenarioMatrix::load(campaign_file);
    matrix.workloads.insert(matrix.workloads.end(), flags.workloads.begin(),
                            flags.workloads.end());
    matrix.platforms.insert(matrix.platforms.end(), flags.platforms.begin(),
                            flags.platforms.end());
    matrix.strategies.insert(matrix.strategies.end(),
                             flags.strategies.begin(),
                             flags.strategies.end());
    matrix.tiers.insert(matrix.tiers.end(), flags.tiers.begin(),
                        flags.tiers.end());
    matrix.budgets_gb.insert(matrix.budgets_gb.end(),
                             flags.budgets_gb.begin(),
                             flags.budgets_gb.end());
    matrix.tier_budgets_gb.insert(matrix.tier_budgets_gb.end(),
                                  flags.tier_budgets_gb.begin(),
                                  flags.tier_budgets_gb.end());
    if (reps != -1) matrix.repetitions = reps;
    if (top_k != -1) matrix.top_k = top_k;
    if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
    if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
    scenarios = matrix.expand();
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    usage(argv[0]);
    return 1;
  }

  // The slice this process runs: the whole campaign (the default 1/1
  // shard keeps the scenario list in matrix order, so artefacts are
  // unchanged), or a deterministic fingerprint-ordered partition.
  const std::vector<campaign::Scenario> slice =
      shard.is_whole() ? scenarios
                       : campaign::shard_scenarios(scenarios, shard);

  std::cout << "campaign: " << scenarios.size() << " scenarios";
  if (!shard.is_whole())
    std::cout << " (fingerprint "
              << campaign::campaign_fingerprint(scenarios) << "), shard "
              << shard.to_string() << ": " << slice.size() << " scenarios";
  std::cout << "\n" << campaign::plan_table(slice).to_text();
  if (options.dry_run) {
    std::cout << "\ndry run: nothing executed\n";
    return 0;
  }
  std::cout << "\n";

  try {
    // Arm the recorder before any scenario runs; everything between here
    // and the stop below lands in the trace. Purely observational: the
    // artefacts written further down are byte-identical either way.
    if (!trace_path.empty()) obs::TraceRecorder::instance().start();
    const campaign::CampaignRunner runner(options);
    const auto result = runner.run(
        slice, [&](std::size_t index, const campaign::ScenarioRun& run) {
          if (quiet) return;
          std::cout << "[" << index + 1 << "/" << slice.size() << "] "
                    << campaign::to_string(run.status) << " "
                    << run.scenario.label();
          if (run.status == campaign::ScenarioRun::Status::Executed ||
              run.status == campaign::ScenarioRun::Status::Cached)
            std::cout << " — " << cell(run.outcome.speedup, 2) << "x";
          if (run.status == campaign::ScenarioRun::Status::Failed)
            std::cout << " — " << run.error;
          std::cout << "\n";
        });

    // Every real run leaves a manifest so its store can be validated and
    // merged (an unsharded run is the 1/1 shard of its own campaign).
    campaign::make_manifest(scenarios, shard, result)
        .save(options.output_dir);

    const auto paths =
        campaign::write_artifacts(result, options.output_dir);
    std::cout << "\nranked scenarios:\n"
              << campaign::ranked_table(result).to_text();
    std::cout << "\nexecuted " << result.executed << ", cached "
              << result.cached << ", failed " << result.failed << " of "
              << result.runs.size() << " scenarios in "
              << cell(result.seconds, 2) << " s\n";
    for (const auto& path : paths) std::cout << "wrote " << path << "\n";
    std::cout << "wrote "
              << campaign::ShardManifest::path_in(options.output_dir)
              << "\n";
    std::optional<report::TraceTimeline> timeline;
    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().stop_and_write(trace_path);
      std::cout << "wrote " << trace_path << "\n";
      if (write_html_report)
        timeline = report::load_trace_timeline(trace_path);
    }
    if (write_html_report)
      std::cout << "wrote "
                << report::write_report(result, options.output_dir, "",
                                        timeline ? &*timeline : nullptr)
                << "\n";
    std::cout << "outcome store: " << runner.store().directory()
              << (runner.store().format() == campaign::StoreFormat::Packed
                      ? "/outcomes.log"
                      : "/outcomes/")
              << "\n";
    return result.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << '\n';
    return 2;
  }
}
