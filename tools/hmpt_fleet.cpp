// hmpt_fleet — distributed campaign dispatch with work stealing.
//
// Expands a campaign exactly like hmpt_campaign, then runs it as a fleet:
// the scenario matrix is dealt (fingerprint-ordered, round-robin) into N
// shard worker processes, each an `hmpt_campaign --plan --assign
// --progress-manifest` child on its own outcome store; the dispatcher
// tails every worker's shard.manifest.json for per-scenario completion
// and re-deals unfinished work away from dead or stalled workers to idle
// ones. Duplicate execution from steals is resolved by the store's
// first-write-wins byte-compare, and the final in-process merge verifies
// every overlap byte-for-byte — runs.csv, summary.json and the merged
// outcome store are byte-identical to a single-process run of the same
// campaign, whatever was killed, stopped or stolen along the way:
//
//   hmpt_fleet [<campaign-file>] --workers N
//              [--workload NAME[:k=v,...]]... [--platform NAME]...
//              [--strategy NAME]... [--tiers K]... [--budget-gb N]...
//              [--tier-budget-gb T:N]... [--reps N] [--top-k N]
//              [--out DIR] [--store-format dir|packed]
//              [--worker-bin PATH] [--exec-template T] [--sync-template T]
//              [--straggler-after S] [--poll-interval S] [--max-deals N]
//              [--jobs N] [--measure-jobs N]
//              [--retries N] [--scenario-timeout S]
//              [--keep-going] [--dry-run] [--report] [--trace FILE]
//              [--quiet]
//
// --exec-template launches each worker through /bin/sh -c with {cmd}
// (the shell-quoted worker command) and {index} (the 1-based worker
// index) substituted — "ssh node{index} {cmd}" turns the local fleet
// into an ssh fleet; --sync-template then pulls each store back before
// the merge ({dir}/{index} substituted). `hmpt_campaign --fleet N` is
// the same dispatcher reached from the campaign tool.
//
// Exit codes: 0 success, 1 bad usage, 2 fleet failure (a worker failed
// under fail-fast, a scenario exhausted its deal cap, the merge found
// conflicting bytes, or any scenario failed under --keep-going).
#include <unistd.h>

#include <climits>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/merge.h"
#include "campaign/platforms.h"
#include "cli_parse.h"
#include "common/error.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "obs/trace.h"
#include "report/report.h"
#include "version.h"

namespace {

using namespace hmpt;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [<campaign-file>] --workers N [options]\n"
      << "  --workers N                shard worker processes (required)\n"
      << "  --workload NAME[:k=v,...]  add a workload (repeatable; see\n"
      << "                             --list-workloads)\n"
      << "  --platform NAME            add a platform (repeatable; default\n"
      << "                             xeon-max; see --list-platforms)\n"
      << "  --strategy NAME            add a strategy (repeatable; default\n"
      << "                             exhaustive)\n"
      << "  --tiers K                  add a tier count (repeatable)\n"
      << "  --budget-gb N              add an HBM budget (repeatable)\n"
      << "  --tier-budget-gb T:N       tier T capacity cap (repeatable)\n"
      << "  --reps N                   measurement repetitions (default 3)\n"
      << "  --top-k N                  estimator: configs to measure\n"
      << "  --out DIR                  merged store + artefacts (default\n"
      << "                             fleet-out); worker stores live at\n"
      << "                             DIR/shard-<i>\n"
      << "  --store-format dir|packed  store layout, workers and merged\n"
      << "                             store alike (default dir)\n"
      << "  --worker-bin PATH          worker binary (default: the\n"
      << "                             hmpt_campaign next to this binary)\n"
      << "  --exec-template T          launch each worker via /bin/sh -c\n"
      << "                             with {cmd}/{index} substituted\n"
      << "                             (ssh/srun seam)\n"
      << "  --sync-template T          run per worker store before the\n"
      << "                             merge ({dir}/{index} substituted)\n"
      << "  --straggler-after S        steal from a worker with no\n"
      << "                             progress for S seconds (default 30)\n"
      << "  --poll-interval S          manifest poll interval in seconds\n"
      << "                             (default 0.2)\n"
      << "  --max-deals N              launch cap per scenario (default 3)\n"
      << "  --jobs N                   concurrent scenarios per worker\n"
      << "                             (default 1; 0 = all hw threads)\n"
      << "  --measure-jobs N           measurement threads per scenario\n"
      << "  --retries N                retries per scenario (default 0)\n"
      << "  --scenario-timeout S       per-attempt deadline in seconds\n"
      << "  --keep-going               record scenario failures and finish\n"
      << "                             the campaign (default: fail fast)\n"
      << "  --dry-run                  print the scenario plan, run nothing\n"
      << "  --report                   also write report/index.html\n"
      << "  --trace FILE               Chrome trace-event JSON of the\n"
      << "                             dispatch (launch/steal/death events;\n"
      << "                             artefacts identical either way)\n"
      << "  --quiet                    only errors and artefact paths\n"
      << "  --list-workloads           print the workload registry and exit\n"
      << "  --list-platforms           print the platform catalogue and exit\n";
}

int parse_int(const char* argv0, const std::string& flag, const char* text) {
  return hmpt::cli::parse_int(flag, text, [argv0] { usage(argv0); });
}

double parse_double(const char* argv0, const std::string& flag,
                    const char* text) {
  return hmpt::cli::parse_double(flag, text, [argv0] { usage(argv0); });
}

/// The hmpt_campaign binary installed next to this one — the default
/// worker binary.
std::string sibling_campaign_bin() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string self(buf);
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "";
  return self.substr(0, slash + 1) + "hmpt_campaign";
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_file;
  campaign::ScenarioMatrix flags;
  fleet::FleetOptions options;
  options.workers = 0;  // required flag; 0 trips the check below
  options.output_dir = "fleet-out";
  int reps = -1;
  int top_k = -1;
  bool dry_run = false;
  bool quiet = false;
  bool write_html_report = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      try {
        flags.workloads.push_back(campaign::parse_workload_spec(next()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--platform") flags.platforms.emplace_back(next());
    else if (arg == "--strategy") flags.strategies.emplace_back(next());
    else if (arg == "--tiers")
      flags.tiers.push_back(parse_int(argv[0], arg, next()));
    else if (arg == "--budget-gb")
      flags.budgets_gb.push_back(parse_double(argv[0], arg, next()));
    else if (arg == "--tier-budget-gb") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--tier-budget-gb expects T:N (e.g. 2:64)\n";
        usage(argv[0]);
        return 1;
      }
      flags.tier_budgets_gb.emplace_back(
          parse_int(argv[0], arg, spec.substr(0, colon).c_str()),
          parse_double(argv[0], arg, spec.substr(colon + 1).c_str()));
    }
    else if (arg == "--reps") reps = parse_int(argv[0], arg, next());
    else if (arg == "--top-k") top_k = parse_int(argv[0], arg, next());
    else if (arg == "--workers")
      options.workers = parse_int(argv[0], arg, next());
    else if (arg == "--out") options.output_dir = next();
    else if (arg == "--store-format") {
      try {
        options.store_format = campaign::store_format_from(next());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--worker-bin") options.worker_bin = next();
    else if (arg == "--exec-template") options.exec_template = next();
    else if (arg == "--sync-template") options.sync_template = next();
    else if (arg == "--straggler-after")
      options.straggler_after_s = parse_double(argv[0], arg, next());
    else if (arg == "--poll-interval")
      options.poll_interval_s = parse_double(argv[0], arg, next());
    else if (arg == "--max-deals")
      options.max_deals = parse_int(argv[0], arg, next());
    else if (arg == "--jobs")
      options.worker_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--measure-jobs")
      options.measure_jobs = parse_int(argv[0], arg, next());
    else if (arg == "--retries")
      options.attempts = 1 + parse_int(argv[0], arg, next());
    else if (arg == "--scenario-timeout")
      options.scenario_timeout_s = parse_double(argv[0], arg, next());
    else if (arg == "--keep-going") options.keep_going = true;
    else if (arg == "--dry-run") dry_run = true;
    else if (arg == "--report") write_html_report = true;
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list-workloads") {
      std::cout << campaign::WorkloadRegistry::instance().list_text();
      return 0;
    }
    else if (arg == "--list-platforms") {
      std::cout << campaign::platform_catalog_text();
      return 0;
    }
    else if (arg == "--version") {
      cli::print_version("hmpt_fleet");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (campaign_file.empty()) {
      campaign_file = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (options.workers < 1) {
    std::cerr << "--workers N (>= 1) is required\n";
    usage(argv[0]);
    return 1;
  }
  if (options.worker_jobs < 0 || options.measure_jobs < 0 ||
      options.attempts < 1 || options.scenario_timeout_s < 0.0 ||
      options.max_deals < 1 || options.poll_interval_s <= 0.0) {
    std::cerr << "--jobs/--measure-jobs/--retries/--scenario-timeout must be "
                 ">= 0; --max-deals >= 1; --poll-interval > 0\n";
    usage(argv[0]);
    return 1;
  }
  if ((reps != -1 && reps < 1) || (top_k != -1 && top_k < 1)) {
    std::cerr << "--reps/--top-k must be >= 1\n";
    usage(argv[0]);
    return 1;
  }

  std::vector<campaign::Scenario> scenarios;
  try {
    campaign::ScenarioMatrix matrix;
    if (!campaign_file.empty())
      matrix = campaign::ScenarioMatrix::load(campaign_file);
    matrix.workloads.insert(matrix.workloads.end(), flags.workloads.begin(),
                            flags.workloads.end());
    matrix.platforms.insert(matrix.platforms.end(), flags.platforms.begin(),
                            flags.platforms.end());
    matrix.strategies.insert(matrix.strategies.end(),
                             flags.strategies.begin(),
                             flags.strategies.end());
    matrix.tiers.insert(matrix.tiers.end(), flags.tiers.begin(),
                        flags.tiers.end());
    matrix.budgets_gb.insert(matrix.budgets_gb.end(),
                             flags.budgets_gb.begin(),
                             flags.budgets_gb.end());
    matrix.tier_budgets_gb.insert(matrix.tier_budgets_gb.end(),
                                  flags.tier_budgets_gb.begin(),
                                  flags.tier_budgets_gb.end());
    if (reps != -1) matrix.repetitions = reps;
    if (top_k != -1) matrix.top_k = top_k;
    if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
    if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
    scenarios = matrix.expand();
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    usage(argv[0]);
    return 1;
  }

  if (!quiet || dry_run)
    std::cout << "campaign: " << scenarios.size() << " scenarios (fingerprint "
              << campaign::campaign_fingerprint(scenarios) << "), fleet of "
              << options.workers << " workers\n"
              << campaign::plan_table(scenarios).to_text() << "\n";
  if (dry_run) {
    std::cout << "dry run: nothing executed\n";
    return 0;
  }

  try {
    if (!trace_path.empty()) obs::TraceRecorder::instance().start();
    if (options.worker_bin.empty()) options.worker_bin = sibling_campaign_bin();
    if (options.worker_bin.empty())
      raise("cannot locate hmpt_campaign next to this binary; "
            "pass --worker-bin");

    fleet::FleetStats stats;
    const auto result = fleet::run_fleet(
        scenarios, options, &stats,
        quiet ? fleet::FleetLog{} : fleet::FleetLog{[](const std::string& m) {
          std::cout << m << "\n";
        }});

    // The merged output is a complete 1/1 campaign store: manifest +
    // artefacts exactly as an unsharded hmpt_campaign run writes them.
    campaign::make_manifest(scenarios, campaign::ShardSpec{}, result)
        .save(options.output_dir);
    const auto paths = campaign::write_artifacts(result, options.output_dir);

    if (!quiet)
      std::cout << "\nranked scenarios:\n"
                << campaign::ranked_table(result).to_text() << "\n"
                << "fleet of " << stats.workers << ": " << stats.launches
                << " launches, " << stats.steals << " steals, "
                << stats.worker_deaths << " worker deaths; merged "
                << stats.merge.outcomes_merged << " outcomes ("
                << stats.merge.overlapping << " overlapping, "
                << stats.merge.failed << " failed)\n";
    for (const auto& path : paths) std::cout << "wrote " << path << "\n";
    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().stop_and_write(trace_path);
      std::cout << "wrote " << trace_path << "\n";
    }
    if (write_html_report)
      std::cout << "wrote "
                << report::write_report(result, options.output_dir) << "\n";
    std::cout << "merged outcome store: " << options.output_dir
              << (options.store_format == campaign::StoreFormat::Packed
                      ? "/outcomes.log"
                      : "/outcomes/")
              << "\n";
    return result.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "fleet failed: " << e.what() << '\n';
    return 2;
  }
}
