// cli_parse.h — strict numeric flag parsing shared by the hmpt CLIs.
//
// All tools reject garbage ("--reps abc"), partial values ("--reps 3x"),
// and out-of-range or non-finite values ("--budget-gb inf") with exit 1
// after printing their usage text, instead of silently misconfiguring the
// run via atoi()-style truncation. The validation itself is
// common/parse.h — the same checked full-consumption parsing the campaign
// file and workload-parameter paths use — so the CLI and the library
// cannot drift apart on what counts as a number. `usage` is the tool's
// usage printer, invoked before exiting.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "common/parse.h"

namespace hmpt::cli {

inline int parse_int(const std::string& flag, const char* text,
                     const std::function<void()>& usage) {
  if (const auto value = hmpt::parse_int_strict(text)) return *value;
  std::cerr << flag << ": not an integer: '" << text << "'\n";
  usage();
  std::exit(1);
}

inline double parse_double(const std::string& flag, const char* text,
                           const std::function<void()>& usage) {
  if (const auto value = hmpt::parse_double_strict(text)) return *value;
  std::cerr << flag << ": not a finite number: '" << text << "'\n";
  usage();
  std::exit(1);
}

}  // namespace hmpt::cli
