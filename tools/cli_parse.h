// cli_parse.h — strict numeric flag parsing shared by the hmpt CLIs.
//
// Both tools reject garbage ("--reps abc") and out-of-range values with
// exit 1 after printing their usage text, instead of silently
// misconfiguring the run via atoi()-style truncation. `usage` is the
// tool's usage printer, invoked before exiting.
#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

namespace hmpt::cli {

inline int parse_int(const std::string& flag, const char* text,
                     const std::function<void()>& usage) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << flag << ": not an integer: '" << text << "'\n";
  } else if (errno == ERANGE || value < INT_MIN || value > INT_MAX) {
    std::cerr << flag << ": out of range: '" << text << "'\n";
  } else {
    return static_cast<int>(value);
  }
  usage();
  std::exit(1);
}

inline double parse_double(const std::string& flag, const char* text,
                           const std::function<void()>& usage) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::cerr << flag << ": not a number: '" << text << "'\n";
  } else if (errno == ERANGE || !std::isfinite(value)) {
    std::cerr << flag << ": out of range: '" << text << "'\n";
  } else {
    return value;
  }
  usage();
  std::exit(1);
}

}  // namespace hmpt::cli
