// hmptd — the tuning-as-a-service daemon.
//
// Serves the NDJSON protocol (docs/SERVICE.md) over a Unix-domain socket
// (--socket PATH, the default transport) or loopback TCP (--port N; port
// 0 lets the kernel pick and prints the choice), executing submitted
// scenarios on a bounded worker pool and persisting every outcome in the
// same content-addressed store hmpt_campaign writes — a scenario tuned
// through the daemon is byte-identical on disk to the batch run, and a
// resubmit is answered from the store without re-execution.
//
//   hmptd (--socket PATH | --port N) [--host ADDR] [--workers N]
//         [--store DIR] [--max-in-flight N] [--max-queue N]
//         [--measure-jobs N] [--latency-classes N] [--retries N]
//         [--job-timeout S] [--journal PATH] [--fault-spec SPEC]
//         [--trace FILE] [--metrics-file FILE] [--metrics-interval S]
//         [--quiet]
//
// Fault tolerance: --retries/--job-timeout set the default failure model
// (per-job submit fields override), --journal makes acked submits
// crash-safe (replayed on restart; see docs/SERVICE.md "Failure model"),
// and --fault-spec wraps the provider in deterministic fault injection
// for chaos testing (see service/fault.h for the grammar).
//
// Runs in the foreground until a `shutdown` request or SIGINT/SIGTERM;
// both paths drain in-flight work before exiting. Exit codes: 0 clean
// shutdown, 1 bad usage, 2 runtime failure (e.g. the bind failed).
#include <csignal>
#include <iostream>
#include <memory>
#include <string>

#include "cli_parse.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "service/fault.h"
#include "version.h"

namespace {

using namespace hmpt;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--socket PATH | --port N) [options]\n"
      << "  --socket PATH       listen on a Unix-domain socket\n"
      << "  --port N            listen on loopback TCP (0 = kernel-picked)\n"
      << "  --host ADDR         TCP bind address (default 127.0.0.1)\n"
      << "  --workers N         scheduler worker pool size (default 1)\n"
      << "  --store DIR         outcome store + artefact directory\n"
      << "                      (default hmptd-out)\n"
      << "  --max-in-flight N   per-client incomplete-job cap (default 256)\n"
      << "  --max-queue N       global queued-job capacity (default 4096)\n"
      << "  --measure-jobs N    measurement threads per scenario (default 1)\n"
      << "  --latency-classes N latency-store class-map bound (default 256;\n"
      << "                      least-recently-recorded class evicted past\n"
      << "                      it, falling back to the overall tracker)\n"
      << "  --retries N         retries per job after the first attempt\n"
      << "                      (default 0 = fail fast)\n"
      << "  --job-timeout S     per-attempt deadline in seconds\n"
      << "                      (default 0 = none)\n"
      << "  --journal PATH      crash-safe job journal: fsync every submit\n"
      << "                      before its ack, replay unfinished jobs on\n"
      << "                      startup\n"
      << "  --fault-spec SPEC   deterministic fault injection, e.g.\n"
      << "                      seed=7,fail=0.3:2,timeout=0.2:1 (testing)\n"
      << "  --trace FILE        record a Chrome trace-event file of the\n"
      << "                      daemon's spans (written at shutdown; load\n"
      << "                      in Perfetto or chrome://tracing)\n"
      << "  --metrics-file FILE write the stats snapshot as one JSON line\n"
      << "                      periodically and at shutdown (atomic\n"
      << "                      rename; same fields as the stats verb)\n"
      << "  --metrics-interval S  snapshot period in seconds (default 5)\n"
      << "  --quiet             suppress startup/shutdown messages\n"
      << "  --version           print the tool version and exit\n";
}

// Signal handlers may only touch lock-free state; the main loop polls
// this flag and routes it into Daemon::request_shutdown.
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

}  // namespace

int main(int argc, char** argv) {
  service::DaemonOptions options;
  bool port_set = false;
  bool quiet = false;
  int retries = 0;
  double job_timeout_s = 0.0;
  std::string fault_spec_text;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    const auto parse = [&](const char* text) {
      return cli::parse_int(arg, text, [&] { usage(argv[0]); });
    };
    if (arg == "--socket") options.endpoint.unix_path = next();
    else if (arg == "--port") {
      options.endpoint.port = parse(next());
      port_set = true;
    }
    else if (arg == "--host") options.endpoint.host = next();
    else if (arg == "--workers") options.workers = parse(next());
    else if (arg == "--store") options.store_dir = next();
    else if (arg == "--max-in-flight")
      options.max_in_flight = parse(next());
    else if (arg == "--max-queue") {
      const int queue = parse(next());
      if (queue < 1) {
        std::cerr << "--max-queue must be >= 1\n";
        usage(argv[0]);
        return 1;
      }
      options.max_queue = static_cast<std::size_t>(queue);
    }
    else if (arg == "--measure-jobs") options.measure_jobs = parse(next());
    else if (arg == "--latency-classes") {
      const int classes = parse(next());
      if (classes < 1) {
        std::cerr << "--latency-classes must be >= 1\n";
        usage(argv[0]);
        return 1;
      }
      options.latency_classes = static_cast<std::size_t>(classes);
    }
    else if (arg == "--retries") retries = parse(next());
    else if (arg == "--job-timeout")
      job_timeout_s =
          cli::parse_double(arg, next(), [&] { usage(argv[0]); });
    else if (arg == "--journal") options.journal_path = next();
    else if (arg == "--fault-spec") fault_spec_text = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--metrics-file") options.metrics_path = next();
    else if (arg == "--metrics-interval")
      options.metrics_interval_s =
          cli::parse_double(arg, next(), [&] { usage(argv[0]); });
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--version") {
      cli::print_version("hmptd");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    }
  }
  if (options.endpoint.is_unix() == port_set) {
    std::cerr << (port_set ? "--socket and --port are mutually exclusive\n"
                           : "one of --socket or --port is required\n");
    usage(argv[0]);
    return 1;
  }
  if (options.workers < 1 || options.max_in_flight < 1 ||
      options.measure_jobs < 1 ||
      (port_set && (options.endpoint.port < 0 ||
                    options.endpoint.port > 65535))) {
    std::cerr << "--workers/--max-in-flight/--measure-jobs must be >= 1"
                 " and --port in [0, 65535]\n";
    usage(argv[0]);
    return 1;
  }
  if (retries < 0 || job_timeout_s < 0.0) {
    std::cerr << "--retries and --job-timeout must be >= 0\n";
    usage(argv[0]);
    return 1;
  }
  if (options.metrics_interval_s <= 0.0) {
    std::cerr << "--metrics-interval must be > 0\n";
    usage(argv[0]);
    return 1;
  }
  options.retry.max_attempts = 1 + retries;
  options.retry.attempt_deadline_s = job_timeout_s;

  try {
    // Arm before the daemon spins up so startup (journal replay, worker
    // launch) is captured too. Tracing never alters protocol responses
    // or store bytes — it only records timestamps on the side.
    if (!trace_path.empty()) obs::TraceRecorder::instance().start();

    // The fault injector wraps the same simulator provider the daemon
    // would own; everything downstream (scheduler, store, protocol) is
    // oblivious to it.
    std::unique_ptr<service::SimulatorProvider> simulator;
    std::unique_ptr<service::FaultInjectingProvider> faulty;
    if (!fault_spec_text.empty()) {
      const auto spec = service::FaultSpec::parse(fault_spec_text);
      simulator =
          std::make_unique<service::SimulatorProvider>(options.measure_jobs);
      faulty = std::make_unique<service::FaultInjectingProvider>(*simulator,
                                                                 spec);
    }
    service::Daemon daemon(options, faulty.get());
    daemon.start();
    if (!quiet) {
      std::cout << "hmptd " << cli::kVersion << " listening on "
                << daemon.endpoint().to_string() << " ("
                << options.workers << " worker"
                << (options.workers == 1 ? "" : "s") << ", store "
                << options.store_dir << ")" << std::endl;
      if (!options.journal_path.empty())
        std::cout << "hmptd: journal " << options.journal_path << " ("
                  << daemon.replayed_jobs() << " job"
                  << (daemon.replayed_jobs() == 1 ? "" : "s")
                  << " replayed)" << std::endl;
      if (faulty != nullptr)
        std::cout << "hmptd: fault injection armed ("
                  << service::FaultSpec::parse(fault_spec_text).canonical()
                  << ")" << std::endl;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // Serve until a shutdown request (wait_for returns true) or a
    // signal; either way the daemon drains before the process exits.
    while (!daemon.wait_for(200)) {
      if (g_signal != 0) daemon.request_shutdown();
    }
    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().stop_and_write(trace_path);
      if (!quiet) std::cout << "hmptd: wrote " << trace_path << "\n";
    }
    if (!quiet) std::cout << "hmptd: drained, shut down\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hmptd: " << e.what() << '\n';
    return 2;
  }
}
