// version.h — the one version string every hmpt tool reports.
//
// All five CLIs (hmpt_analyze, hmpt_campaign, hmpt_merge, hmptd,
// hmpt_submit) answer `--version` from here, so a mixed-version toolchain
// is detectable from the command line alone. Bump once per release; the
// daemon protocol carries its own revision (service/protocol.h) because
// wire compatibility and tool versioning move at different speeds.
#pragma once

#include <iostream>

namespace hmpt::cli {

inline constexpr const char* kVersion = "0.6.0";

/// Print "<tool> <version>" to stdout, the whole --version handler.
inline void print_version(const char* tool) {
  std::cout << tool << " " << kVersion << "\n";
}

}  // namespace hmpt::cli
