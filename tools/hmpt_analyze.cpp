// hmpt_analyze — command-line front end of the tuner.
//
// Loads a recorded workload profile (the format trace_io writes and the
// driver's profiling path produces), sweeps its placement space on a
// simulated platform, prints the paper-style analysis, and optionally
// writes the recommended shim placement plan for the next run:
//
//   hmpt_analyze <profile> [--platform spr|spr1|knl] [--budget-gb N]
//                [--threshold F] [--reps N] [--plan-out FILE] [--csv]
//
// Exit codes: 0 success, 1 bad usage, 2 analysis failure.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/units.h"
#include "core/driver.h"
#include "simmem/simulator.h"
#include "workloads/trace_io.h"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <profile> [options]\n"
      << "  --platform spr|spr1|knl   platform model (default spr: dual\n"
      << "                            Xeon Max 9468; spr1: one socket;\n"
      << "                            knl: KNL-like)\n"
      << "  --budget-gb N             HBM capacity budget for the plan\n"
      << "  --threshold F             speedup fraction for the minimal\n"
      << "                            footprint search (default 0.9)\n"
      << "  --reps N                  measurement repetitions (default 3)\n"
      << "  --plan-out FILE           write the recommended shim plan\n"
      << "  --csv                     also print the summary-view CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmpt;
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }

  std::string profile_path;
  std::string platform = "spr";
  std::string plan_out;
  double budget_gb = 0.0;
  double threshold = 0.9;
  int reps = 3;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--platform") platform = next();
    else if (arg == "--budget-gb") budget_gb = std::atof(next());
    else if (arg == "--threshold") threshold = std::atof(next());
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--plan-out") plan_out = next();
    else if (arg == "--csv") csv = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (profile_path.empty()) {
      profile_path = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (profile_path.empty()) {
    usage(argv[0]);
    return 1;
  }

  try {
    auto simulator = [&]() -> sim::MachineSimulator {
      if (platform == "spr") return sim::MachineSimulator::paper_platform();
      if (platform == "spr1")
        return sim::MachineSimulator::paper_platform_single();
      if (platform == "knl")
        return sim::MachineSimulator(topo::knl_like_flat_snc4(),
                                     sim::knl_like_calibration());
      raise("unknown platform: " + platform);
    }();

    const auto workload = workloads::load_workload(profile_path);
    std::cout << "profile: " << profile_path << " (" << workload.name()
              << ", " << workload.num_groups() << " groups, "
              << format_bytes(workload.total_bytes()) << ")\n";
    std::cout << "platform: " << simulator.machine().name() << "\n\n";

    tuner::DriverOptions options;
    options.experiment.repetitions = reps;
    options.threshold_fraction = threshold;
    options.hbm_budget_bytes = budget_gb * GB;
    tuner::Driver driver(simulator, simulator.full_machine(), options);
    const auto report = driver.analyze(workload);
    std::cout << report.to_text();
    if (csv) {
      std::cout << "\nsummary view CSV:\n"
                << report.summary_view.table.to_csv();
    }

    if (!plan_out.empty()) {
      // Materialise the recommended mask against the profile's group
      // labels (named call sites).
      std::vector<tuner::AllocationGroup> groups;
      for (const auto& g : workload.groups()) {
        tuner::AllocationGroup ag;
        ag.label = g.label;
        ag.bytes = g.bytes;
        groups.push_back(ag);
      }
      const auto plan = driver.plan_for(report, groups);
      std::ofstream os(plan_out);
      if (!os.good()) {
        std::cerr << "cannot write plan to " << plan_out << '\n';
        return 2;
      }
      os << plan.serialize();
      std::cout << "\nplacement plan written to " << plan_out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "analysis failed: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
