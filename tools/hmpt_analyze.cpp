// hmpt_analyze — command-line front end of the tuner.
//
// Loads a recorded workload profile (the format trace_io writes and the
// driver's profiling path produces), tunes its placement on a simulated
// platform with the selected strategy, prints the analysis, and optionally
// writes the recommended shim placement plan for the next run:
//
//   hmpt_analyze <profile> [--platform NAME] [--strategy NAME]
//                [--tiers K] [--budget-gb N] [--tier-budget-gb T:N]
//                [--threshold F] [--reps N] [--top-k N] [--jobs N]
//                [--plan-out FILE] [--json FILE] [--csv] [--trace FILE]
//                [--list-platforms] [--list-workloads]
//
// Platforms come from the campaign catalogue (--list-platforms) and
// workload names from the campaign registry (--list-workloads); --json
// writes the TuningOutcome with the campaign serializer, so a single
// analysis emits the same artefact a campaign scenario stores.
//
// The default "exhaustive" strategy prints the full paper-style report
// (detailed + summary views); every other registered strategy prints the
// unified TuningOutcome (chosen placement, trajectory, measured table).
//
// Exit codes: 0 success, 1 bad usage, 2 analysis failure.
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/platforms.h"
#include "campaign/workload_registry.h"
#include "cli_parse.h"
#include "common/units.h"
#include "core/driver.h"
#include "obs/trace.h"
#include "core/outcome_io.h"
#include "core/session.h"
#include "simmem/simulator.h"
#include "version.h"
#include "workloads/trace_io.h"

namespace {

void usage(const char* argv0) {
  std::string strategies;
  for (const auto& name : hmpt::tuner::StrategyRegistry::instance().names())
    strategies += (strategies.empty() ? "" : "|") + name;
  std::string platforms;
  for (const auto& name : hmpt::campaign::platform_names())
    platforms += (platforms.empty() ? "" : "|") + name;
  std::cerr
      << "usage: " << argv0 << " <profile> [options]\n"
      << "  --platform " << platforms << "\n"
      << "                            platform model (default spr =\n"
      << "                            xeon-max, the dual-socket paper\n"
      << "                            platform; --list-platforms for the\n"
      << "                            full catalogue with aliases)\n"
      << "  --strategy " << strategies << "\n"
      << "                            search method (default exhaustive)\n"
      << "  --tiers K                 memory tiers to search (K >= 2, at\n"
      << "                            most the platform's tier count;\n"
      << "                            0 = the platform's native count,\n"
      << "                            the default)\n"
      << "  --budget-gb N             HBM capacity budget for the plan\n"
      << "                            (N >= 0; 0 = full machine HBM)\n"
      << "  --tier-budget-gb T:N      capacity budget of tier T (1 = HBM,\n"
      << "                            2 = CXL); repeatable\n"
      << "  --threshold F             speedup fraction for the minimal\n"
      << "                            footprint search, in (0,1]\n"
      << "                            (default 0.9)\n"
      << "  --reps N                  measurement repetitions (default 3,\n"
      << "                            N >= 1)\n"
      << "  --top-k N                 estimator strategy: predicted\n"
      << "                            configurations to measure (default 3)\n"
      << "  --jobs N                  measurement worker threads (N >= 0;\n"
      << "                            0 = all hardware threads, the\n"
      << "                            default; results are bit-identical\n"
      << "                            at any job count)\n"
      << "  --plan-out FILE           write the recommended shim plan\n"
      << "  --json FILE               write the TuningOutcome as JSON (the\n"
      << "                            campaign outcome format)\n"
      << "  --csv                     also print the summary-view CSV\n"
      << "  --trace FILE              record a Chrome trace-event file of\n"
      << "                            the tuning run (load in Perfetto or\n"
      << "                            chrome://tracing); never changes the\n"
      << "                            analysis output\n"
      << "  --list-platforms          print the platform catalogue, exit\n"
      << "  --list-workloads          print the workload registry, exit\n";
}

double parse_double(const char* argv0, const std::string& flag,
                    const char* text) {
  return hmpt::cli::parse_double(flag, text, [argv0] { usage(argv0); });
}

int parse_int(const char* argv0, const std::string& flag, const char* text) {
  return hmpt::cli::parse_int(flag, text, [argv0] { usage(argv0); });
}

[[noreturn]] void bad_value(const char* argv0, const std::string& message) {
  std::cerr << message << '\n';
  usage(argv0);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmpt;
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }

  std::string profile_path;
  std::string platform = "spr";
  std::string strategy = "exhaustive";
  std::string plan_out;
  std::string json_out;
  double budget_gb = 0.0;
  std::vector<std::pair<int, double>> tier_budgets_gb;
  double threshold = 0.9;
  int tiers = 0;  // 0 = platform native tier count
  int reps = 3;
  int top_k = 3;
  int jobs = 0;  // 0 = all hardware threads
  bool csv = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--platform") platform = next();
    else if (arg == "--strategy") strategy = next();
    else if (arg == "--tiers") tiers = parse_int(argv[0], arg, next());
    else if (arg == "--budget-gb")
      budget_gb = parse_double(argv[0], arg, next());
    else if (arg == "--tier-budget-gb") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos)
        bad_value(argv[0], "--tier-budget-gb expects T:N (e.g. 2:64)");
      const int tier =
          parse_int(argv[0], arg, spec.substr(0, colon).c_str());
      const double gb =
          parse_double(argv[0], arg, spec.substr(colon + 1).c_str());
      if (tier < 1 || tier >= hmpt::topo::kNumPoolKinds || gb < 0.0)
        bad_value(argv[0],
                  "--tier-budget-gb needs 1 <= tier < " +
                      std::to_string(hmpt::topo::kNumPoolKinds) +
                      " and budget >= 0");
      tier_budgets_gb.emplace_back(tier, gb);
    }
    else if (arg == "--threshold")
      threshold = parse_double(argv[0], arg, next());
    else if (arg == "--reps") reps = parse_int(argv[0], arg, next());
    else if (arg == "--top-k") top_k = parse_int(argv[0], arg, next());
    else if (arg == "--jobs") jobs = parse_int(argv[0], arg, next());
    else if (arg == "--plan-out") plan_out = next();
    else if (arg == "--json") json_out = next();
    else if (arg == "--csv") csv = true;
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--list-platforms") {
      std::cout << campaign::platform_catalog_text();
      return 0;
    }
    else if (arg == "--list-workloads") {
      std::cout << campaign::WorkloadRegistry::instance().list_text();
      return 0;
    }
    else if (arg == "--version") {
      cli::print_version("hmpt_analyze");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (profile_path.empty()) {
      profile_path = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (profile_path.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (!(threshold > 0.0 && threshold <= 1.0))
    bad_value(argv[0], "--threshold must be in (0,1]");
  if (budget_gb < 0.0) bad_value(argv[0], "--budget-gb must be >= 0");
  if (reps < 1) bad_value(argv[0], "--reps must be >= 1");
  if (top_k < 1) bad_value(argv[0], "--top-k must be >= 1");
  if (jobs < 0)
    bad_value(argv[0], "--jobs must be >= 0 (0 = all hardware threads)");
  if (tiers != 0 && tiers < 2)
    bad_value(argv[0], "--tiers must be 0 (platform native) or >= 2");
  if (!tuner::StrategyRegistry::instance().contains(strategy))
    bad_value(argv[0], "unknown strategy: " + strategy);

  try {
    // Arm before any tuning work so the sweep/search/phase spans land in
    // the trace; the analysis output itself is unaffected.
    if (!trace_path.empty()) obs::TraceRecorder::instance().start();

    auto simulator = campaign::make_platform(platform);

    // Tier flags must name tiers the selected platform actually searches —
    // a silently ignored budget is worse than an error.
    const int machine_tiers = simulator.machine().num_memory_tiers();
    const int effective_tiers = tiers == 0 ? machine_tiers : tiers;
    if (effective_tiers > machine_tiers)
      bad_value(argv[0], "--tiers " + std::to_string(tiers) +
                             ": platform has only " +
                             std::to_string(machine_tiers) + " tiers");
    for (const auto& tb : tier_budgets_gb) {
      if (tb.first >= effective_tiers)
        bad_value(argv[0], "--tier-budget-gb " + std::to_string(tb.first) +
                               ":...: the search covers only tiers 0-" +
                               std::to_string(effective_tiers - 1));
    }

    const auto workload = workloads::load_workload(profile_path);
    std::cout << "profile: " << profile_path << " (" << workload.name()
              << ", " << workload.num_groups() << " groups, "
              << format_bytes(workload.total_bytes()) << ")\n";
    std::cout << "platform: " << simulator.machine().name() << "\n\n";

    // Every strategy runs through the Session facade; "exhaustive"
    // additionally gets the full paper-style report from the Driver, whose
    // analysis is built on the same strategy layer.
    sim::Placement plan_placement;
    tuner::TuningOutcome run_outcome;  ///< what --json serialises
    if (strategy == "exhaustive") {
      tuner::DriverOptions options;
      options.experiment.repetitions = reps;
      options.experiment.jobs = jobs;
      options.threshold_fraction = threshold;
      options.hbm_budget_bytes = budget_gb * GB;
      options.tiers = tiers;
      for (const auto& [tier, gb] : tier_budgets_gb) {
        if (options.tier_budget_bytes.size() <=
            static_cast<std::size_t>(tier))
          options.tier_budget_bytes.resize(
              static_cast<std::size_t>(tier) + 1, 0.0);
        options.tier_budget_bytes[static_cast<std::size_t>(tier)] =
            gb * GB;
      }
      tuner::Driver driver(simulator, simulator.full_machine(), options);
      auto report = driver.analyze(workload);
      plan_placement = report.space.placement(report.recommended.mask);
      std::cout << report.to_text();
      run_outcome = std::move(report.outcome);
      // The driver keeps the sweep outside its embedded outcome; the JSON
      // artefact should carry it like a campaign scenario's outcome does.
      run_outcome.sweep = std::move(report.sweep);
      if (csv) {
        std::cout << "\nsummary view CSV:\n"
                  << report.summary_view.table.to_csv();
      }
    } else {
      auto session = tuner::Session::on(simulator)
                         .workload(workload)
                         .strategy(strategy)
                         .tiers(tiers)
                         .repetitions(reps)
                         .budget_gb(budget_gb)
                         .top_k(top_k)
                         .jobs(jobs);
      for (const auto& [tier, gb] : tier_budgets_gb)
        session.tier_budget_gb(tier, gb);
      auto outcome = session.run();
      plan_placement = outcome.chosen_placement;
      std::cout << outcome.to_text();
      run_outcome = outcome;
      if (csv) {
        Table table({"config", "speedup", "hbm_usage"});
        for (const auto& c : outcome.configs())
          table.add_row({tuner::mask_label(c.mask, outcome.num_groups,
                                           outcome.num_tiers),
                         cell(c.speedup, 4), cell(c.hbm_usage, 4)});
        std::cout << "\nmeasured configurations CSV:\n" << table.to_csv();
      }
    }

    if (!plan_out.empty()) {
      // Materialise the recommended placement against the profile's group
      // labels (named call sites).
      std::vector<tuner::AllocationGroup> groups;
      for (const auto& g : workload.groups()) {
        tuner::AllocationGroup ag;
        ag.label = g.label;
        ag.bytes = g.bytes;
        groups.push_back(ag);
      }
      const auto plan = tuner::to_placement_plan(groups, plan_placement);
      std::ofstream os(plan_out);
      if (!os.good()) {
        std::cerr << "cannot write plan to " << plan_out << '\n';
        return 2;
      }
      os << plan.serialize();
      std::cout << "\nplacement plan written to " << plan_out << '\n';
    }

    if (!json_out.empty()) {
      std::ofstream os(json_out);
      os << tuner::outcome_to_json(run_outcome).dump();
      os.flush();
      if (!os.good()) {
        std::cerr << "cannot write JSON to " << json_out << '\n';
        return 2;
      }
      std::cout << "\noutcome JSON written to " << json_out << '\n';
    }

    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().stop_and_write(trace_path);
      std::cout << "\ntrace written to " << trace_path << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "analysis failed: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
