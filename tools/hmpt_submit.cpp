// hmpt_submit — the hmptd client: submit scenarios, stream completions,
// collect batch-identical artefacts.
//
// Speaks the NDJSON protocol (docs/SERVICE.md) to a running hmptd over
// its Unix-domain socket or loopback TCP port. Scenarios come from a
// campaign file and/or the same matrix flags hmpt_campaign takes; the
// client expands the matrix locally (so it knows every fingerprint and
// the matrix order) and submits each scenario individually, backing off
// on `busy` admission rejections by waiting for one of its own
// outstanding jobs.
//
//   hmpt_submit (--socket PATH | --port N) [--host ADDR]
//               [<campaign-file>] [--workload NAME[:k=v,...]]...
//               [--platform NAME]... [--strategy NAME]... [--tiers K]...
//               [--budget-gb N]... [--tier-budget-gb T:N]... [--reps N]
//               [--top-k N] [--priority N] [--deadline S] [--attempts N]
//               [--watch] [--wait] [--out DIR]
//               [--status | --stats | --ping | --drain | --shutdown]
//               [--quiet]
//
// --watch subscribes (on a second connection, before submitting, so no
// completion can slip past) and prints each terminal event as it lands.
// --wait blocks until every submitted scenario is terminal and writes
// runs.csv / summary.json / status.json under --out; because the daemon
// executes the same code path and persists through the same store as
// hmpt_campaign, the deterministic artefacts are byte-identical to a
// batch run of the same campaign. --status/--stats/--ping query the
// daemon; --drain/--shutdown are sent after any submission completes.
//
// Exit codes: 0 success, 1 bad usage, 2 failure (unreachable daemon,
// failed scenario, error response).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/scenario.h"
#include "campaign/workload_registry.h"
#include "cli_parse.h"
#include "common/error.h"
#include "common/retry.h"
#include "common/table.h"
#include "core/outcome_io.h"
#include "service/protocol.h"
#include "service/socket.h"
#include "version.h"

namespace {

using namespace hmpt;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--socket PATH | --port N) [<campaign-file>] [options]\n"
      << "  --socket PATH / --port N / --host ADDR\n"
      << "                             how to reach hmptd\n"
      << "  --workload NAME[:k=v,...]  add a workload (repeatable)\n"
      << "  --platform NAME            add a platform (repeatable; default\n"
      << "                             xeon-max)\n"
      << "  --strategy NAME            add a strategy (repeatable; default\n"
      << "                             exhaustive)\n"
      << "  --tiers K / --budget-gb N / --tier-budget-gb T:N\n"
      << "                             matrix axes (repeatable)\n"
      << "  --reps N / --top-k N       measurement knobs\n"
      << "  --priority N               dispatch priority (higher first)\n"
      << "  --deadline S               per-job total wall-clock budget in\n"
      << "                             seconds (daemon default otherwise)\n"
      << "  --attempts N               per-job attempt budget (>= 1;\n"
      << "                             daemon default otherwise)\n"
      << "  --watch                    stream completion events\n"
      << "  --wait                     block for every result and write\n"
      << "                             campaign artefacts under --out\n"
      << "  --out DIR                  artefact directory for --wait\n"
      << "                             (default submit-out)\n"
      << "  --status / --stats / --ping\n"
      << "                             query the daemon and print the reply\n"
      << "  --drain                    ask the daemon to finish all work\n"
      << "  --shutdown                 drain, then stop the daemon\n"
      << "  --quiet                    suppress per-scenario progress\n"
      << "  --version                  print the tool version and exit\n";
}

/// One NDJSON connection: serialised request/response (this connection
/// never watches, so every line read is the response to the last send).
class Client {
 public:
  explicit Client(const service::Endpoint& endpoint)
      : socket_(service::connect_to(endpoint)), reader_(socket_.fd()) {}

  service::ServerMessage call(const service::Request& request) {
    HMPT_REQUIRE(socket_.send_all(request.to_line()),
                 "daemon connection lost");
    return read_message();
  }

  service::ServerMessage read_message() {
    std::string line;
    const auto status = reader_.next(line);
    HMPT_REQUIRE(status == service::LineReader::Status::Line,
                 "daemon closed the connection");
    return service::parse_server_message(line);
  }

  bool send_line(const std::string& line) {
    return socket_.send_all(line);
  }

 private:
  service::Socket socket_;
  service::LineReader reader_;
};

}  // namespace

int main(int argc, char** argv) {
  service::Endpoint endpoint;
  bool port_set = false;
  std::string campaign_file;
  campaign::ScenarioMatrix flags;
  int reps = -1;
  int top_k = -1;
  int priority = 0;
  double deadline_s = -1.0;
  int attempts = 0;
  bool watch = false;
  bool wait = false;
  bool do_status = false, do_stats = false, do_ping = false;
  bool do_drain = false, do_shutdown = false;
  bool quiet = false;
  std::string out_dir = "submit-out";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    const auto parse = [&](const char* text) {
      return cli::parse_int(arg, text, [&] { usage(argv[0]); });
    };
    const auto parse_dbl = [&](const char* text) {
      return cli::parse_double(arg, text, [&] { usage(argv[0]); });
    };
    if (arg == "--socket") endpoint.unix_path = next();
    else if (arg == "--port") {
      endpoint.port = parse(next());
      port_set = true;
    }
    else if (arg == "--host") endpoint.host = next();
    else if (arg == "--workload") {
      try {
        flags.workloads.push_back(campaign::parse_workload_spec(next()));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0]);
        return 1;
      }
    }
    else if (arg == "--platform") flags.platforms.emplace_back(next());
    else if (arg == "--strategy") flags.strategies.emplace_back(next());
    else if (arg == "--tiers") flags.tiers.push_back(parse(next()));
    else if (arg == "--budget-gb")
      flags.budgets_gb.push_back(parse_dbl(next()));
    else if (arg == "--tier-budget-gb") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--tier-budget-gb expects T:N (e.g. 2:64)\n";
        usage(argv[0]);
        return 1;
      }
      flags.tier_budgets_gb.emplace_back(
          parse(spec.substr(0, colon).c_str()),
          parse_dbl(spec.substr(colon + 1).c_str()));
    }
    else if (arg == "--reps") reps = parse(next());
    else if (arg == "--top-k") top_k = parse(next());
    else if (arg == "--priority") priority = parse(next());
    else if (arg == "--deadline") deadline_s = parse_dbl(next());
    else if (arg == "--attempts") attempts = parse(next());
    else if (arg == "--watch") watch = true;
    else if (arg == "--wait") wait = true;
    else if (arg == "--out") out_dir = next();
    else if (arg == "--status") do_status = true;
    else if (arg == "--stats") do_stats = true;
    else if (arg == "--ping") do_ping = true;
    else if (arg == "--drain") do_drain = true;
    else if (arg == "--shutdown") do_shutdown = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--version") {
      cli::print_version("hmpt_submit");
      return 0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (campaign_file.empty()) {
      campaign_file = arg;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (endpoint.is_unix() == port_set) {
    std::cerr << (port_set ? "--socket and --port are mutually exclusive\n"
                           : "one of --socket or --port is required\n");
    usage(argv[0]);
    return 1;
  }
  if ((deadline_s != -1.0 && deadline_s <= 0.0) ||
      (attempts != 0 && attempts < 1)) {
    std::cerr << "--deadline must be > 0 and --attempts >= 1\n";
    usage(argv[0]);
    return 1;
  }

  // Expand the matrix locally, exactly as hmpt_campaign does: the client
  // then knows every fingerprint and the matrix order, which is what
  // makes --wait's artefacts byte-identical to the batch run's.
  std::vector<campaign::Scenario> scenarios;
  try {
    campaign::ScenarioMatrix matrix;
    if (!campaign_file.empty())
      matrix = campaign::ScenarioMatrix::load(campaign_file);
    matrix.workloads.insert(matrix.workloads.end(), flags.workloads.begin(),
                            flags.workloads.end());
    matrix.platforms.insert(matrix.platforms.end(), flags.platforms.begin(),
                            flags.platforms.end());
    matrix.strategies.insert(matrix.strategies.end(),
                             flags.strategies.begin(),
                             flags.strategies.end());
    matrix.tiers.insert(matrix.tiers.end(), flags.tiers.begin(),
                        flags.tiers.end());
    matrix.budgets_gb.insert(matrix.budgets_gb.end(),
                             flags.budgets_gb.begin(),
                             flags.budgets_gb.end());
    matrix.tier_budgets_gb.insert(matrix.tier_budgets_gb.end(),
                                  flags.tier_budgets_gb.begin(),
                                  flags.tier_budgets_gb.end());
    if (reps != -1) matrix.repetitions = reps;
    if (top_k != -1) matrix.top_k = top_k;
    if (!matrix.workloads.empty()) {
      if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
      if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
      scenarios = matrix.expand();
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    usage(argv[0]);
    return 1;
  }
  if (scenarios.empty() && !do_status && !do_stats && !do_ping &&
      !do_drain && !do_shutdown && !watch) {
    std::cerr << "nothing to do: no scenarios and no query/lifecycle op\n";
    usage(argv[0]);
    return 1;
  }

  try {
    Client client(endpoint);

    // Subscribe before submitting (dedicated connection) so no
    // completion event can race past the subscription.
    std::optional<Client> watcher;
    if (watch) {
      watcher.emplace(endpoint);
      service::Request subscribe;
      subscribe.op = service::Op::Watch;
      const auto ack = watcher->call(subscribe);
      HMPT_REQUIRE(ack.ok, "watch rejected: " + ack.error);
    }

    // Busy backoff when there is nothing of our own to absorb: capped
    // exponential with deterministic jitter (common/retry) — the same
    // schedule on every run, never a fixed-interval hammer.
    RetryPolicy busy_backoff;
    busy_backoff.max_attempts = 8;
    busy_backoff.initial_backoff_s = 0.05;
    busy_backoff.max_backoff_s = 2.0;

    std::vector<std::string> fingerprints;
    std::size_t waited = 0;  // busy-backoff: next own job to wait on
    for (const auto& scenario : scenarios) {
      fingerprints.push_back(scenario.fingerprint());
      int busy_attempts = 0;
      for (;;) {
        service::Request request;
        request.op = service::Op::Submit;
        request.scenario = scenario;
        request.priority = priority;
        request.deadline_s = deadline_s;
        request.attempts = attempts;
        const auto reply = client.call(request);
        if (reply.ok) {
          if (!quiet) {
            const auto& jobs = reply.body.at("jobs").as_array();
            std::cout << "submitted " << scenario.label() << " ["
                      << fingerprints.back() << "] "
                      << jobs.at(0).string_or("state", "?") << "\n";
          }
          break;
        }
        if (reply.error.rfind("busy", 0) == 0) {
          if (waited < fingerprints.size() - 1) {
            // Admission-limited: absorb one of our own outstanding jobs,
            // then resubmit (fingerprints make resubmission idempotent).
            service::Request absorb;
            absorb.op = service::Op::Result;
            absorb.fingerprint = fingerprints[waited++];
            absorb.wait = true;
            client.call(absorb);
            continue;
          }
          if (++busy_attempts < busy_backoff.max_attempts) {
            // Other clients hold the daemon's budget: back off and
            // resubmit. The jitter stream is the fingerprint, so
            // concurrent submitters spread out instead of re-colliding.
            std::this_thread::sleep_for(std::chrono::duration<double>(
                busy_backoff.backoff_s(busy_attempts,
                                       stream_of(fingerprints.back()))));
            continue;
          }
        }
        raise("submit rejected: " + reply.error +
              (busy_attempts > 0
                   ? " (gave up after " + std::to_string(busy_attempts) +
                         " backoff retries)"
                   : ""));
      }
    }

    // Stream events until every submitted scenario is terminal.
    if (watch && !fingerprints.empty()) {
      std::size_t remaining = 0;
      std::vector<std::string> pending = fingerprints;
      std::sort(pending.begin(), pending.end());
      pending.erase(std::unique(pending.begin(), pending.end()),
                    pending.end());
      remaining = pending.size();
      while (remaining > 0) {
        service::ServerMessage event;
        try {
          event = watcher->read_message();
        } catch (const std::exception& e) {
          // The daemon died (or dropped us) mid-stream: fail with the
          // outstanding count instead of waiting forever on a dead pipe.
          raise(std::string(e.what()) + " while watching (" +
                std::to_string(remaining) +
                " completion(s) outstanding); if hmptd ran with --journal,"
                " restart it and the jobs resume");
        }
        if (!event.is_event || event.event != "job") continue;
        const auto fp = event.body.string_or("fingerprint", "");
        const auto hit =
            std::lower_bound(pending.begin(), pending.end(), fp);
        if (hit == pending.end() || *hit != fp) continue;
        pending.erase(hit);
        --remaining;
        std::cout << "event " << event.body.string_or("state", "?") << " "
                  << event.body.string_or("label", "") << " [" << fp
                  << "]";
        if (const auto* speedup =
                event.body.as_object().find("speedup"))
          std::cout << " — " << cell(speedup->as_number(), 2) << "x";
        if (const auto* error = event.body.as_object().find("error"))
          std::cout << " — " << error->as_string();
        std::cout << "\n";
      }
    }

    int exit_code = 0;
    if (wait && !scenarios.empty()) {
      // Collect every result in matrix order and rebuild the campaign
      // artefacts; runs.csv and summary.json come out byte-identical to
      // `hmpt_campaign` on the same campaign because the daemon executed
      // and stored through the same code paths.
      campaign::CampaignResult result;
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        campaign::ScenarioRun run;
        run.scenario = scenarios[i];
        run.fingerprint = fingerprints[i];
        service::Request request;
        request.op = service::Op::Result;
        request.fingerprint = fingerprints[i];
        request.wait = true;
        service::ServerMessage reply;
        try {
          reply = client.call(request);
        } catch (const std::exception& e) {
          // A dead daemon mid---wait is a hard, explained failure — not
          // an eternal block and not a bare broken-pipe message.
          raise(std::string(e.what()) + " while waiting for result " +
                fingerprints[i] + " (" +
                std::to_string(scenarios.size() - i) + " of " +
                std::to_string(scenarios.size()) +
                " results outstanding); if hmptd ran with --journal,"
                " restart it and rerun this command to resume");
        }
        if (reply.ok) {
          const auto state = reply.body.string_or("state", "done");
          run.status = state == "cached"
                           ? campaign::ScenarioRun::Status::Cached
                           : campaign::ScenarioRun::Status::Executed;
          run.outcome = tuner::outcome_from_json(reply.body.at("outcome"));
          (run.status == campaign::ScenarioRun::Status::Cached
               ? result.cached
               : result.executed)++;
        } else {
          run.status = campaign::ScenarioRun::Status::Failed;
          run.error = reply.error;
          ++result.failed;
        }
        if (!quiet) {
          std::cout << "[" << i + 1 << "/" << scenarios.size() << "] "
                    << campaign::to_string(run.status) << " "
                    << run.scenario.label();
          if (run.status != campaign::ScenarioRun::Status::Failed)
            std::cout << " — " << cell(run.outcome.speedup, 2) << "x";
          else
            std::cout << " — " << run.error;
          std::cout << "\n";
        }
        result.runs.push_back(std::move(run));
      }
      const auto paths = campaign::write_artifacts(result, out_dir);
      std::cout << "\nexecuted " << result.executed << ", cached "
                << result.cached << ", failed " << result.failed << " of "
                << result.runs.size() << " scenarios\n";
      for (const auto& path : paths) std::cout << "wrote " << path << "\n";
      if (!result.ok()) exit_code = 2;
    }

    const auto query = [&](service::Op op) {
      service::Request request;
      request.op = op;
      const auto reply = client.call(request);
      HMPT_REQUIRE(reply.ok, std::string(service::to_string(op)) +
                                 " failed: " + reply.error);
      std::cout << reply.body.dump(2) << "\n";
    };
    if (do_ping) query(service::Op::Ping);
    if (do_status) query(service::Op::Status);
    if (do_stats) query(service::Op::Stats);
    if (do_drain) {
      service::Request request;
      request.op = service::Op::Drain;
      const auto reply = client.call(request);
      HMPT_REQUIRE(reply.ok, "drain failed: " + reply.error);
      if (!quiet) std::cout << "drained\n";
    }
    if (do_shutdown) {
      service::Request request;
      request.op = service::Op::Shutdown;
      const auto reply = client.call(request);
      HMPT_REQUIRE(reply.ok, "shutdown failed: " + reply.error);
      if (!quiet) std::cout << "daemon shutting down\n";
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "hmpt_submit: " << e.what() << '\n';
    return 2;
  }
}
