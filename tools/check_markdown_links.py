#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Walks every *.md file under the repository root (skipping build trees and
.git), extracts inline links/images `[text](target)`, and verifies that
each repo-relative target exists. For targets inside markdown files —
`docs/CLI.md#campaign-files` or a bare `#section` — the fragment is
checked against the target file's headings using GitHub's slug rules, so
a renamed section breaks the build just like a renamed file.

External links (http/https/mailto) are deliberately not fetched: CI must
not fail on someone else's outage. Fenced code blocks are ignored, so
shell snippets containing `[...](...)`-shaped text cannot false-positive.

Usage: check_markdown_links.py [ROOT]     (default: the repo containing
                                           this script)

Exit status: 0 when every link resolves, 1 otherwise (each dead link is
reported as file:line: target).
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".github", "node_modules"}
SKIP_PREFIXES = ("build",)  # build/, build-asan/, ...

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading, seen):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to
    hyphens; repeated slugs get -1, -2, ... suffixes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep their text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    slug = "".join(
        c for c in text.lower() if c.isalnum() or c in " -_"
    ).replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def non_fenced_lines(path):
    """(line_number, line) pairs outside fenced code blocks."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if not in_fence:
                yield number, line


def anchors_of(path, cache):
    if path not in cache:
        seen = {}
        slugs = set()
        for _, line in non_fenced_lines(path):
            match = HEADING.match(line)
            if match:
                slugs.add(github_slug(match.group(1), seen))
        cache[path] = slugs
    return cache[path]


def check(root):
    dead = []
    anchor_cache = {}
    for path in markdown_files(root):
        for number, line in non_fenced_lines(path):
            for match in INLINE_LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target, _, fragment = target.partition("#")
                if target:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), target)
                    )
                    if not os.path.exists(resolved):
                        dead.append((path, number, match.group(1)))
                        continue
                else:
                    resolved = path  # pure-anchor link into this file
                if fragment and resolved.lower().endswith(".md"):
                    if fragment not in anchors_of(resolved, anchor_cache):
                        dead.append((path, number, match.group(1)))
    return dead


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    dead = check(root)
    for path, number, target in dead:
        print(f"{os.path.relpath(path, root)}:{number}: dead link: {target}")
    if dead:
        print(f"{len(dead)} dead markdown link(s)", file=sys.stderr)
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
