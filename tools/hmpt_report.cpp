// hmpt_report — static HTML report from a campaign outcome store.
//
// Reconstructs a campaign result from an outcome store directory alone
// (dir or packed format, auto-detected; every stored record carries its
// full scenario, so no campaign file or manifest is needed) and writes
// one self-contained `report/index.html` with inline-SVG charts, a
// ranked sortable scenario table and a per-scenario drill-down keyed by
// fingerprint:
//
//   hmpt_report STORE_DIR [--out DIR] [--title TEXT] [--trace FILE]
//               [--quiet]
//
// --out defaults to STORE_DIR, so the report lands next to the
// runs.csv/summary.json artefacts of the campaign that produced the
// store. The document needs no network, scripts or fonts — it renders
// from a file:// URL or a CI artifact download as-is.
//
// Exit codes: 0 success, 1 bad usage, 2 report failure (no outcome
// store at STORE_DIR, unreadable records, unwritable output).
#include <iostream>
#include <string>

#include "report/report.h"
#include "version.h"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " STORE_DIR [options]\n"
      << "  --out DIR     write DIR/report/index.html (default STORE_DIR)\n"
      << "  --title TEXT  page heading (default derived from the campaign)\n"
      << "  --trace FILE  a Chrome trace file from `hmpt_campaign --trace`;\n"
      << "                adds a per-job timeline section (scenario span\n"
      << "                bars per worker lane) to the report\n"
      << "  --quiet       only print errors\n"
      << "\n"
      << "STORE_DIR is the --out directory of an hmpt_campaign or\n"
      << "hmpt_merge run (dir- or packed-format outcome store, detected\n"
      << "automatically).\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmpt;

  std::string store_dir;
  std::string output_dir;
  std::string title;
  std::string trace_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 1;
      }
      output_dir = argv[++i];
    } else if (arg == "--title") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 1;
      }
      title = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 1;
      }
      trace_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--version") {
      hmpt::cli::print_version("hmpt_report");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      usage(argv[0]);
      return 1;
    } else if (store_dir.empty()) {
      store_dir = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << '\n';
      usage(argv[0]);
      return 1;
    }
  }
  if (store_dir.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (output_dir.empty()) output_dir = store_dir;

  try {
    const auto result = report::load_store_result(store_dir);
    report::TraceTimeline timeline;
    if (!trace_path.empty())
      timeline = report::load_trace_timeline(trace_path);
    const auto path = report::write_report(
        result, output_dir, title,
        trace_path.empty() ? nullptr : &timeline);
    if (!quiet)
      std::cout << result.runs.size() << " scenario"
                << (result.runs.size() == 1 ? "" : "s") << " from "
                << store_dir << "\n";
    std::cout << "wrote " << path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "report failed: " << e.what() << '\n';
    return 2;
  }
}
