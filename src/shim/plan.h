// plan.h — placement plans mapping call sites to memory pools.
//
// The driver script of the paper's tool constructs a plan ("allocations
// from site X go to HBM") and hands it to the SHIM library, which consults
// it inside the intercepted allocation call. Plans are serialisable to a
// small line-oriented text format so they can be precomputed by one run and
// applied in the next, exactly like ecoHMEM/FlexMalloc profiles.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "shim/call_site.h"
#include "topo/machine.h"

namespace hmpt::shim {

class PlacementPlan {
 public:
  explicit PlacementPlan(topo::PoolKind default_kind = topo::PoolKind::DDR)
      : default_kind_(default_kind) {}

  topo::PoolKind default_kind() const { return default_kind_; }
  void set_default_kind(topo::PoolKind kind) { default_kind_ = kind; }

  /// Pin a call site (by hash) to a pool.
  void set_site(StackHash hash, topo::PoolKind kind);
  /// Pin a named call site to a pool (labels hash like intern_named()).
  void set_named_site(const std::string& label, topo::PoolKind kind);

  /// Pool for a site; the default kind when unpinned.
  topo::PoolKind kind_for(StackHash hash) const;
  topo::PoolKind kind_for_named(const std::string& label) const;

  bool has_site(StackHash hash) const;
  std::size_t num_pinned_sites() const { return by_hash_.size(); }
  void clear();

  /// Text format: one directive per line:
  ///   default DDR|HBM
  ///   site <hex-hash> DDR|HBM
  ///   named <label> DDR|HBM
  /// '#' starts a comment. Unknown directives raise hmpt::Error.
  std::string serialize() const;
  static PlacementPlan parse(const std::string& text);
  static PlacementPlan parse(std::istream& is);

 private:
  static StackHash hash_label(const std::string& label);

  topo::PoolKind default_kind_;
  std::unordered_map<StackHash, topo::PoolKind> by_hash_;
  // Remember labels for round-tripping serialisation.
  std::unordered_map<StackHash, std::string> labels_;
};

}  // namespace hmpt::shim
