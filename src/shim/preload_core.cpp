#include "shim/preload_core.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hmpt::shim {

namespace {

std::size_t slot_of(std::uintptr_t site) {
  // Fibonacci hashing of the return address.
  return static_cast<std::size_t>(
             (site * 0x9e3779b97f4a7c15ULL) >> 52) %
         PreloadStatsTable::kSlots;
}

}  // namespace

PreloadSiteStats* PreloadStatsTable::find_or_claim(std::uintptr_t site) {
  std::size_t idx = slot_of(site);
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    PreloadSiteStats& slot = slots_[(idx + probe) % kSlots];
    const std::uintptr_t current = slot.site.load(std::memory_order_acquire);
    if (current == site) return &slot;
    if (current == 0) {
      std::uintptr_t expected = 0;
      if (slot.site.compare_exchange_strong(expected, site,
                                            std::memory_order_acq_rel))
        return &slot;
      if (expected == site) return &slot;  // lost the race to ourselves
    }
  }
  return nullptr;  // table full
}

bool PreloadStatsTable::on_alloc(std::uintptr_t site, std::size_t size) {
  PreloadSiteStats* slot = find_or_claim(site);
  if (slot == nullptr) return false;
  slot->allocs.fetch_add(1, std::memory_order_relaxed);
  slot->bytes.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t live =
      slot->live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  // Peak update: monotone CAS loop.
  std::uint64_t peak = slot->peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !slot->peak_live_bytes.compare_exchange_weak(
             peak, live, std::memory_order_relaxed)) {
  }
  return true;
}

void PreloadStatsTable::on_free(std::uintptr_t site, std::size_t size) {
  PreloadSiteStats* slot = find_or_claim(site);
  if (slot == nullptr) return;
  slot->frees.fetch_add(1, std::memory_order_relaxed);
  // Saturating subtraction: frees can be attributed to a different site
  // than the matching alloc (the hook only sees the freeing call site).
  std::uint64_t live = slot->live_bytes.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t next = live >= size ? live - size : 0;
    if (slot->live_bytes.compare_exchange_weak(live, next,
                                               std::memory_order_relaxed))
      break;
  }
}

std::size_t PreloadStatsTable::num_sites() const {
  std::size_t count = 0;
  for (const auto& slot : slots_)
    if (slot.site.load(std::memory_order_relaxed) != 0) ++count;
  return count;
}

std::uint64_t PreloadStatsTable::total_allocs() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_)
    total += slot.allocs.load(std::memory_order_relaxed);
  return total;
}

std::string PreloadStatsTable::report() const {
  struct Row {
    std::uintptr_t site;
    std::uint64_t allocs, frees, bytes, peak;
  };
  std::vector<Row> rows;
  for (const auto& slot : slots_) {
    const std::uintptr_t site = slot.site.load(std::memory_order_relaxed);
    if (site == 0) continue;
    rows.push_back({site, slot.allocs.load(std::memory_order_relaxed),
                    slot.frees.load(std::memory_order_relaxed),
                    slot.bytes.load(std::memory_order_relaxed),
                    slot.peak_live_bytes.load(std::memory_order_relaxed)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.bytes > b.bytes; });
  std::string out = "# hmpt preload profile: site allocs frees bytes peak\n";
  char line[160];
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line),
                  "site %llx allocs %llu frees %llu bytes %llu peak %llu\n",
                  static_cast<unsigned long long>(row.site),
                  static_cast<unsigned long long>(row.allocs),
                  static_cast<unsigned long long>(row.frees),
                  static_cast<unsigned long long>(row.bytes),
                  static_cast<unsigned long long>(row.peak));
    out += line;
  }
  return out;
}

void PreloadStatsTable::reset() {
  for (auto& slot : slots_) {
    slot.site.store(0, std::memory_order_relaxed);
    slot.allocs.store(0, std::memory_order_relaxed);
    slot.frees.store(0, std::memory_order_relaxed);
    slot.bytes.store(0, std::memory_order_relaxed);
    slot.live_bytes.store(0, std::memory_order_relaxed);
    slot.peak_live_bytes.store(0, std::memory_order_relaxed);
  }
}

PreloadConfig read_preload_config(const char* (*getenv_fn)(const char*)) {
  const auto get = [&](const char* name) -> const char* {
    return getenv_fn != nullptr ? getenv_fn(name) : std::getenv(name);
  };
  PreloadConfig config;
  if (const char* path = get("HMPT_PROFILE_OUT")) config.profile_path = path;
  if (const char* min = get("HMPT_MIN_SIZE"))
    config.min_size = static_cast<std::size_t>(std::strtoull(min, nullptr,
                                                             10));
  if (get("HMPT_DISABLE") != nullptr) config.enabled = false;
  return config;
}

PreloadStatsTable& preload_table() {
  static PreloadStatsTable table;
  return table;
}

void preload_dump(const PreloadConfig& config) {
  const std::string report = preload_table().report();
  if (config.profile_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stderr);
    return;
  }
  if (std::FILE* f = std::fopen(config.profile_path.c_str(), "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
  }
}

}  // namespace hmpt::shim
