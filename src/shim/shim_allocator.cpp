#include "shim/shim_allocator.h"

#include "common/error.h"

namespace hmpt::shim {

ShimAllocator::ShimAllocator(pools::PoolAllocator& pool, PlacementPlan plan)
    : pool_(&pool), plan_(std::move(plan)) {}

void* ShimAllocator::allocate_at(StackHash hash, std::size_t size,
                                 std::size_t alignment,
                                 const std::string& label) {
  const int site = sites_.intern(hash, label);
  const topo::PoolKind kind = plan_.kind_for(hash);
  const auto result = pool_->allocate(size, kind, alignment);
  if (result.ptr == nullptr) return nullptr;  // ReturnNull policy
  registry_.on_alloc(site, reinterpret_cast<std::uintptr_t>(result.ptr),
                     size, result.node, result.kind, result.spilled);
  return result.ptr;
}

void* ShimAllocator::allocate_named(const std::string& label,
                                    std::size_t size,
                                    std::size_t alignment) {
  HMPT_REQUIRE(!label.empty(), "named allocation needs a label");
  return allocate_at(hash_label(label), size, alignment, label);
}

void ShimAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  registry_.on_free(reinterpret_cast<std::uintptr_t>(ptr));
  pool_->deallocate(ptr);
}

void ShimAllocator::set_plan(PlacementPlan plan) { plan_ = std::move(plan); }

void ShimAllocator::reset_tracking() { registry_.reset(); }

}  // namespace hmpt::shim
