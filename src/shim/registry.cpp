#include "shim/registry.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace hmpt::shim {

std::uint64_t AllocationRegistry::on_alloc(int site, std::uintptr_t address,
                                           std::size_t size, int node,
                                           topo::PoolKind kind,
                                           bool spilled) {
  HMPT_REQUIRE(site >= 0, "allocation without a call site");
  HMPT_REQUIRE(size > 0, "zero-size allocation record");
  std::lock_guard<std::mutex> lock(mutex_);
  HMPT_REQUIRE(live_.find(address) == live_.end(),
               "address already live in registry");
  AllocationRecord rec;
  rec.id = next_id_++;
  rec.site = site;
  rec.address = address;
  rec.size = size;
  rec.node = node;
  rec.kind = kind;
  rec.spilled = spilled;
  rec.alloc_time = ++logical_clock_;
  live_.emplace(address, records_.size());
  records_.push_back(rec);
  return rec.id;
}

void AllocationRegistry::on_free(std::uintptr_t address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(address);
  HMPT_REQUIRE(it != live_.end(), "free of unknown or dead address");
  records_[it->second].free_time = ++logical_clock_;
  live_.erase(it);
}

std::optional<AllocationRecord> AllocationRegistry::find_live(
    std::uintptr_t address) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Exact-start fast path.
  auto it = live_.find(address);
  if (it != live_.end()) return records_[it->second];
  // Interior addresses: linear over live records (samplers resolve interior
  // addresses through the PageMap in the hot path; this is a convenience).
  for (const auto& [start, idx] : live_) {
    const auto& rec = records_[idx];
    if (address >= rec.address && address < rec.address + rec.size)
      return rec;
  }
  return std::nullopt;
}

std::vector<SiteUsage> AllocationRegistry::site_usage(
    const CallSiteRegistry& sites) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<int, SiteUsage> by_site;
  // Track running live bytes per site to compute peaks in logical-time
  // order; records_ is already ordered by alloc_time.
  std::map<int, std::vector<const AllocationRecord*>> site_records;
  for (const auto& rec : records_)
    site_records[rec.site].push_back(&rec);

  for (const auto& [site, recs] : site_records) {
    SiteUsage usage;
    usage.site = site;
    usage.label = sites.site(site).label;
    // Sweep alloc/free events in logical-clock order for the peak.
    std::vector<std::pair<std::uint64_t, long long>> events;
    for (const auto* rec : recs) {
      usage.num_allocations++;
      usage.total_bytes += rec->size;
      if (rec->live()) {
        usage.live_allocations++;
        usage.live_bytes += rec->size;
      }
      events.emplace_back(rec->alloc_time,
                          static_cast<long long>(rec->size));
      if (rec->free_time)
        events.emplace_back(*rec->free_time,
                            -static_cast<long long>(rec->size));
    }
    std::sort(events.begin(), events.end());
    long long running = 0, peak = 0;
    for (const auto& [t, delta] : events) {
      running += delta;
      peak = std::max(peak, running);
    }
    usage.peak_live_bytes = static_cast<std::size_t>(peak);
    by_site.emplace(site, usage);
  }

  std::vector<SiteUsage> out;
  out.reserve(by_site.size());
  for (auto& [site, usage] : by_site) out.push_back(std::move(usage));
  return out;
}

std::vector<AllocationRecord> AllocationRegistry::all_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t AllocationRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

std::size_t AllocationRegistry::live_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [addr, idx] : live_) total += records_[idx].size;
  return total;
}

std::uint64_t AllocationRegistry::clock() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return logical_clock_;
}

void AllocationRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  live_.clear();
  next_id_ = 1;
  logical_clock_ = 0;
}

void AllocationRegistry::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AllocationRecord> kept;
  kept.reserve(live_.size());
  for (auto& rec : records_)
    if (rec.live()) kept.push_back(rec);
  records_ = std::move(kept);
  live_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i)
    live_.emplace(records_[i].address, i);
}

}  // namespace hmpt::shim
