// shim_allocator.h — the interception front door.
//
// Plays the role of the paper's SHIM library (Fig. 6): application
// allocation calls enter here; the shim captures the call site, consults
// the active PlacementPlan to pick a pool, forwards to the PoolAllocator,
// and records the allocation in the AllocationRegistry. HMPT_SHIM_ALLOC
// captures the stack automatically; workloads that want stable, readable
// site identities use the named variants instead (the analogue of
// resolving stack traces against symbols offline).
#pragma once

#include <cstddef>

#include "pools/pool_allocator.h"
#include "shim/call_site.h"
#include "shim/plan.h"
#include "shim/registry.h"

namespace hmpt::shim {

class ShimAllocator {
 public:
  explicit ShimAllocator(pools::PoolAllocator& pool,
                         PlacementPlan plan = PlacementPlan{});

  /// Allocate with an explicit call-site hash (macro path).
  void* allocate_at(StackHash hash, std::size_t size,
                    std::size_t alignment = 16,
                    const std::string& label = {});

  /// Allocate at a named site (workload-tagged path).
  void* allocate_named(const std::string& label, std::size_t size,
                       std::size_t alignment = 16);

  /// Typed named allocation helper.
  template <typename T>
  T* allocate_array(const std::string& label, std::size_t count) {
    return static_cast<T*>(
        allocate_named(label, count * sizeof(T), alignof(T)));
  }

  void deallocate(void* ptr);

  /// Swap in a new plan; affects subsequent allocations only (live
  /// allocations are not migrated — the paper replays the application).
  void set_plan(PlacementPlan plan);
  const PlacementPlan& plan() const { return plan_; }

  pools::PoolAllocator& pool() { return *pool_; }
  CallSiteRegistry& sites() { return sites_; }
  const CallSiteRegistry& sites() const { return sites_; }
  AllocationRegistry& registry() { return registry_; }
  const AllocationRegistry& registry() const { return registry_; }

  /// Reset registries between tuning repetitions (keeps the plan).
  void reset_tracking();

 private:
  pools::PoolAllocator* pool_;
  PlacementPlan plan_;
  CallSiteRegistry sites_;
  AllocationRegistry registry_;
};

}  // namespace hmpt::shim

/// Allocation with automatic call-site capture: every textual occurrence of
/// this macro is (at least) one distinct site, and repeated execution of the
/// same occurrence aliases to the same site — matching the paper's
/// stack-trace identification and its loop-iteration aliasing caveat.
#define HMPT_SHIM_ALLOC(allocator, size) \
  (allocator).allocate_at(::hmpt::shim::capture_stack_hash(0), (size))
