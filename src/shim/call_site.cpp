#include "shim/call_site.h"

#include <execinfo.h>

#include "common/error.h"

namespace hmpt::shim {

namespace {

constexpr StackHash kFnvOffset = 0xcbf29ce484222325ULL;
constexpr StackHash kFnvPrime = 0x100000001b3ULL;

StackHash fnv1a_step(StackHash h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

StackHash capture_stack_hash(int skip, int max_depth) {
  HMPT_REQUIRE(skip >= 0 && max_depth > 0, "bad stack capture arguments");
  std::array<void*, 64> frames{};
  const int depth =
      backtrace(frames.data(), static_cast<int>(frames.size()));
  StackHash h = kFnvOffset;
  // +1 skips this function's own frame.
  for (int i = skip + 1; i < depth && i < skip + 1 + max_depth; ++i)
    h = fnv1a_step(h, reinterpret_cast<std::uint64_t>(frames[
        static_cast<std::size_t>(i)]));
  return h;
}

StackHash hash_frames(const std::vector<std::uintptr_t>& frames) {
  StackHash h = kFnvOffset;
  for (auto f : frames) h = fnv1a_step(h, f);
  return h;
}

int CallSiteRegistry::intern(StackHash hash, const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) return it->second;
  const int id = static_cast<int>(sites_.size());
  sites_.push_back({id, hash, label});
  by_hash_.emplace(hash, id);
  return id;
}

StackHash hash_label(const std::string& label) {
  StackHash h = kFnvOffset;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

int CallSiteRegistry::intern_named(const std::string& label) {
  return intern(hash_label(label), label);
}

const CallSite& CallSiteRegistry::site(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HMPT_REQUIRE(id >= 0 && id < static_cast<int>(sites_.size()),
               "call-site id out of range");
  return sites_[static_cast<std::size_t>(id)];
}

int CallSiteRegistry::num_sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(sites_.size());
}

int CallSiteRegistry::find_by_label(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : sites_)
    if (s.label == label) return s.id;
  return -1;
}

std::vector<CallSite> CallSiteRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_;
}

}  // namespace hmpt::shim
