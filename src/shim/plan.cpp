#include "shim/plan.h"

#include <sstream>

#include "common/error.h"

namespace hmpt::shim {

StackHash PlacementPlan::hash_label(const std::string& label) {
  return ::hmpt::shim::hash_label(label);
}

void PlacementPlan::set_site(StackHash hash, topo::PoolKind kind) {
  by_hash_[hash] = kind;
}

void PlacementPlan::set_named_site(const std::string& label,
                                   topo::PoolKind kind) {
  const StackHash h = hash_label(label);
  by_hash_[h] = kind;
  labels_[h] = label;
}

topo::PoolKind PlacementPlan::kind_for(StackHash hash) const {
  auto it = by_hash_.find(hash);
  return it != by_hash_.end() ? it->second : default_kind_;
}

topo::PoolKind PlacementPlan::kind_for_named(const std::string& label) const {
  return kind_for(hash_label(label));
}

bool PlacementPlan::has_site(StackHash hash) const {
  return by_hash_.count(hash) != 0;
}

void PlacementPlan::clear() {
  by_hash_.clear();
  labels_.clear();
}

std::string PlacementPlan::serialize() const {
  std::ostringstream os;
  os << "default " << topo::to_string(default_kind_) << '\n';
  for (const auto& [hash, kind] : by_hash_) {
    auto label_it = labels_.find(hash);
    if (label_it != labels_.end()) {
      os << "named " << label_it->second << ' ' << topo::to_string(kind)
         << '\n';
    } else {
      os << "site " << std::hex << hash << std::dec << ' '
         << topo::to_string(kind) << '\n';
    }
  }
  return os.str();
}

PlacementPlan PlacementPlan::parse(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

PlacementPlan PlacementPlan::parse(std::istream& is) {
  PlacementPlan plan;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line.erase(hash_pos);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank/comment line
    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (directive == "default") {
      std::string kind;
      HMPT_REQUIRE(static_cast<bool>(ls >> kind),
                   "default needs a pool kind" + where);
      plan.set_default_kind(topo::pool_kind_from_string(kind));
    } else if (directive == "site") {
      std::string hash_str, kind;
      HMPT_REQUIRE(static_cast<bool>(ls >> hash_str >> kind),
                   "site needs <hash> <kind>" + where);
      StackHash hash = 0;
      std::istringstream hs(hash_str);
      hs >> std::hex >> hash;
      HMPT_REQUIRE(!hs.fail(), "bad site hash" + where);
      plan.set_site(hash, topo::pool_kind_from_string(kind));
    } else if (directive == "named") {
      std::string label, kind;
      HMPT_REQUIRE(static_cast<bool>(ls >> label >> kind),
                   "named needs <label> <kind>" + where);
      plan.set_named_site(label, topo::pool_kind_from_string(kind));
    } else {
      raise("unknown plan directive '" + directive + "'" + where);
    }
  }
  return plan;
}

}  // namespace hmpt::shim
