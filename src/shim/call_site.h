// call_site.h — identification of allocation call sites.
//
// The paper's SHIM library identifies each allocation by the stack trace of
// the allocating call and treats allocations with identical traces as one
// logical allocation ("aliasing", Sec. III). We capture the return-address
// chain with glibc backtrace(), hash it, and intern the hash into a dense
// site id. Workloads may also tag sites with explicit names (the analogue
// of resolving the trace against debug info), which the reports print.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hmpt::shim {

/// Stable hash of a call stack (FNV-1a over return addresses).
using StackHash = std::uint64_t;

/// Capture the current call stack (skipping `skip` innermost frames,
/// keeping at most `max_depth`) and return its hash.
StackHash capture_stack_hash(int skip = 1, int max_depth = 16);

/// Hash an explicit frame list (used by tests and the trace replayer).
StackHash hash_frames(const std::vector<std::uintptr_t>& frames);

/// Hash of a named call site; intern_named() and PlacementPlan share it so
/// a plan naming "field::u" matches the site the workload interned.
StackHash hash_label(const std::string& label);

/// One interned call site.
struct CallSite {
  int id = -1;
  StackHash hash = 0;
  std::string label;  ///< optional human-readable tag ("field::u")
};

/// Thread-safe interning of stack hashes to dense call-site ids.
class CallSiteRegistry {
 public:
  /// Get-or-create the site for `hash`; `label` is attached on first
  /// interning only (subsequent calls with a different label keep the
  /// original — the same source line cannot have two names).
  int intern(StackHash hash, const std::string& label = {});

  /// Intern by label alone (hash derived from the label); convenient for
  /// workloads that tag sites explicitly.
  int intern_named(const std::string& label);

  const CallSite& site(int id) const;
  int num_sites() const;

  /// Find a site id by label; -1 if absent.
  int find_by_label(const std::string& label) const;

  std::vector<CallSite> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<CallSite> sites_;
  std::unordered_map<StackHash, int> by_hash_;
};

}  // namespace hmpt::shim
