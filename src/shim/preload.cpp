// preload.cpp — the LD_PRELOAD interposition layer (libhmpt_preload.so).
//
// Non-intrusive interception of unmodified binaries, as the paper's SHIM
// library does: override malloc/free/calloc/realloc/posix_memalign via
// dlsym(RTLD_NEXT), attribute each call to its call site (the caller's
// return address), and dump a per-site profile at process exit to
// $HMPT_PROFILE_OUT. Usage:
//
//   HMPT_PROFILE_OUT=/tmp/profile.txt \
//   LD_PRELOAD=$BUILD/src/shim/libhmpt_preload.so ./your_app
//
// Keep this translation unit free of anything that may allocate during
// early process startup; all logic lives in preload_core.{h,cpp}.
#include <dlfcn.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "shim/preload_core.h"

namespace {

using MallocFn = void* (*)(std::size_t);
using FreeFn = void (*)(void*);
using CallocFn = void* (*)(std::size_t, std::size_t);
using ReallocFn = void* (*)(void*, std::size_t);
using MemalignFn = int (*)(void**, std::size_t, std::size_t);
using UsableSizeFn = std::size_t (*)(void*);

MallocFn real_malloc = nullptr;
FreeFn real_free = nullptr;
CallocFn real_calloc = nullptr;
ReallocFn real_realloc = nullptr;
MemalignFn real_posix_memalign = nullptr;
UsableSizeFn real_usable_size = nullptr;

// dlsym() may itself call calloc before the real pointers are resolved;
// serve those bootstrap allocations from a static arena.
constexpr std::size_t kBootstrapBytes = 1 << 16;
alignas(16) unsigned char bootstrap_pool[kBootstrapBytes];
std::size_t bootstrap_used = 0;

bool in_bootstrap(const void* ptr) {
  const auto* p = static_cast<const unsigned char*>(ptr);
  return p >= bootstrap_pool && p < bootstrap_pool + kBootstrapBytes;
}

void* bootstrap_alloc(std::size_t size) {
  const std::size_t aligned = (size + 15u) & ~std::size_t{15};
  if (bootstrap_used + aligned > kBootstrapBytes) return nullptr;
  void* ptr = bootstrap_pool + bootstrap_used;
  bootstrap_used += aligned;
  return ptr;
}

bool resolving = false;

void resolve_real_functions() {
  if (real_malloc != nullptr || resolving) return;
  resolving = true;
  real_malloc = reinterpret_cast<MallocFn>(dlsym(RTLD_NEXT, "malloc"));
  real_free = reinterpret_cast<FreeFn>(dlsym(RTLD_NEXT, "free"));
  real_calloc = reinterpret_cast<CallocFn>(dlsym(RTLD_NEXT, "calloc"));
  real_realloc = reinterpret_cast<ReallocFn>(dlsym(RTLD_NEXT, "realloc"));
  real_posix_memalign =
      reinterpret_cast<MemalignFn>(dlsym(RTLD_NEXT, "posix_memalign"));
  real_usable_size = reinterpret_cast<UsableSizeFn>(
      dlsym(RTLD_NEXT, "malloc_usable_size"));
  resolving = false;
}

hmpt::shim::PreloadConfig& config() {
  static hmpt::shim::PreloadConfig cfg = hmpt::shim::read_preload_config();
  return cfg;
}

// Re-entrancy guard: the table itself never allocates, but dlsym and the
// dump path may; drop tracking while inside our own machinery.
thread_local bool inside_hook = false;

struct DumpAtExit {
  ~DumpAtExit() {
    if (config().enabled) hmpt::shim::preload_dump(config());
  }
};
DumpAtExit dump_at_exit;

void track_alloc(void* caller, std::size_t size) {
  if (!config().enabled || size < config().min_size) return;
  hmpt::shim::preload_table().on_alloc(
      reinterpret_cast<std::uintptr_t>(caller), size);
}

void track_free(void* caller, void* ptr) {
  if (!config().enabled || ptr == nullptr || in_bootstrap(ptr)) return;
  const std::size_t size =
      real_usable_size != nullptr ? real_usable_size(ptr) : 0;
  if (size < config().min_size) return;  // mirror the allocation filter
  hmpt::shim::preload_table().on_free(
      reinterpret_cast<std::uintptr_t>(caller), size);
}

}  // namespace

extern "C" {

void* malloc(std::size_t size) {
  resolve_real_functions();
  if (real_malloc == nullptr) return bootstrap_alloc(size);
  void* ptr = real_malloc(size);
  if (!inside_hook && ptr != nullptr) {
    inside_hook = true;
    track_alloc(__builtin_return_address(0), size);
    inside_hook = false;
  }
  return ptr;
}

void free(void* ptr) {
  if (ptr == nullptr || in_bootstrap(ptr)) return;
  resolve_real_functions();
  if (!inside_hook) {
    inside_hook = true;
    track_free(__builtin_return_address(0), ptr);
    inside_hook = false;
  }
  if (real_free != nullptr) real_free(ptr);
}

void* calloc(std::size_t count, std::size_t size) {
  if (real_calloc == nullptr && resolving) {
    // dlsym bootstrap path: hand out zeroed static memory.
    void* ptr = bootstrap_alloc(count * size);
    if (ptr != nullptr) std::memset(ptr, 0, count * size);
    return ptr;
  }
  resolve_real_functions();
  if (real_calloc == nullptr) {
    void* ptr = bootstrap_alloc(count * size);
    if (ptr != nullptr) std::memset(ptr, 0, count * size);
    return ptr;
  }
  void* ptr = real_calloc(count, size);
  if (!inside_hook && ptr != nullptr) {
    inside_hook = true;
    track_alloc(__builtin_return_address(0), count * size);
    inside_hook = false;
  }
  return ptr;
}

void* realloc(void* ptr, std::size_t size) {
  resolve_real_functions();
  if (ptr != nullptr && in_bootstrap(ptr)) {
    // Bootstrap blocks cannot be resized in place; copy out.
    void* fresh = real_malloc != nullptr ? real_malloc(size)
                                         : bootstrap_alloc(size);
    return fresh;
  }
  if (real_realloc == nullptr) return nullptr;
  void* fresh = real_realloc(ptr, size);
  if (!inside_hook && fresh != nullptr) {
    inside_hook = true;
    track_alloc(__builtin_return_address(0), size);
    inside_hook = false;
  }
  return fresh;
}

int posix_memalign(void** out, std::size_t alignment, std::size_t size) {
  resolve_real_functions();
  if (real_posix_memalign == nullptr) return 12;  // ENOMEM
  const int rc = real_posix_memalign(out, alignment, size);
  if (!inside_hook && rc == 0) {
    inside_hook = true;
    track_alloc(__builtin_return_address(0), size);
    inside_hook = false;
  }
  return rc;
}

}  // extern "C"
