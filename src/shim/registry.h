// registry.h — lifetime tracking of intercepted allocations.
//
// Records every allocation the shim sees: size, call site, placement, and
// logical alloc/free timestamps. Aggregates per call site — the paper's
// unit of control, since allocations sharing a stack trace alias to one
// logical allocation and always share a pool (Sec. III-A).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "shim/call_site.h"
#include "topo/machine.h"

namespace hmpt::shim {

/// One intercepted allocation.
struct AllocationRecord {
  std::uint64_t id = 0;
  int site = -1;
  std::uintptr_t address = 0;
  std::size_t size = 0;
  int node = -1;
  topo::PoolKind kind = topo::PoolKind::DDR;
  bool spilled = false;
  std::uint64_t alloc_time = 0;           ///< logical clock
  std::optional<std::uint64_t> free_time;  ///< unset while live
  bool live() const { return !free_time.has_value(); }
};

/// Per-site aggregate (the paper's "allocation" after aliasing).
struct SiteUsage {
  int site = -1;
  std::string label;
  std::size_t num_allocations = 0;
  std::size_t live_allocations = 0;
  std::size_t total_bytes = 0;  ///< cumulative bytes allocated at the site
  std::size_t live_bytes = 0;
  std::size_t peak_live_bytes = 0;
};

class AllocationRegistry {
 public:
  /// Record a new allocation; returns its record id.
  std::uint64_t on_alloc(int site, std::uintptr_t address, std::size_t size,
                         int node, topo::PoolKind kind, bool spilled);

  /// Record a free; throws if the address is unknown or already freed.
  void on_free(std::uintptr_t address);

  /// Allocation containing `address` (live allocations only).
  std::optional<AllocationRecord> find_live(std::uintptr_t address) const;

  /// Aggregates per call site, labels resolved through `sites`.
  std::vector<SiteUsage> site_usage(const CallSiteRegistry& sites) const;

  /// All records (live and freed), ordered by allocation time.
  std::vector<AllocationRecord> all_records() const;

  std::size_t live_count() const;
  std::size_t live_bytes() const;
  std::uint64_t clock() const;

  /// Drop freed records (long-running apps would otherwise accumulate).
  void compact();

  /// Forget everything, including live records; used by the shim between
  /// tuning repetitions (the allocator still owns the live memory).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<AllocationRecord> records_;
  // live address -> index into records_
  std::unordered_map<std::uintptr_t, std::size_t> live_;
  std::uint64_t next_id_ = 1;
  std::uint64_t logical_clock_ = 0;
};

}  // namespace hmpt::shim
