// preload_core.h — the testable heart of the LD_PRELOAD shim.
//
// The paper intercepts unmodified binaries by overriding the memory
// management calls with a shim library (Fig. 6). The interposition layer
// itself (preload.cpp, built as libhmpt_preload.so) must stay minimal and
// async-signal-cautious; everything with logic lives here so unit tests
// can cover it: a lock-free-ish per-site statistics table keyed by return
// address, environment-driven configuration, and the profile report the
// driver script consumes from the next run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hmpt::shim {

/// Aggregated statistics of one interception site (keyed by the caller's
/// return address — one frame of the stack trace; cheap enough for the
/// malloc hot path).
struct PreloadSiteStats {
  std::atomic<std::uintptr_t> site{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_live_bytes{0};
};

/// Fixed-capacity open-addressing table: no allocation from inside the
/// allocator hooks (re-entrancy!), wait-free lookup, per-slot CAS claim.
class PreloadStatsTable {
 public:
  static constexpr std::size_t kSlots = 4096;

  /// Record an allocation of `size` bytes from `site`; returns false when
  /// the table is full (the event is dropped, never blocks).
  bool on_alloc(std::uintptr_t site, std::size_t size);
  /// Record a free of `size` bytes attributed to `site`.
  void on_free(std::uintptr_t site, std::size_t size);

  std::size_t num_sites() const;
  std::uint64_t total_allocs() const;

  /// Render the profile: one line per site, sorted by cumulative bytes:
  ///   site <hex> allocs <n> frees <n> bytes <n> peak <n>
  std::string report() const;

  /// Testing hook: wipe all slots.
  void reset();

 private:
  PreloadSiteStats* find_or_claim(std::uintptr_t site);
  PreloadSiteStats slots_[kSlots];
};

/// Configuration read from the environment by the preload layer.
struct PreloadConfig {
  std::string profile_path;   ///< HMPT_PROFILE_OUT; empty = stderr
  std::size_t min_size = 0;   ///< HMPT_MIN_SIZE: ignore smaller allocs
  bool enabled = true;        ///< HMPT_DISABLE kills all tracking
};
PreloadConfig read_preload_config(
    const char* (*getenv_fn)(const char*) = nullptr);

/// The process-wide table the interposition layer feeds.
PreloadStatsTable& preload_table();

/// Write the report to the configured destination (called at exit).
void preload_dump(const PreloadConfig& config);

}  // namespace hmpt::shim
