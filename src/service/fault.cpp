#include "service/fault.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/retry.h"
#include "common/rng.h"

namespace hmpt::service {

namespace {

double parse_probability(const std::string& token,
                         const std::string& text) {
  double value = 0.0;
  try {
    std::size_t used = 0;
    value = std::stod(text, &used);
    HMPT_REQUIRE(used == text.size(), "trailing characters");
  } catch (const std::exception&) {
    raise("fault spec: bad probability in '" + token + "'");
  }
  HMPT_REQUIRE(value >= 0.0 && value <= 1.0,
               "fault spec: probability must be in [0, 1] in '" + token +
                   "'");
  return value;
}

/// Split "P:N" (the N part optional, defaulting to `fallback`).
std::pair<std::string, std::string> split_colon(const std::string& text,
                                                const std::string& fallback) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return {text, fallback};
  return {text.substr(0, colon), text.substr(colon + 1)};
}

}  // namespace

bool FaultSpec::any() const {
  return fail_p > 0.0 || timeout_p > 0.0 || slow_p > 0.0 ||
         corrupt_p > 0.0 || crash_after >= 0;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      raise("fault spec: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "fail") {
        const auto [p, n] = split_colon(value, "1");
        spec.fail_p = parse_probability(token, p);
        spec.fail_attempts = std::stoi(n);
        HMPT_REQUIRE(spec.fail_attempts >= 1,
                     "fault spec: fail attempt count must be >= 1");
      } else if (key == "timeout") {
        const auto [p, n] = split_colon(value, "1");
        spec.timeout_p = parse_probability(token, p);
        spec.timeout_attempts = std::stoi(n);
        HMPT_REQUIRE(spec.timeout_attempts >= 1,
                     "fault spec: timeout attempt count must be >= 1");
      } else if (key == "slow") {
        const auto [p, s] = split_colon(value, "0.05");
        spec.slow_p = parse_probability(token, p);
        spec.slow_s = std::stod(s);
        HMPT_REQUIRE(spec.slow_s > 0.0,
                     "fault spec: slow seconds must be > 0");
      } else if (key == "corrupt") {
        spec.corrupt_p = parse_probability(token, value);
      } else if (key == "crash-after") {
        spec.crash_after = std::stol(value);
        HMPT_REQUIRE(spec.crash_after >= 0,
                     "fault spec: crash-after must be >= 0");
      } else {
        raise("fault spec: unknown key '" + key + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      raise("fault spec: bad value in '" + token + "'");
    }
  }
  return spec;
}

std::string FaultSpec::canonical() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (fail_p > 0.0) os << ",fail=" << fail_p << ":" << fail_attempts;
  if (timeout_p > 0.0)
    os << ",timeout=" << timeout_p << ":" << timeout_attempts;
  if (slow_p > 0.0) os << ",slow=" << slow_p << ":" << slow_s;
  if (corrupt_p > 0.0) os << ",corrupt=" << corrupt_p;
  if (crash_after >= 0) os << ",crash-after=" << crash_after;
  return os.str();
}

FaultInjectingProvider::FaultInjectingProvider(ExecutionProvider& inner,
                                               FaultSpec spec)
    : inner_(inner), spec_(std::move(spec)) {}

bool FaultInjectingProvider::afflicts(const std::string& fingerprint,
                                      Kind kind) const {
  double probability = 0.0;
  switch (kind) {
    case Kind::Fail: probability = spec_.fail_p; break;
    case Kind::Timeout: probability = spec_.timeout_p; break;
    case Kind::Slow: probability = spec_.slow_p; break;
    case Kind::Corrupt: probability = spec_.corrupt_p; break;
  }
  if (probability <= 0.0) return false;
  // One uniform draw per (seed, fingerprint, kind): the affliction is a
  // stable property of the fingerprint under this spec, not of the
  // attempt — retries are what recover from it.
  Rng rng(mix_seed(spec_.seed, stream_of(fingerprint),
                   static_cast<std::uint64_t>(kind) + 1));
  return rng.next_double() < probability;
}

tuner::TuningOutcome FaultInjectingProvider::run(
    const campaign::Scenario& scenario, const CancelToken& token) {
  const std::string fingerprint = scenario.fingerprint();
  int attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    attempt = ++attempts_[fingerprint];
  }
  if (spec_.crash_after >= 0 &&
      executions_.fetch_add(1, std::memory_order_relaxed) >=
          spec_.crash_after) {
    // The crash fault is a real crash: no unwinding, no destructors —
    // exactly what kill -9 recovery (journal + store) must absorb.
    std::abort();
  }

  if (afflicts(fingerprint, Kind::Timeout) &&
      attempt <= spec_.timeout_attempts) {
    // Hang cooperatively: park on the token until the attempt deadline
    // or a cancel, then report it. A job with no deadline hangs until
    // scheduler teardown — that is the point of the fault.
    while (token.sleep_for(3600.0)) {
    }
    token.check();  // throws the "timeout:"/"canceled:" error
    raise("timeout: injected hang interrupted");  // unreachable guard
  }
  if (afflicts(fingerprint, Kind::Fail) && attempt <= spec_.fail_attempts)
    raise("injected transient fault (attempt " + std::to_string(attempt) +
          " of " + fingerprint + ")");
  if (afflicts(fingerprint, Kind::Slow)) {
    if (!token.sleep_for(spec_.slow_s)) token.check();
  }

  auto outcome = inner_.run(scenario, token);
  if (afflicts(fingerprint, Kind::Corrupt)) {
    // A deterministic perturbation: byte-different from the honest
    // outcome, so a clean run of the same fingerprint trips the store's
    // conflicting-outcome detection.
    outcome.speedup += 1.0;
  }
  return outcome;
}

}  // namespace hmpt::service
