// provider.h — the execution seam between the scheduler and a backend.
//
// The scheduler never touches Session/simulator code directly: every job
// runs through an ExecutionProvider, so the in-tree simulator backend
// (SimulatorProvider, which executes the exact batch-campaign path) is
// just the first provider. A real-hardware provider — shim + sampler on a
// live machine, closing the measure-and-tune loop of the paper — plugs in
// behind the same scheduler by implementing run(); results it returns are
// persisted and streamed exactly like simulated ones.
//
// Contract: run() must be safe to call concurrently from multiple worker
// threads, must be deterministic per scenario fingerprint (byte-identical
// TuningOutcome serialisation for a repeated scenario — the store's
// first-write-wins race handling relies on it), and reports failure by
// throwing; the scheduler records the exception text as the job error.
// Errors are classified by message (common/retry): a "terminal:" prefix
// never retries, anything else is transient and subject to the
// scheduler's retry policy.
//
// Cancellation is cooperative: run() receives the job's CancelToken and
// should call token.check() at its yield points (between phases, loop
// heads) and token.sleep_for() instead of raw sleeps, so a timed-out or
// canceled job stops burning its worker. A provider that never checks
// simply runs to completion — correctness is unaffected, only latency.
#pragma once

#include "campaign/scenario.h"
#include "common/retry.h"
#include "core/strategy.h"

namespace hmpt::service {

class ExecutionProvider {
 public:
  virtual ~ExecutionProvider() = default;

  /// The provider's registry-style name ("simulator", "hardware", ...).
  virtual std::string name() const = 0;

  /// Execute one scenario to completion. Thread-safe; throws on failure.
  /// `token` carries the job's deadline and cancellation — check it
  /// cooperatively (see the file comment).
  virtual tuner::TuningOutcome run(const campaign::Scenario& scenario,
                                   const CancelToken& token) = 0;
};

/// The simulator backend: builds the scenario's platform model and tunes
/// through the Session facade via CampaignRunner::execute — the same code
/// path hmpt_campaign runs, so daemon outcomes are byte-identical to
/// batch outcomes for the same fingerprint.
class SimulatorProvider : public ExecutionProvider {
 public:
  /// `measure_jobs` = measurement threads per scenario (the campaign
  /// default 1 composes best with scheduler-level concurrency).
  explicit SimulatorProvider(int measure_jobs = 1);

  std::string name() const override { return "simulator"; }
  tuner::TuningOutcome run(const campaign::Scenario& scenario,
                           const CancelToken& token) override;

 private:
  int measure_jobs_ = 1;
};

}  // namespace hmpt::service
