// latency_store.h — per-scenario-class execution-latency tracking.
//
// The daemon's `stats` endpoint and queue-ETA estimates need "how long
// does this kind of job take" over an unbounded completion stream, so the
// store keeps one O(1)-memory ConcurrentQuantileTracker (streaming P²
// p50/p95/p99, common/stats) per scenario class plus one overall tracker.
// A scenario's class is its label() — workload/platform/strategy — which
// groups exactly the scenarios whose run times are comparable.
//
// The class map itself is bounded: scenario classes are fingerprint-
// derived and a long-running daemon fed a diverse campaign stream would
// otherwise grow one tracker per class forever. At the cap the least-
// recently-recorded class is evicted (its samples stay in the overall
// tracker, which every estimate falls back to), and the cap plus the
// running eviction count are exposed so `stats` makes the bound visible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace hmpt::service {

class LatencyStore {
 public:
  /// Default bound on tracked classes; generous for real campaigns (a
  /// class is workload/platform/strategy, not a full fingerprint) while
  /// keeping a hostile or highly diverse stream at O(1) memory.
  static constexpr std::size_t kDefaultMaxClasses = 256;

  struct ClassStats {
    std::string scenario_class;
    ConcurrentQuantileTracker::Snapshot latency;
    std::uint64_t attempts = 0;  ///< provider attempts for this class
    std::uint64_t retries = 0;   ///< attempts beyond each job's first
    std::uint64_t timeouts = 0;  ///< attempts that hit a deadline
  };

  /// `max_classes` must be >= 1; the cap is fixed for the store's life.
  explicit LatencyStore(std::size_t max_classes = kDefaultMaxClasses);

  /// Record one completed execution (seconds of provider wall time).
  /// Thread-safe; workers call this as jobs land. Recording a new class
  /// beyond the cap evicts the least-recently-recorded one.
  void record(const std::string& scenario_class, double seconds);

  /// Record the attempt tally of one terminal job: `attempts` provider
  /// attempts were made, of which `timeouts` ended in a deadline expiry.
  /// Failed jobs reach here too (record() only sees successes), so a
  /// class that has only ever failed still shows up in `stats` — with an
  /// empty latency distribution and a non-zero attempt count.
  void record_attempts(const std::string& scenario_class, int attempts,
                       int timeouts);

  /// Snapshot of every tracked class, ordered by class name so the
  /// `stats` response is deterministic for a given history.
  std::vector<ClassStats> snapshot() const;

  /// Overall (all classes, evicted ones included) latency snapshot.
  ConcurrentQuantileTracker::Snapshot overall() const;

  /// The class-map bound this store was built with.
  std::size_t class_cap() const { return max_classes_; }
  /// Classes evicted so far to stay under the cap.
  std::size_t evictions() const;

  /// Expected seconds for one job of `scenario_class`: the class p50 when
  /// the class is tracked with completions, else the overall p50, else 0
  /// (no history). Evicted classes fall back to the overall tracker.
  double estimate_seconds(const std::string& scenario_class) const;

  /// Rough queue ETA: `backlog` jobs (queued + running) drained by
  /// `workers` lanes at the overall median job latency. 0 without history.
  double eta_seconds(std::size_t backlog, int workers) const;

 private:
  struct Entry {
    // Behind a shared_ptr so record() can add outside the map lock (the
    // tracker has its own mutex) while an eviction concurrently erases
    // the map node.
    std::shared_ptr<ConcurrentQuantileTracker> tracker;
    std::uint64_t last_used = 0;  ///< LRU stamp (recording only)
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
  };

  /// mutex_ held: get-or-create the class entry, stamp its LRU clock and
  /// evict past the cap.
  Entry& touch(const std::string& scenario_class);

  // ConcurrentQuantileTracker locks per tracker; this mutex only guards
  // the map shape (class creation, eviction, snapshot iteration).
  mutable std::mutex mutex_;
  std::map<std::string, Entry> classes_;
  ConcurrentQuantileTracker overall_;
  const std::size_t max_classes_;
  std::uint64_t clock_ = 0;      ///< monotonic LRU counter
  std::size_t evictions_ = 0;
};

}  // namespace hmpt::service
