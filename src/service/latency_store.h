// latency_store.h — per-scenario-class execution-latency tracking.
//
// The daemon's `stats` endpoint and queue-ETA estimates need "how long
// does this kind of job take" over an unbounded completion stream, so the
// store keeps one O(1)-memory ConcurrentQuantileTracker (streaming P²
// p50/p95/p99, common/stats) per scenario class plus one overall tracker.
// A scenario's class is its label() — workload/platform/strategy — which
// groups exactly the scenarios whose run times are comparable.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace hmpt::service {

class LatencyStore {
 public:
  struct ClassStats {
    std::string scenario_class;
    ConcurrentQuantileTracker::Snapshot latency;
  };

  /// Record one completed execution (seconds of provider wall time).
  /// Thread-safe; workers call this as jobs land.
  void record(const std::string& scenario_class, double seconds);

  /// Snapshot of every class seen so far, ordered by class name so the
  /// `stats` response is deterministic for a given history.
  std::vector<ClassStats> snapshot() const;

  /// Overall (all classes) latency snapshot.
  ConcurrentQuantileTracker::Snapshot overall() const;

  /// Expected seconds for one job of `scenario_class`: the class p50 when
  /// the class has completions, else the overall p50, else 0 (no history).
  double estimate_seconds(const std::string& scenario_class) const;

  /// Rough queue ETA: `backlog` jobs (queued + running) drained by
  /// `workers` lanes at the overall median job latency. 0 without history.
  double eta_seconds(std::size_t backlog, int workers) const;

 private:
  // ConcurrentQuantileTracker locks per tracker; this mutex only guards
  // the map shape (class creation and snapshot iteration).
  mutable std::mutex mutex_;
  std::map<std::string, ConcurrentQuantileTracker> classes_;
  ConcurrentQuantileTracker overall_;
};

}  // namespace hmpt::service
