// socket.h — minimal RAII stream-socket transport for the service layer.
//
// hmptd serves the NDJSON protocol over either a Unix-domain socket (the
// default: filesystem permissions gate access) or a loopback-bound TCP
// port; hmpt_submit connects over the same Endpoint type. The transport
// is deliberately thin: blocking sockets, a buffered line reader with a
// hard per-line byte cap (an oversized request must become a structured
// error, never an allocation blow-up), and poll-based accept timeouts so
// the daemon's accept loop can notice shutdown.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace hmpt::service {

/// A connection cap every reader enforces: one NDJSON line (request,
/// response or event) may not exceed this many bytes.
inline constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Where the daemon listens / the client connects: a Unix-domain socket
/// path when `unix_path` is non-empty, else TCP host:port.
struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;

  bool is_unix() const { return !unix_path.empty(); }
  /// "unix:PATH" or "tcp:HOST:PORT", for logs and errors.
  std::string to_string() const;
};

/// Move-only RAII wrapper over a connected stream-socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write all of `data`; false on any error (notably a peer that went
  /// away — the caller drops the connection, the daemon must not die).
  bool send_all(const std::string& data) const;

  /// shutdown(2) both directions: any thread blocked reading this socket
  /// sees EOF, without the fd-reuse hazard of closing from another
  /// thread. The owner still close()s afterwards.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
};

/// Buffered NDJSON line reader over a socket fd (not owned).
class LineReader {
 public:
  enum class Status {
    Line,       ///< `line` holds one complete line (no trailing '\n')
    Eof,        ///< orderly peer close
    Oversized,  ///< line exceeded max bytes; discarded through its '\n'
    Error,      ///< read error; treat like EOF
  };

  explicit LineReader(int fd, std::size_t max_line = kMaxLineBytes)
      : fd_(fd), max_line_(max_line) {}

  /// Block for the next line. After Oversized the stream stays usable:
  /// the offending line was discarded up to and including its newline.
  Status next(std::string& line);

 private:
  int fd_ = -1;
  std::size_t max_line_ = kMaxLineBytes;
  std::string buffer_;
  bool eof_ = false;
};

/// A bound, listening server socket. Unix paths are unlinked on bind (a
/// stale socket file from a dead daemon must not block restart) and again
/// on destruction.
class Listener {
 public:
  /// Bind + listen; throws hmpt::Error on failure. With a TCP endpoint of
  /// port 0 the kernel picks a free port — read it back via endpoint().
  static Listener listen(const Endpoint& endpoint);

  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;
  ~Listener();

  /// The bound endpoint (actual port for TCP port-0 binds).
  const Endpoint& endpoint() const { return endpoint_; }

  /// Wait up to `timeout_ms` for a connection; nullopt on timeout or on a
  /// transient accept failure. Throws nothing.
  std::optional<Socket> accept_for(int timeout_ms);

  void close();

 private:
  Listener() = default;

  Socket socket_;
  Endpoint endpoint_;
};

/// Connect to a daemon endpoint; throws hmpt::Error when unreachable.
Socket connect_to(const Endpoint& endpoint);

/// The service layer writes to sockets whose peer may vanish; a dead peer
/// must surface as a send_all failure, not a fatal SIGPIPE. Idempotent.
void ignore_sigpipe();

}  // namespace hmpt::service
