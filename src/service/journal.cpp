#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/json.h"

namespace hmpt::service {

namespace {

/// EINTR-safe full write of `text` to `fd`.
bool write_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  HMPT_REQUIRE(!path_.empty(), "journal path must not be empty");
  do {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0)
    raise("cannot open journal '" + path_ +
          "': " + std::strerror(errno));
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void JobJournal::append_synced(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!write_all(fd_, line))
    raise("journal append failed for '" + path_ +
          "': " + std::strerror(errno));
  // The fsync is the durability point: an acked submit survives kill -9.
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0)
    raise("journal fsync failed for '" + path_ +
          "': " + std::strerror(errno));
}

void JobJournal::record_submit(const campaign::Scenario& scenario,
                               int priority, const JobLimits& limits) {
  JsonObject obj;
  obj["kind"] = Json("submit");
  obj["fingerprint"] = Json(scenario.fingerprint());
  if (priority != 0) obj["priority"] = Json(priority);
  if (limits.deadline_s >= 0.0) obj["deadline_s"] = Json(limits.deadline_s);
  if (limits.max_attempts > 0) obj["attempts"] = Json(limits.max_attempts);
  obj["scenario"] = scenario.to_json();
  append_synced(Json(std::move(obj)).dump(-1) + "\n");
}

void JobJournal::record_terminal(const std::string& fingerprint,
                                 JobState state) {
  JsonObject obj;
  obj["kind"] = Json("terminal");
  obj["fingerprint"] = Json(fingerprint);
  obj["state"] = Json(std::string(to_string(state)));
  append_synced(Json(std::move(obj)).dump(-1) + "\n");
}

JobJournal::Replay JobJournal::replay(const std::string& path) {
  Replay replay;
  std::ifstream in(path);
  if (!in.is_open()) return replay;  // first run: nothing to replay

  struct Entry {
    std::size_t submits = 0;
    std::size_t terminals = 0;
    std::size_t order = 0;  ///< first-submission order
    ReplayJob job;
  };
  std::map<std::string, Entry> by_fingerprint;
  std::size_t next_order = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json doc;
    try {
      doc = Json::parse(line);
    } catch (const std::exception&) {
      // A torn tail from a crash mid-append, or stray corruption: the
      // record was never acked (the ack follows the fsync), so skipping
      // is the correct recovery.
      ++replay.skipped;
      continue;
    }
    if (doc.kind() != Json::Kind::Object) {
      ++replay.skipped;
      continue;
    }
    const JsonObject& obj = doc.as_object();
    const Json* kind = obj.find("kind");
    const Json* fingerprint = obj.find("fingerprint");
    if (kind == nullptr || kind->kind() != Json::Kind::String ||
        fingerprint == nullptr ||
        fingerprint->kind() != Json::Kind::String) {
      ++replay.skipped;
      continue;
    }

    if (kind->as_string() == "submit") {
      const Json* scenario = obj.find("scenario");
      if (scenario == nullptr) {
        ++replay.skipped;
        continue;
      }
      ReplayJob job;
      try {
        job.scenario = campaign::Scenario::from_json(*scenario);
      } catch (const std::exception&) {
        ++replay.skipped;
        continue;
      }
      if (const Json* priority = obj.find("priority");
          priority != nullptr && priority->kind() == Json::Kind::Number)
        job.priority = static_cast<int>(priority->as_number());
      if (const Json* deadline = obj.find("deadline_s");
          deadline != nullptr && deadline->kind() == Json::Kind::Number)
        job.limits.deadline_s = deadline->as_number();
      if (const Json* attempts = obj.find("attempts");
          attempts != nullptr && attempts->kind() == Json::Kind::Number)
        job.limits.max_attempts = static_cast<int>(attempts->as_number());
      auto [it, inserted] =
          by_fingerprint.try_emplace(fingerprint->as_string());
      if (inserted) {
        it->second.order = next_order++;
        it->second.job = std::move(job);
      }
      ++it->second.submits;
      ++replay.records;
    } else if (kind->as_string() == "terminal") {
      auto [it, inserted] =
          by_fingerprint.try_emplace(fingerprint->as_string());
      if (inserted) it->second.order = next_order++;
      ++it->second.terminals;
      ++replay.records;
    } else {
      ++replay.skipped;
    }
  }

  // Pending = more submits than terminals, in first-submission order.
  std::vector<const Entry*> pending;
  for (const auto& [fingerprint, entry] : by_fingerprint) {
    (void)fingerprint;
    if (entry.submits > entry.terminals)
      pending.push_back(&entry);
    else
      replay.settled += entry.submits;
  }
  std::sort(pending.begin(), pending.end(),
            [](const Entry* a, const Entry* b) { return a->order < b->order; });
  for (const Entry* entry : pending) replay.pending.push_back(entry->job);
  return replay;
}

}  // namespace hmpt::service
