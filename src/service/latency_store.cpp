#include "service/latency_store.h"

#include <algorithm>

namespace hmpt::service {

void LatencyStore::record(const std::string& scenario_class,
                          double seconds) {
  ConcurrentQuantileTracker* tracker = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracker = &classes_[scenario_class];
  }
  // Map nodes are stable; the per-tracker lock serialises the adds.
  tracker->add(seconds);
  overall_.add(seconds);
}

std::vector<LatencyStore::ClassStats> LatencyStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ClassStats> out;
  out.reserve(classes_.size());
  for (const auto& [name, tracker] : classes_)
    out.push_back({name, tracker.snapshot()});
  return out;
}

ConcurrentQuantileTracker::Snapshot LatencyStore::overall() const {
  return overall_.snapshot();
}

double LatencyStore::estimate_seconds(
    const std::string& scenario_class) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = classes_.find(scenario_class);
    if (it != classes_.end()) {
      const auto snap = it->second.snapshot();
      if (snap.count > 0) return snap.p50;
    }
  }
  const auto snap = overall_.snapshot();
  return snap.count > 0 ? snap.p50 : 0.0;
}

double LatencyStore::eta_seconds(std::size_t backlog, int workers) const {
  const auto snap = overall_.snapshot();
  if (snap.count == 0 || backlog == 0) return 0.0;
  const auto lanes = static_cast<std::size_t>(std::max(workers, 1));
  const std::size_t waves = (backlog + lanes - 1) / lanes;
  return static_cast<double>(waves) * snap.p50;
}

}  // namespace hmpt::service
