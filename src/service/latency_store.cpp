#include "service/latency_store.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::service {

LatencyStore::LatencyStore(std::size_t max_classes)
    : max_classes_(max_classes) {
  HMPT_REQUIRE(max_classes_ >= 1, "latency store needs max_classes >= 1");
}

LatencyStore::Entry& LatencyStore::touch(
    const std::string& scenario_class) {
  auto [it, inserted] = classes_.try_emplace(scenario_class);
  if (inserted)
    it->second.tracker = std::make_shared<ConcurrentQuantileTracker>();
  it->second.last_used = ++clock_;
  // Over the cap: drop the least-recently-recorded class (never the one
  // just touched — its stamp is the freshest). Its history stays in
  // overall_, which estimate_seconds falls back to. Erasing other nodes
  // leaves the returned reference valid (std::map).
  while (classes_.size() > max_classes_) {
    auto victim = classes_.begin();
    for (auto walk = classes_.begin(); walk != classes_.end(); ++walk)
      if (walk->second.last_used < victim->second.last_used) victim = walk;
    classes_.erase(victim);
    ++evictions_;
  }
  return it->second;
}

void LatencyStore::record(const std::string& scenario_class,
                          double seconds) {
  std::shared_ptr<ConcurrentQuantileTracker> tracker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracker = touch(scenario_class).tracker;
  }
  // The shared_ptr keeps the tracker alive even if a concurrent record()
  // just evicted the class; the per-tracker lock serialises the adds.
  tracker->add(seconds);
  overall_.add(seconds);
}

void LatencyStore::record_attempts(const std::string& scenario_class,
                                   int attempts, int timeouts) {
  if (attempts <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = touch(scenario_class);
  entry.attempts += static_cast<std::uint64_t>(attempts);
  entry.retries += static_cast<std::uint64_t>(attempts - 1);
  entry.timeouts += static_cast<std::uint64_t>(std::max(timeouts, 0));
}

std::vector<LatencyStore::ClassStats> LatencyStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ClassStats> out;
  out.reserve(classes_.size());
  for (const auto& [name, entry] : classes_)
    out.push_back({name, entry.tracker->snapshot(), entry.attempts,
                   entry.retries, entry.timeouts});
  return out;
}

ConcurrentQuantileTracker::Snapshot LatencyStore::overall() const {
  return overall_.snapshot();
}

std::size_t LatencyStore::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

double LatencyStore::estimate_seconds(
    const std::string& scenario_class) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = classes_.find(scenario_class);
    if (it != classes_.end()) {
      const auto snap = it->second.tracker->snapshot();
      if (snap.count > 0) return snap.p50;
    }
  }
  const auto snap = overall_.snapshot();
  return snap.count > 0 ? snap.p50 : 0.0;
}

double LatencyStore::eta_seconds(std::size_t backlog, int workers) const {
  const auto snap = overall_.snapshot();
  if (snap.count == 0 || backlog == 0) return 0.0;
  const auto lanes = static_cast<std::size_t>(std::max(workers, 1));
  const std::size_t waves = (backlog + lanes - 1) / lanes;
  return static_cast<double>(waves) * snap.p50;
}

}  // namespace hmpt::service
