// journal.h — the crash-safe job journal behind `hmptd --journal`.
//
// The durability contract of the daemon: a submit is journaled (appended
// and fsync'd) *before* it is acked, and every job completion appends a
// terminal record. After a crash — kill -9 included — restarting with
// the same `--journal` path replays the file and re-admits exactly the
// jobs that were acked but never reached a terminal state. Combined with
// the content-addressed OutcomeStore (finished work is a store hit, so a
// replayed finished job costs one lookup, not a re-execution), this
// makes an acked submit impossible to lose.
//
// Format: NDJSON, one record per line, append-only.
//   {"kind":"submit","fingerprint":...,"priority":...,"deadline_s":...,
//    "attempts":...,"scenario":{...}}       — fsync'd before the ack
//   {"kind":"terminal","fingerprint":...,"state":"done"|...}
//
// Replay rule: a fingerprint is pending — and re-admitted — when it has
// more submit records than terminal records. Counting (instead of
// "latest record wins") makes the rule order-independent: a terminal
// record racing ahead of its submit record within one process, or a
// resubmit of a fingerprint that failed in an earlier run, both resolve
// correctly. A torn final line (the crash happened mid-append) is
// skipped, never fatal: its submit was not acked, so dropping it is
// correct.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "service/scheduler.h"

namespace hmpt::service {

class JobJournal {
 public:
  /// Open (create if missing) the journal for appending. Throws
  /// hmpt::Error when the file cannot be opened.
  explicit JobJournal(std::string path);
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Append + fsync one submit record. Throws hmpt::Error on any write
  /// or sync failure — the caller must NOT ack the submit then.
  void record_submit(const campaign::Scenario& scenario, int priority,
                     const JobLimits& limits);

  /// Append + fsync one terminal record (done/cached/failed/canceled).
  /// Throws on write failure; callers on completion paths should catch —
  /// a failed terminal record only costs a redundant (store-hit) replay.
  void record_terminal(const std::string& fingerprint, JobState state);

  const std::string& path() const { return path_; }

  /// One journaled job awaiting re-admission.
  struct ReplayJob {
    campaign::Scenario scenario;
    int priority = 0;
    JobLimits limits;
  };

  struct Replay {
    std::vector<ReplayJob> pending;  ///< submit records without terminals
    std::size_t records = 0;         ///< well-formed records read
    std::size_t settled = 0;         ///< submits matched by a terminal
    std::size_t skipped = 0;         ///< torn / malformed lines ignored
  };

  /// Read a journal file and compute the pending set (see the replay
  /// rule in the file comment). A missing file is an empty replay, not
  /// an error; pending jobs come back in first-submission order.
  static Replay replay(const std::string& path);

 private:
  void append_synced(const std::string& line);

  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;  ///< serialises appends (submits race completions)
};

}  // namespace hmpt::service
