// fault.h — deterministic fault injection for the execution stack.
//
// FaultInjectingProvider wraps any ExecutionProvider and injects faults
// decided *deterministically* per scenario fingerprint: whether a
// fingerprint is afflicted by a fault kind is a pure function of
// (spec.seed, fingerprint, kind) — the same spec against the same
// scenario set always misbehaves identically, so chaos tests are
// reproducible and a retry budget can be sized to provably drain a
// campaign. Enabled with `hmptd --fault-spec <spec>`; also usable
// directly in tests.
//
// Spec grammar — comma-separated `key=value` tokens:
//   seed=<u64>         decision seed (default 0)
//   fail=<P>:<N>       with probability P per fingerprint, the first N
//                      attempts throw a transient error, then succeed
//   timeout=<P>:<N>    with probability P, the first N attempts hang
//                      cooperatively until the attempt deadline/cancel
//   slow=<P>:<S>       with probability P, every attempt sleeps S
//                      seconds (cooperatively) before executing
//   corrupt=<P>        with probability P, the returned outcome is
//                      deterministically perturbed — feeding the store's
//                      conflicting-outcome detection
//   crash-after=<N>    abort() the process when execution N+1 starts
//                      (process-wide count). Completed work is in the
//                      store, so every restart makes progress.
//
// Example: `seed=7,fail=0.3:2,timeout=0.2:1`
//
// The hang fault parks on the job's CancelToken, so it honours the
// attempt deadline and scheduler teardown — no detached threads, no
// leaked workers under sanitizers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "service/provider.h"

namespace hmpt::service {

struct FaultSpec {
  std::uint64_t seed = 0;
  double fail_p = 0.0;
  int fail_attempts = 1;
  double timeout_p = 0.0;
  int timeout_attempts = 1;
  double slow_p = 0.0;
  double slow_s = 0.0;
  double corrupt_p = 0.0;
  long crash_after = -1;  ///< < 0 = disabled

  /// True when any fault kind is armed.
  bool any() const;

  /// Parse the grammar above; throws hmpt::Error with the offending
  /// token on malformed input (unknown key, bad number, P outside
  /// [0, 1], non-positive N/S).
  static FaultSpec parse(const std::string& text);

  /// The spec back as canonical text (for logs and `ping`).
  std::string canonical() const;
};

class FaultInjectingProvider : public ExecutionProvider {
 public:
  /// `inner` must outlive this provider.
  FaultInjectingProvider(ExecutionProvider& inner, FaultSpec spec);

  std::string name() const override { return inner_.name() + "+faults"; }
  tuner::TuningOutcome run(const campaign::Scenario& scenario,
                           const CancelToken& token) override;

  /// Whether the spec afflicts this fingerprint with the given fault
  /// kind — deterministic, exposed so tests can predict the blast
  /// radius of a spec without executing anything.
  enum class Kind { Fail, Timeout, Slow, Corrupt };
  bool afflicts(const std::string& fingerprint, Kind kind) const;

 private:
  ExecutionProvider& inner_;
  FaultSpec spec_;
  std::mutex mutex_;
  std::map<std::string, int> attempts_;  ///< per-fingerprint run count
  std::atomic<long> executions_{0};      ///< process-wide, for crash-after
};

}  // namespace hmpt::service
