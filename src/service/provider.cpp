#include "service/provider.h"

#include "campaign/campaign.h"
#include "common/error.h"

namespace hmpt::service {

SimulatorProvider::SimulatorProvider(int measure_jobs)
    : measure_jobs_(measure_jobs) {
  HMPT_REQUIRE(measure_jobs >= 0,
               "measure_jobs must be >= 0 (0 = all hardware threads)");
}

tuner::TuningOutcome SimulatorProvider::run(
    const campaign::Scenario& scenario, const CancelToken& token) {
  // The simulator runs in one uninterrupted burst; honour a cancel or an
  // already-expired deadline before starting the burn.
  token.check();
  return campaign::CampaignRunner::execute(scenario, measure_jobs_);
}

}  // namespace hmpt::service
