// daemon.h — the hmptd server: sockets in, scheduled tuning out.
//
// Accepts NDJSON protocol connections (protocol.h) on a Unix-domain or
// TCP endpoint, one handler thread per connection, and drives a bounded
// Scheduler over an ExecutionProvider. The daemon owns the glue only:
// request parsing to structured errors (malformed input never kills the
// server), watch-subscription fan-out (a subscriber that disconnects
// mid-stream is dropped, never fatal), per-connection client identities
// for admission control, and the drain/shutdown lifecycle:
//
//   drain     stop admitting, finish every in-flight job, then reply
//             {"drained":true}; the daemon stays up for queries.
//   shutdown  reply, then drain and exit: listener closes, workers join,
//             watchers get {"event":"shutdown"}, connections close.
//
// Embeddable by design: tests (and tools/hmptd) run the daemon in-process
// via start()/wait_for()/request_shutdown().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/socket.h"

namespace hmpt::service {

struct DaemonOptions {
  Endpoint endpoint;                  ///< where to listen
  std::string store_dir = "hmptd-out";  ///< OutcomeStore directory
  int workers = 1;                    ///< scheduler worker pool size
  int max_in_flight = 256;            ///< per-client admission cap
  std::size_t max_queue = 4096;       ///< global queue capacity
  int measure_jobs = 1;               ///< simulator threads per scenario
  /// Latency-store class-map bound (LRU past it; see latency_store.h).
  std::size_t latency_classes = LatencyStore::kDefaultMaxClasses;
  /// Default failure model for every job (per-job submit overrides
  /// apply on top); the default is fail-fast (one attempt, no deadline).
  RetryPolicy retry;
  /// Crash-safe job journal path; empty = journaling disabled. With a
  /// journal, every submit is fsync'd before its ack and start() replays
  /// acked-but-unfinished jobs from a previous (crashed) run.
  std::string journal_path;
  /// Periodic metrics snapshots: every `metrics_interval_s` the daemon
  /// rewrites `metrics_path` (atomically, via rename) with the same JSON
  /// document the `stats` verb serves, plus one final snapshot at
  /// teardown. Empty = disabled. Purely observational — never consulted
  /// by the scheduler and never part of the outcome artefact set.
  std::string metrics_path;
  double metrics_interval_s = 5.0;
};

class Daemon {
 public:
  /// `provider` null = own a SimulatorProvider(measure_jobs), the only
  /// in-tree backend; tests inject counting/slow providers here.
  explicit Daemon(DaemonOptions options,
                  ExecutionProvider* provider = nullptr);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind the endpoint and start accepting + executing. Returns once the
  /// socket is live (a client connecting after start() is never refused),
  /// serving on background threads. Throws hmpt::Error on bind failure.
  void start();

  /// The bound endpoint (the actual port for TCP port-0 binds).
  const Endpoint& endpoint() const;

  /// Ask the daemon to shut down (thread-safe; the `shutdown` op and the
  /// tool's signal loop both land here). Returns immediately.
  void request_shutdown();

  /// Wait up to `timeout_ms` for full shutdown; true once torn down.
  /// wait_for(-1) blocks until shutdown. The first waiter to observe the
  /// request performs the teardown (drain, join, close).
  bool wait_for(int timeout_ms);

  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }

  /// Jobs re-admitted from the journal by start(); 0 without a journal.
  std::size_t replayed_jobs() const { return replayed_jobs_; }

 private:
  /// One accepted client connection, shared with the watch callback.
  struct Connection {
    Socket socket;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};
    std::atomic<bool> watching{false};
    std::uint64_t subscriber_token = 0;
    Scheduler::ClientId client = 0;

    /// Serialised write; a failure marks the connection dead (the reader
    /// loop notices and tears it down) and is never fatal to the daemon.
    bool send(const std::string& line);
  };

  void accept_loop();
  void handle_connection(const std::shared_ptr<Connection>& connection);
  /// Parse + dispatch one request line, sending the response (or a
  /// structured error) on the connection.
  void handle_request(const std::shared_ptr<Connection>& connection,
                      const std::string& line);
  void handle_submit(const std::shared_ptr<Connection>& connection,
                     const Request& request);
  void handle_result(const std::shared_ptr<Connection>& connection,
                     const Request& request);
  void start_watch(const std::shared_ptr<Connection>& connection);
  /// Broadcast a lifecycle event line to every live watch subscriber.
  void broadcast_event(const std::string& line);
  void teardown();
  /// The `stats` response body: scheduler counters, worker utilization,
  /// queue-depth distribution, cache tallies, per-class latency digests
  /// and the metrics-registry snapshot. Shared by the wire handler and
  /// the --metrics-file writer so both views always agree.
  JsonObject stats_fields() const;
  /// Atomically rewrite options_.metrics_path with stats_fields().
  /// Best-effort: an unwritable path never fails a job or the daemon.
  void write_metrics_snapshot() const;
  void metrics_loop();

  DaemonOptions options_;
  std::unique_ptr<ExecutionProvider> owned_provider_;
  ExecutionProvider* provider_ = nullptr;
  /// Declared before scheduler_: completion callbacks write terminal
  /// records during scheduler teardown, so the journal must die last.
  std::unique_ptr<JobJournal> journal_;
  std::uint64_t journal_token_ = 0;
  std::size_t replayed_jobs_ = 0;
  std::unique_ptr<Scheduler> scheduler_;
  std::optional<Listener> listener_;
  Endpoint bound_;

  std::thread accept_thread_;
  std::thread metrics_thread_;  ///< --metrics-file writer; may be empty
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::list<std::thread> handlers_;
  std::uint64_t next_conn_ = 0;  ///< handler-thread naming only

  std::mutex lifecycle_mutex_;
  std::condition_variable lifecycle_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool stopped_ = false;
  bool tearing_down_ = false;
};

}  // namespace hmpt::service
