#include "service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.h"
#include "common/thread_name.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hmpt::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cached: return "cached";
    case JobState::Failed: return "failed";
    case JobState::Canceled: return "canceled";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state != JobState::Queued && state != JobState::Running;
}

Scheduler::Scheduler(ExecutionProvider& provider,
                     campaign::OutcomeStore store, SchedulerOptions options)
    : provider_(provider),
      store_(std::move(store)),
      options_(options),
      latency_(options_.max_latency_classes) {
  HMPT_REQUIRE(options_.workers >= 1, "scheduler needs >= 1 worker");
  HMPT_REQUIRE(options_.max_in_flight >= 1,
               "max_in_flight must be >= 1");
  HMPT_REQUIRE(options_.max_queue >= 1, "max_queue must be >= 1");
  options_.retry.validate();
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Unblock waiters: whatever is still queued will never run.
    for (const auto& job : queue_) {
      job->status.state = JobState::Canceled;
      ++tallies_.canceled;
      for (ClientId owner : job->owners) release_owner(owner);
      job->owners.clear();
    }
    queue_.clear();
    // Cancel in-flight attempts so cooperative providers stop promptly
    // and backoff sleeps wake — teardown never waits out a retry
    // schedule or a hung (deadline-armed) provider.
    for (auto& [fingerprint, job] : jobs_) {
      (void)fingerprint;
      if (job->active_token.has_value()) job->active_token->cancel();
    }
  }
  stop_token_.cancel();
  dispatch_.notify_all();
  terminal_.notify_all();
  if (pump_.joinable()) pump_.join();
}

void Scheduler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  started_at_ = Clock::now();
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  // Each parallel_for index is one long-lived worker lane pulling jobs
  // until shutdown; the pump thread is the pool's calling lane.
  pump_ = std::thread([this] {
    set_current_thread_name("hmpt-pump");
    pool_->parallel_for(static_cast<std::size_t>(options_.workers),
                        [this](std::size_t) { worker_loop(); });
  });
}

Scheduler::ClientId Scheduler::new_client() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_client_++;
}

void Scheduler::client_gone(ClientId client) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [fingerprint, job] : jobs_) {
    (void)fingerprint;
    if (!is_terminal(job->status.state)) job->owners.erase(client);
  }
  in_flight_.erase(client);
}

std::size_t Scheduler::in_flight_of(ClientId client) const {
  const auto it = in_flight_.find(client);
  return it == in_flight_.end() ? 0 : it->second;
}

void Scheduler::charge_owner(ClientId client) { ++in_flight_[client]; }

void Scheduler::release_owner(ClientId client) {
  const auto it = in_flight_.find(client);
  if (it == in_flight_.end()) return;
  if (it->second <= 1)
    in_flight_.erase(it);
  else
    --it->second;
}

JobStatus Scheduler::submit(ClientId client,
                            const campaign::Scenario& scenario,
                            int priority, const JobLimits& limits,
                            bool* admitted_new) {
  return admit(client, scenario, priority, limits, /*replay=*/false,
               admitted_new);
}

JobStatus Scheduler::submit_replay(const campaign::Scenario& scenario,
                                   int priority, const JobLimits& limits) {
  return admit(/*client=*/0, scenario, priority, limits, /*replay=*/true);
}

JobStatus Scheduler::admit(ClientId client,
                           const campaign::Scenario& scenario,
                           int priority, const JobLimits& limits,
                           bool replay, bool* admitted_new) {
  const std::string fingerprint = scenario.fingerprint();
  if (admitted_new != nullptr) *admitted_new = false;
  static obs::Counter& submits = obs::metrics().counter("scheduler.submits");
  static obs::Counter& attached =
      obs::metrics().counter("scheduler.attached");
  static obs::Counter& cache_hits =
      obs::metrics().counter("scheduler.cache_hits");
  static obs::Counter& enqueued = obs::metrics().counter("scheduler.enqueued");
  static obs::Histogram& queue_depth =
      obs::metrics().histogram("scheduler.queue_depth");
  submits.add();
  std::optional<std::size_t> enqueued_depth;
  std::optional<JobStatus> cached_event;
  JobStatus snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_)
      raise("draining: the scheduler is not admitting new work");

    const auto it = jobs_.find(fingerprint);
    if (it != jobs_.end() && !is_terminal(it->second->status.state)) {
      // Dedup: attach this client to the in-flight twin. The twin keeps
      // its original limits — the first submit's deadline/attempt budget
      // wins for a shared fingerprint.
      auto& job = it->second;
      if (!replay && job->owners.insert(client).second) {
        if (in_flight_of(client) >= static_cast<std::size_t>(
                                        options_.max_in_flight)) {
          job->owners.erase(client);
          raise("busy: client has " + std::to_string(in_flight_of(client)) +
                " jobs in flight (max " +
                std::to_string(options_.max_in_flight) + ")");
        }
        charge_owner(client);
      }
      attached.add();
      return job->status;
    }
    if (it != jobs_.end() &&
        (it->second->status.state == JobState::Done ||
         it->second->status.state == JobState::Cached)) {
      // Finished earlier in this process: a cache hit for this submit.
      snapshot = it->second->status;
      snapshot.state = JobState::Cached;
      cache_hits.add();
      return snapshot;
    }
    // Unknown (or Failed/Canceled, which resubmission retries): consult
    // the content-addressed store first — a hit is answered with zero
    // re-execution.
    if (it == jobs_.end() && store_.contains(scenario)) {
      auto job = std::make_shared<Job>();
      job->scenario = scenario;
      job->status.fingerprint = fingerprint;
      job->status.label = scenario.label();
      job->status.state = JobState::Cached;
      jobs_[fingerprint] = job;
      ++tallies_.cached;
      ++notifying_;
      snapshot = job->status;
      cached_event = snapshot;
      cache_hits.add();
    } else {
      if (!replay) {
        // Journal replay is exempt: every acked job must be re-admitted
        // on restart, however many the journal holds.
        if (queue_.size() >= options_.max_queue)
          raise("busy: queue is full (" +
                std::to_string(options_.max_queue) + " jobs)");
        if (in_flight_of(client) >=
            static_cast<std::size_t>(options_.max_in_flight))
          raise("busy: client has " + std::to_string(in_flight_of(client)) +
                " jobs in flight (max " +
                std::to_string(options_.max_in_flight) + ")");
      }
      auto job = std::make_shared<Job>();
      job->sequence = next_sequence_++;
      job->priority = priority;
      job->scenario = scenario;
      job->limits = limits;
      job->status.fingerprint = fingerprint;
      job->status.label = scenario.label();
      job->status.state = JobState::Queued;
      job->status.priority = priority;
      if (!replay) {
        job->owners.insert(client);
        charge_owner(client);
      }
      jobs_[fingerprint] = job;
      queue_.push_back(job);
      snapshot = job->status;
      if (admitted_new != nullptr) *admitted_new = true;
      enqueued_depth = queue_.size();
    }
  }
  if (enqueued_depth.has_value()) {
    enqueued.add();
    queue_depth.observe(static_cast<double>(*enqueued_depth));
    obs::trace_counter("scheduler", "queue_depth",
                       static_cast<double>(*enqueued_depth));
  }
  if (cached_event.has_value()) {
    // Store hits never reach a worker, so the completion event that watch
    // subscribers rely on is synthesised here.
    terminal_.notify_all();
    notify_subscribers(*cached_event);
    finished_notifying();
  } else {
    dispatch_.notify_one();
  }
  return snapshot;
}

std::shared_ptr<Scheduler::Job> Scheduler::next_job() {
  std::unique_lock<std::mutex> lock(mutex_);
  dispatch_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
  if (stopping_) return nullptr;

  // Highest priority first, FIFO (lowest sequence) within a priority.
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->priority > (*best)->priority ||
        ((*it)->priority == (*best)->priority &&
         (*it)->sequence < (*best)->sequence))
      best = it;
  }
  auto job = *best;
  queue_.erase(best);
  job->status.state = JobState::Running;
  ++running_;
  const std::size_t depth = queue_.size();
  lock.unlock();

  static obs::Counter& dispatched =
      obs::metrics().counter("scheduler.dispatched");
  static obs::Histogram& queue_depth =
      obs::metrics().histogram("scheduler.queue_depth");
  dispatched.add();
  queue_depth.observe(static_cast<double>(depth));
  if (obs::trace_enabled()) {
    obs::trace_counter("scheduler", "queue_depth",
                       static_cast<double>(depth));
    obs::trace_instant(
        "scheduler", "dispatch",
        {obs::TraceArg("fingerprint", job->status.fingerprint),
         obs::TraceArg::number(
             "priority", static_cast<double>(job->status.priority))});
  }
  return job;
}

void Scheduler::worker_loop() {
  for (;;) {
    const auto job = next_job();
    if (!job) return;
    run_job(job);
  }
}

void Scheduler::run_job(const std::shared_ptr<Job>& job) {
  // Resolve the effective policy: the scheduler default, with the job's
  // submit-time overrides (attempt budget / total deadline) applied.
  RetryPolicy policy = options_.retry;
  if (job->limits.max_attempts > 0)
    policy.max_attempts = job->limits.max_attempts;
  if (job->limits.deadline_s >= 0.0)
    policy.total_deadline_s = job->limits.deadline_s;

  const auto start = Clock::now();
  const auto attempted = attempt_with_retries(
      policy, stream_of(job->status.fingerprint),
      [&](const CancelToken& token) {
        obs::TraceSpan attempt_span("scheduler", "attempt");
        attempt_span.arg("fingerprint", job->status.fingerprint);
        {
          // Publish the live attempt's token so teardown can cancel a
          // running (possibly deadline-parked) provider.
          std::lock_guard<std::mutex> lock(mutex_);
          job->active_token = token;
          if (stopping_) job->active_token->cancel();
        }
        const auto outcome = provider_.run(job->scenario, token);
        store_.save(job->scenario, outcome);
        return 0;  // the store holds the outcome; the value is unused
      },
      &stop_token_);
  const double seconds = seconds_since(start);
  const int attempts = attempted.attempt_count();

  int job_timeouts = 0;
  for (const auto& record : attempted.attempts)
    if (record.error.find("timeout:") != std::string::npos) ++job_timeouts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->active_token.reset();
    if (attempts > 1)
      tallies_.retries += static_cast<std::size_t>(attempts - 1);
    tallies_.timeouts += static_cast<std::size_t>(job_timeouts);
  }
  busy_us_.fetch_add(static_cast<std::uint64_t>(seconds * 1e6),
                     std::memory_order_relaxed);
  latency_.record_attempts(job->status.label, attempts, job_timeouts);
  if (attempts > 1) {
    static obs::Counter& retries =
        obs::metrics().counter("scheduler.retries");
    retries.add(static_cast<std::uint64_t>(attempts - 1));
    obs::trace_instant(
        "scheduler", "retry",
        {obs::TraceArg("fingerprint", job->status.fingerprint),
         obs::TraceArg::number("attempts",
                               static_cast<std::uint64_t>(attempts))});
  }
  if (job_timeouts > 0) {
    static obs::Counter& timeouts =
        obs::metrics().counter("scheduler.timeouts");
    timeouts.add(static_cast<std::uint64_t>(job_timeouts));
  }

  if (attempted.ok()) {
    latency_.record(job->status.label, seconds);
    finish_job(job, JobState::Done, {}, seconds, attempts);
    return;
  }
  std::string error;
  if (attempted.attempts.size() == 1) {
    error = attempted.attempts.front().error;
  } else {
    error = "after " + std::to_string(attempts) +
            " attempts: " + format_attempts(attempted.attempts);
  }
  finish_job(job, JobState::Failed, error, seconds, attempts);
}

void Scheduler::finish_job(const std::shared_ptr<Job>& job, JobState state,
                           const std::string& error, double seconds,
                           int attempts) {
  JobStatus snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->status.state = state;
    job->status.error = error;
    job->status.seconds = seconds;
    job->status.attempts = attempts;
    --running_;
    if (state == JobState::Done) ++tallies_.done;
    if (state == JobState::Failed) ++tallies_.failed;
    ++notifying_;
    for (ClientId owner : job->owners) release_owner(owner);
    job->owners.clear();
    snapshot = job->status;
  }
  static obs::Counter& completed =
      obs::metrics().counter("scheduler.completed");
  completed.add();
  if (obs::trace_enabled())
    obs::trace_instant("scheduler", "complete",
                       {obs::TraceArg("fingerprint", snapshot.fingerprint),
                        obs::TraceArg("state", to_string(snapshot.state))});
  terminal_.notify_all();
  notify_subscribers(snapshot);
  finished_notifying();
}

void Scheduler::notify_subscribers(const JobStatus& status) {
  // Callbacks are serialised and run outside mutex_, so a subscriber may
  // freely call back into the scheduler (status(), outcome(), ...).
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  for (auto& [token, callback] : subscribers_) {
    (void)token;
    if (callback) callback(status);
  }
}

void Scheduler::finished_notifying() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --notifying_;
  }
  terminal_.notify_all();
}

std::optional<JobStatus> Scheduler::status(
    const std::string& fingerprint) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(fingerprint);
    if (it != jobs_.end()) return it->second->status;
  }
  // Not a job of this process — but a previous run may have stored it.
  if (store_.load_by_fingerprint(fingerprint).has_value()) {
    JobStatus status;
    status.fingerprint = fingerprint;
    status.state = JobState::Cached;
    return status;
  }
  return std::nullopt;
}

std::optional<JobStatus> Scheduler::wait(const std::string& fingerprint) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = jobs_.find(fingerprint);
    if (it == jobs_.end()) {
      lock.unlock();
      return status(fingerprint);  // store-only (or unknown)
    }
    if (is_terminal(it->second->status.state)) return it->second->status;
    if (stopping_) return it->second->status;
    terminal_.wait(lock);
  }
}

std::optional<tuner::TuningOutcome> Scheduler::outcome(
    const std::string& fingerprint) const {
  // Workers save before marking Done, so the store is authoritative for
  // every terminal job — no separate in-memory result cache to bound.
  return store_.load_by_fingerprint(fingerprint);
}

bool Scheduler::cancel(const std::string& fingerprint) {
  JobStatus snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(fingerprint);
    if (it == jobs_.end() ||
        it->second->status.state != JobState::Queued)
      return false;
    auto& job = it->second;
    queue_.erase(std::find(queue_.begin(), queue_.end(), job));
    job->status.state = JobState::Canceled;
    ++tallies_.canceled;
    ++notifying_;
    for (ClientId owner : job->owners) release_owner(owner);
    job->owners.clear();
    snapshot = job->status;
  }
  terminal_.notify_all();
  notify_subscribers(snapshot);
  finished_notifying();
  return true;
}

SchedulerCounts Scheduler::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerCounts counts = tallies_;
  counts.queued = queue_.size();
  counts.running = running_;
  counts.draining = draining_ || stopping_;
  counts.busy_seconds =
      static_cast<double>(busy_us_.load(std::memory_order_relaxed)) / 1e6;
  counts.uptime_seconds = started_ ? seconds_since(started_at_) : 0.0;
  return counts;
}

std::uint64_t Scheduler::subscribe(CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  const std::uint64_t token = next_subscriber_++;
  subscribers_[token] = std::move(callback);
  return token;
}

void Scheduler::unsubscribe(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  subscribers_.erase(token);
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  terminal_.wait(lock, [&] {
    return (queue_.empty() && running_ == 0 && notifying_ == 0) ||
           stopping_;
  });
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

void Scheduler::shutdown() {
  bool was_started = false;
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    was_started = started_;
  }
  stop_token_.cancel();
  dispatch_.notify_all();
  terminal_.notify_all();
  if (was_started && pump_.joinable()) pump_.join();
}

}  // namespace hmpt::service
