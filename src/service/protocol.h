// protocol.h — the NDJSON request/response protocol of hmptd.
//
// Framing is line-oriented JSON (NDJSON): every request, response and
// streamed event is one compact JSON object on one '\n'-terminated line,
// read and written with common/json. Requests carry an "op"; responses
// echo it with "ok" true/false ("error" holds the message on failure);
// watch subscriptions additionally receive "event" lines that are not
// responses to any request. Scenario payloads reuse the campaign
// serialisation, and jobs are identified by the scenario's content-
// addressed fingerprint — the same key the on-disk OutcomeStore uses, so
// resubmitting a finished scenario is answered from the store.
//
// The full message reference lives in docs/SERVICE.md; parse_request is
// deliberately strict (unknown op, wrong field kinds, missing fields all
// throw hmpt::Error) so the daemon can answer malformed input with a
// structured error instead of crashing or guessing.
#pragma once

#include <optional>
#include <string>

#include "campaign/scenario.h"
#include "common/json.h"

namespace hmpt::service {

/// Protocol revision, echoed by `ping`; bump on any wire-visible change.
/// 2: submit carries optional per-job limits ("deadline_s", "attempts");
///    status/stats surface retry counters and job attempt counts.
/// 3: stats gains worker utilization, a queue-depth distribution,
///    cache-hit tallies, per-class attempt/retry/timeout counters and
///    the full metrics-registry snapshot; empty latency distributions
///    report "count" only (no fabricated zero quantiles).
inline constexpr int kProtocolVersion = 3;

/// Every request the daemon understands.
enum class Op {
  Submit,    ///< enqueue a scenario or a whole campaign matrix
  Status,    ///< scheduler counters, or one job's state
  Result,    ///< fetch a finished outcome by fingerprint (optionally wait)
  Watch,     ///< subscribe this connection to completion events
  Stats,     ///< latency digests per scenario class + queue ETA
  Cancel,    ///< cancel a queued job
  Drain,     ///< finish all admitted work, admit nothing new, then reply
  Shutdown,  ///< drain, then stop the daemon
  Ping,      ///< liveness + protocol version
};

/// The wire spelling of an op ("submit", "status", ...).
const char* to_string(Op op);
/// Parse a wire spelling; nullopt for unknown ops.
std::optional<Op> parse_op(const std::string& text);

/// One parsed request line.
struct Request {
  Op op = Op::Ping;
  /// Submit: exactly one of `scenario` (a campaign-serialised scenario
  /// object) or `campaign` (the text of a campaign file, expanded
  /// server-side) is present.
  std::optional<campaign::Scenario> scenario;
  std::string campaign_text;
  /// Submit: dispatch priority (higher first, FIFO within a priority).
  int priority = 0;
  /// Submit: total wall-clock budget per job in seconds (attempts plus
  /// backoff); < 0 = the daemon's default.
  double deadline_s = -1.0;
  /// Submit: provider attempt budget per job; 0 = the daemon's default.
  int attempts = 0;
  /// Status/Result/Cancel: the job's fingerprint (optional for Status).
  std::string fingerprint;
  /// Result: block until the job is terminal instead of failing fast.
  bool wait = false;

  /// The request as one compact NDJSON line (with trailing '\n') —
  /// dump_request(parse_request(line)) round-trips every field.
  std::string to_line() const;
};

/// Parse one NDJSON request line (the '\n' may be present or stripped).
/// Throws hmpt::Error with a client-presentable message on invalid JSON,
/// a non-object document, a missing/unknown op, or malformed fields.
Request parse_request(const std::string& line);

/// Success response: {"ok":true,"op":...} plus `fields`, one line.
std::string ok_line(Op op, JsonObject fields = {});
/// Error response: {"ok":false,"op":...,"error":...} plus `fields`
/// (e.g. the non-terminal "state" of a fast-failed `result`). `op_text`
/// is the wire op spelling, or "?" when the request never parsed that far.
std::string error_line(const std::string& error,
                       const std::string& op_text = "?",
                       JsonObject fields = {});

/// One streamed completion event (watch subscribers): event "job" with
/// the job's fingerprint, label, terminal state and timing; `extra`
/// appends e.g. "speedup" or "error".
std::string job_event_line(const std::string& fingerprint,
                           const std::string& label,
                           const std::string& state, double seconds,
                           JsonObject extra = {});
/// A bare lifecycle event line: {"event":<name>} ("drained", "shutdown").
std::string event_line(const std::string& name);

/// A parsed response or event line, as the client sees it.
struct ServerMessage {
  bool is_event = false;   ///< event line (watch stream) vs response
  std::string event;       ///< event name when is_event
  bool ok = false;         ///< response success flag
  std::string op;          ///< echoed op ("?" when the server never knew)
  std::string error;       ///< error message when !ok
  Json body;               ///< the whole document, for op-specific fields
};

/// Parse any server-to-client line. Throws hmpt::Error on invalid JSON or
/// a document that is neither a response nor an event.
ServerMessage parse_server_message(const std::string& line);

}  // namespace hmpt::service
