// scheduler.h — the bounded job scheduler behind hmptd.
//
// Clients submit fingerprinted scenarios; the scheduler dispatches them
// to a bounded worker pool (common/ThreadPool lanes running a pull loop),
// persists every finished outcome through the campaign OutcomeStore and
// fans completions out to subscribers (the daemon's watch streams).
//
// Semantics:
//   * Content-addressed dedup. The scenario fingerprint is the job id. A
//     submit whose fingerprint is already in the OutcomeStore is answered
//     Cached with zero re-execution; one already queued/running attaches
//     the submitter to the existing job instead of enqueuing a twin.
//   * FIFO with priority. Dispatch picks the highest priority first and
//     is FIFO (submission order) within a priority.
//   * Admission control. Per-client max_in_flight (incomplete jobs a
//     client may own) and a global queue capacity; a submit over either
//     limit throws hmpt::Error — the daemon turns it into a structured
//     `busy` error and the client backs off.
//   * Fault tolerance (common/retry). Every job runs under the
//     scheduler's RetryPolicy, overridable per job (JobLimits): a
//     provider failure or timeout is retried with deterministic
//     exponential backoff, each attempt runs under a CancelToken armed
//     with the attempt deadline and the job's remaining total budget, and
//     a job that exhausts its budget is reported Failed with the full
//     attempt history. Terminal errors ("terminal:", store determinism
//     violations) never retry.
//   * Cancellation. Queued jobs can be cancelled; running providers are
//     never interrupted by `cancel` (it returns false once a job
//     started), but scheduler teardown cancels in-flight attempt tokens
//     so cooperative providers stop promptly.
//   * Drain / shutdown. drain() stops admission and blocks until every
//     admitted job is terminal; shutdown() drains, then stops and joins
//     the workers. Outcomes are byte-identical to batch runs because the
//     provider executes the same code path and the same store writes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/outcome_store.h"
#include "campaign/scenario.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "service/latency_store.h"
#include "service/provider.h"

namespace hmpt::service {

/// Lifecycle of a job; Done/Cached/Failed/Canceled are terminal.
enum class JobState { Queued, Running, Done, Cached, Failed, Canceled };
/// The state's wire spelling ("queued", "running", "done", ...).
const char* to_string(JobState state);
bool is_terminal(JobState state);

/// Per-job overrides of the scheduler's retry policy, carried on the
/// submit. Unset fields (0 / negative) fall back to the policy default.
struct JobLimits {
  int max_attempts = 0;      ///< total attempts; 0 = policy default
  double deadline_s = -1.0;  ///< total wall-clock budget; < 0 = default

  bool operator==(const JobLimits&) const = default;
};

/// A point-in-time view of one job.
struct JobStatus {
  std::string fingerprint;
  std::string label;          ///< scenario class (workload/platform/strategy)
  JobState state = JobState::Queued;
  int priority = 0;
  std::string error;          ///< Failed: the attempt history
  double seconds = 0.0;       ///< provider wall time (terminal states)
  int attempts = 0;           ///< provider attempts made (terminal states)
};

/// Aggregate queue counters for `status` responses.
struct SchedulerCounts {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;      ///< executed to completion this process
  std::size_t cached = 0;    ///< answered from the store without running
  std::size_t failed = 0;
  std::size_t canceled = 0;
  std::size_t retries = 0;   ///< provider attempts beyond each job's first
  std::size_t timeouts = 0;  ///< attempts that ended in a deadline expiry
  bool draining = false;
  /// Worker utilization: provider wall time summed across lanes, and the
  /// wall clock since start(). busy / (uptime * workers) is the fraction
  /// of lane capacity spent executing. Both 0 before start().
  double busy_seconds = 0.0;
  double uptime_seconds = 0.0;
};

struct SchedulerOptions {
  int workers = 1;                  ///< bounded worker pool size (>= 1)
  int max_in_flight = 256;          ///< per-client incomplete-job cap
  std::size_t max_queue = 4096;     ///< global queued-job capacity
  /// Latency-store class-map bound (LRU eviction past it; see
  /// service/latency_store.h). Evicted classes fall back to the overall
  /// tracker for ETA estimates.
  std::size_t max_latency_classes = LatencyStore::kDefaultMaxClasses;
  /// The failure model every job runs under (see common/retry.h). The
  /// default is one attempt, no deadline — fail-fast, exactly the
  /// pre-retry behaviour.
  RetryPolicy retry;
};

class Scheduler {
 public:
  /// A connection-scoped identity for admission accounting.
  using ClientId = std::uint64_t;
  /// Completion hook: fired exactly once per job reaching a terminal
  /// state, serialised (one callback at a time), from a worker thread.
  using CompletionCallback = std::function<void(const JobStatus&)>;

  /// The provider must outlive the scheduler.
  Scheduler(ExecutionProvider& provider, campaign::OutcomeStore store,
            SchedulerOptions options);
  /// Stops and joins the workers; queued jobs are marked Canceled and
  /// in-flight attempt tokens are canceled (cooperative providers stop).
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Spawn the worker lanes. Idempotent; submit() before start() queues.
  void start();

  /// Mint a fresh client identity (per accepted connection).
  ClientId new_client();
  /// Release a client's admission accounting (connection closed). Its
  /// jobs keep running — results are content-addressed, never orphaned.
  void client_gone(ClientId client);

  /// Admit one scenario. Returns the job's status snapshot: Cached when
  /// the store already holds the fingerprint (zero re-execution), else
  /// Queued/Running/terminal for an attached duplicate, else a fresh
  /// Queued job. Throws hmpt::Error when draining or over the admission
  /// limits (per-client max_in_flight, global queue capacity).
  /// `admitted_new`, when given, is set to whether this submit enqueued
  /// a fresh job — the signal the daemon's journal keys on: an attach or
  /// a cache hit is already covered (or needs no coverage), so
  /// journaling it would leave a submit record no terminal ever matches.
  JobStatus submit(ClientId client, const campaign::Scenario& scenario,
                   int priority = 0, const JobLimits& limits = {},
                   bool* admitted_new = nullptr);

  /// Journal-replay admission: like submit() but exempt from the
  /// per-client and queue-capacity limits — every journaled job must be
  /// re-admitted on restart, however many there are. Only call before
  /// serving clients (the daemon replays during startup).
  JobStatus submit_replay(const campaign::Scenario& scenario,
                          int priority = 0, const JobLimits& limits = {});

  /// Status of a known fingerprint (this process's jobs plus anything in
  /// the store, reported Cached); nullopt for never-seen fingerprints.
  std::optional<JobStatus> status(const std::string& fingerprint) const;

  /// Block until the fingerprint's job is terminal; nullopt when the
  /// fingerprint is unknown (and not in the store).
  std::optional<JobStatus> wait(const std::string& fingerprint);

  /// The finished outcome for a fingerprint: from this process's results
  /// or the backing store. nullopt while pending or unknown.
  std::optional<tuner::TuningOutcome> outcome(
      const std::string& fingerprint) const;

  /// Cancel a queued job (true). Running/terminal/unknown: false.
  bool cancel(const std::string& fingerprint);

  SchedulerCounts counts() const;
  const LatencyStore& latency() const { return latency_; }
  const campaign::OutcomeStore& store() const { return store_; }
  const SchedulerOptions& options() const { return options_; }

  /// Subscribe to completion events; returns a token for unsubscribe().
  std::uint64_t subscribe(CompletionCallback callback);
  void unsubscribe(std::uint64_t token);

  /// Stop admitting (submit throws "draining") and block until every
  /// admitted job is terminal. Workers keep executing; safe to call from
  /// any non-worker thread, concurrently.
  void drain();
  bool draining() const;

  /// drain(), then stop and join the worker lanes. Idempotent.
  void shutdown();

 private:
  struct Job {
    std::uint64_t sequence = 0;  ///< FIFO order within a priority
    int priority = 0;
    campaign::Scenario scenario;
    JobLimits limits;
    JobStatus status;
    std::set<ClientId> owners;   ///< clients charged for this job
    /// The live attempt's token while the provider runs (teardown
    /// cancels it); reset between attempts.
    std::optional<CancelToken> active_token;
  };

  /// The shared submit path; `replay` bypasses admission accounting.
  JobStatus admit(ClientId client, const campaign::Scenario& scenario,
                  int priority, const JobLimits& limits, bool replay,
                  bool* admitted_new = nullptr);
  void worker_loop();
  /// Pop the next dispatchable job (highest priority, lowest sequence);
  /// null when stopping.
  std::shared_ptr<Job> next_job();
  /// Run one job to a terminal state: the retry loop around the provider.
  void run_job(const std::shared_ptr<Job>& job);
  void finish_job(const std::shared_ptr<Job>& job, JobState state,
                  const std::string& error, double seconds, int attempts);
  void notify_subscribers(const JobStatus& status);
  /// Balance a ++notifying_: decrement and wake drain() waiters.
  void finished_notifying();
  // Admission accounting (mutex_ held): incomplete jobs per client.
  std::size_t in_flight_of(ClientId client) const;
  void charge_owner(ClientId client);
  void release_owner(ClientId client);

  ExecutionProvider& provider_;
  campaign::OutcomeStore store_;
  SchedulerOptions options_;
  LatencyStore latency_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_;   ///< workers wait for queued jobs
  std::condition_variable terminal_;   ///< wait()/drain() wait here
  std::deque<std::shared_ptr<Job>> queue_;          ///< submission order
  std::map<std::string, std::shared_ptr<Job>> jobs_;  ///< by fingerprint
  std::map<ClientId, std::size_t> in_flight_;  ///< admission accounting
  std::uint64_t next_sequence_ = 0;
  ClientId next_client_ = 1;
  SchedulerCounts tallies_;  ///< done/cached/failed/... accumulators
  std::size_t running_ = 0;
  /// Completion callbacks still in flight; drain() waits for zero so the
  /// `drained` reply never overtakes a watcher's last event.
  std::size_t notifying_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool started_ = false;
  /// Lane-busy accounting for utilization stats: microseconds of
  /// provider wall time, summed as jobs retire.
  std::atomic<std::uint64_t> busy_us_{0};
  std::chrono::steady_clock::time_point started_at_{};  ///< set by start()
  /// Canceled when the scheduler stops: wakes backoff sleeps between
  /// attempts so teardown never waits out a retry schedule.
  CancelToken stop_token_;

  std::mutex subscriber_mutex_;  ///< serialises completion callbacks
  std::map<std::uint64_t, CompletionCallback> subscribers_;
  std::uint64_t next_subscriber_ = 1;

  std::unique_ptr<ThreadPool> pool_;
  std::thread pump_;  ///< drives pool_->parallel_for over the worker loops
};

}  // namespace hmpt::service
