#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace hmpt::service {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  raise(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HMPT_REQUIRE(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  HMPT_REQUIRE(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "not an IPv4 address: " + host);
  return addr;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (is_unix()) return "unix:" + unix_path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const std::string& data) const {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (newline > max_line_) {
        buffer_.erase(0, newline + 1);
        return Status::Oversized;
      }
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::Line;
    }
    if (eof_) {
      // Tail without newline: surface it once, then report EOF.
      if (buffer_.empty()) return Status::Eof;
      if (buffer_.size() > max_line_) {
        buffer_.clear();
        return Status::Oversized;
      }
      line = std::move(buffer_);
      buffer_.clear();
      return Status::Line;
    }
    if (buffer_.size() > max_line_) {
      // The line under construction is already over budget; drop input
      // until its newline so the stream resynchronises.
      buffer_.clear();
      for (;;) {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          eof_ = true;
          return Status::Oversized;
        }
        const char* end = static_cast<const char*>(
            std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (end != nullptr) {
          buffer_.assign(end + 1, chunk + n - (end + 1));
          return Status::Oversized;
        }
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Listener Listener::listen(const Endpoint& endpoint) {
  Listener listener;
  listener.endpoint_ = endpoint;

  const int domain = endpoint.is_unix() ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("cannot create socket");
  listener.socket_ = Socket(fd);

  if (endpoint.is_unix()) {
    // A stale socket file from a crashed daemon must not block restart.
    ::unlink(endpoint.unix_path.c_str());
    const auto addr = unix_address(endpoint.unix_path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      raise_errno("cannot bind " + endpoint.to_string());
  } else {
    const int yes = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
    const auto addr = tcp_address(endpoint.host, endpoint.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      raise_errno("cannot bind " + endpoint.to_string());
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      listener.endpoint_.port = ntohs(bound.sin_port);
  }
  if (::listen(fd, SOMAXCONN) != 0)
    raise_errno("cannot listen on " + endpoint.to_string());
  return listener;
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept_for(int timeout_ms) {
  if (!socket_.valid()) return std::nullopt;
  pollfd pfd{socket_.fd(), POLLIN, 0};
  // A signal interrupting the poll reads as a timeout: the accept loop
  // re-checks its stop flag and comes back, which is the behaviour an
  // EINTR mid-wait should have anyway.
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready <= 0) return std::nullopt;
  int fd;
  do {
    fd = ::accept(socket_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return std::nullopt;
  return Socket(fd);
}

void Listener::close() {
  if (socket_.valid() && endpoint_.is_unix())
    ::unlink(endpoint_.unix_path.c_str());
  socket_.close();
}

Socket connect_to(const Endpoint& endpoint) {
  const int domain = endpoint.is_unix() ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("cannot create socket");
  Socket socket(fd);

  // A blocking connect interrupted by a signal (EINTR) completes
  // asynchronously; poll for writability and read SO_ERROR instead of
  // retrying the connect (a retry would race the in-progress handshake).
  const auto finish_interrupted = [&] {
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, -1);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0)
      raise_errno("cannot connect to " + endpoint.to_string());
    int error = 0;
    socklen_t length = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length) != 0)
      raise_errno("cannot connect to " + endpoint.to_string());
    if (error != 0) {
      errno = error;
      raise_errno("cannot connect to " + endpoint.to_string());
    }
  };

  int rc;
  if (endpoint.is_unix()) {
    const auto addr = unix_address(endpoint.unix_path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const auto addr = tcp_address(endpoint.host, endpoint.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) {
    if (errno == EINTR)
      finish_interrupted();
    else
      raise_errno("cannot connect to " + endpoint.to_string());
  }
  return socket;
}

void ignore_sigpipe() {
  // send() uses MSG_NOSIGNAL already; this covers any stray write paths.
  ::signal(SIGPIPE, SIG_IGN);
}

}  // namespace hmpt::service
