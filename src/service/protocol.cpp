#include "service/protocol.h"

#include <utility>

#include "common/error.h"

namespace hmpt::service {

namespace {

/// Fetch an optional string field, rejecting wrong kinds loudly.
std::string string_field(const JsonObject& obj, const std::string& key) {
  const Json* value = obj.find(key);
  if (value == nullptr) return {};
  if (value->kind() != Json::Kind::String)
    raise("field '" + key + "' must be a string");
  return value->as_string();
}

std::string required_fingerprint(const JsonObject& obj, Op op) {
  const std::string fingerprint = string_field(obj, "fingerprint");
  if (fingerprint.empty())
    raise(std::string("op '") + to_string(op) +
          "' requires a 'fingerprint' field");
  return fingerprint;
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::Submit: return "submit";
    case Op::Status: return "status";
    case Op::Result: return "result";
    case Op::Watch: return "watch";
    case Op::Stats: return "stats";
    case Op::Cancel: return "cancel";
    case Op::Drain: return "drain";
    case Op::Shutdown: return "shutdown";
    case Op::Ping: return "ping";
  }
  return "?";
}

std::optional<Op> parse_op(const std::string& text) {
  for (Op op : {Op::Submit, Op::Status, Op::Result, Op::Watch, Op::Stats,
                Op::Cancel, Op::Drain, Op::Shutdown, Op::Ping})
    if (text == to_string(op)) return op;
  return std::nullopt;
}

Request parse_request(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::exception& e) {
    raise(std::string("invalid JSON: ") + e.what());
  }
  if (doc.kind() != Json::Kind::Object)
    raise("request must be a JSON object");
  const JsonObject& obj = doc.as_object();

  const Json* op_value = obj.find("op");
  if (op_value == nullptr) raise("request is missing the 'op' field");
  if (op_value->kind() != Json::Kind::String)
    raise("field 'op' must be a string");
  const auto op = parse_op(op_value->as_string());
  if (!op.has_value()) raise("unknown op: '" + op_value->as_string() + "'");

  Request request;
  request.op = *op;
  switch (*op) {
    case Op::Submit: {
      const Json* scenario = obj.find("scenario");
      const std::string campaign_text = string_field(obj, "campaign");
      if ((scenario != nullptr) == !campaign_text.empty())
        raise("submit requires exactly one of 'scenario' or 'campaign'");
      if (scenario != nullptr) {
        try {
          request.scenario = campaign::Scenario::from_json(*scenario);
        } catch (const std::exception& e) {
          raise(std::string("bad scenario: ") + e.what());
        }
      } else {
        request.campaign_text = campaign_text;
      }
      const Json* priority = obj.find("priority");
      if (priority != nullptr) {
        if (priority->kind() != Json::Kind::Number)
          raise("field 'priority' must be a number");
        request.priority = static_cast<int>(priority->as_number());
      }
      const Json* deadline = obj.find("deadline_s");
      if (deadline != nullptr) {
        if (deadline->kind() != Json::Kind::Number)
          raise("field 'deadline_s' must be a number");
        if (deadline->as_number() <= 0.0)
          raise("field 'deadline_s' must be > 0");
        request.deadline_s = deadline->as_number();
      }
      const Json* attempts = obj.find("attempts");
      if (attempts != nullptr) {
        if (attempts->kind() != Json::Kind::Number)
          raise("field 'attempts' must be a number");
        request.attempts = static_cast<int>(attempts->as_number());
        if (request.attempts < 1) raise("field 'attempts' must be >= 1");
      }
      break;
    }
    case Op::Status:
      request.fingerprint = string_field(obj, "fingerprint");
      break;
    case Op::Result: {
      request.fingerprint = required_fingerprint(obj, *op);
      const Json* wait = obj.find("wait");
      if (wait != nullptr) {
        if (wait->kind() != Json::Kind::Bool)
          raise("field 'wait' must be a boolean");
        request.wait = wait->as_bool();
      }
      break;
    }
    case Op::Cancel:
      request.fingerprint = required_fingerprint(obj, *op);
      break;
    case Op::Watch:
    case Op::Stats:
    case Op::Drain:
    case Op::Shutdown:
    case Op::Ping:
      break;
  }
  return request;
}

std::string Request::to_line() const {
  JsonObject obj;
  obj["op"] = Json(to_string(op));
  switch (op) {
    case Op::Submit:
      if (scenario.has_value())
        obj["scenario"] = scenario->to_json();
      else
        obj["campaign"] = Json(campaign_text);
      if (priority != 0) obj["priority"] = Json(priority);
      if (deadline_s > 0.0) obj["deadline_s"] = Json(deadline_s);
      if (attempts > 0) obj["attempts"] = Json(attempts);
      break;
    case Op::Status:
      if (!fingerprint.empty()) obj["fingerprint"] = Json(fingerprint);
      break;
    case Op::Result:
      obj["fingerprint"] = Json(fingerprint);
      if (wait) obj["wait"] = Json(true);
      break;
    case Op::Cancel:
      obj["fingerprint"] = Json(fingerprint);
      break;
    case Op::Watch:
    case Op::Stats:
    case Op::Drain:
    case Op::Shutdown:
    case Op::Ping:
      break;
  }
  return Json(std::move(obj)).dump(-1) + "\n";
}

std::string ok_line(Op op, JsonObject fields) {
  JsonObject obj;
  obj["ok"] = Json(true);
  obj["op"] = Json(to_string(op));
  for (const auto& [key, value] : fields) obj[key] = value;
  return Json(std::move(obj)).dump(-1) + "\n";
}

std::string error_line(const std::string& error,
                       const std::string& op_text, JsonObject fields) {
  JsonObject obj;
  obj["ok"] = Json(false);
  obj["op"] = Json(op_text);
  obj["error"] = Json(error);
  for (const auto& [key, value] : fields) obj[key] = value;
  return Json(std::move(obj)).dump(-1) + "\n";
}

std::string job_event_line(const std::string& fingerprint,
                           const std::string& label,
                           const std::string& state, double seconds,
                           JsonObject extra) {
  JsonObject obj;
  obj["event"] = Json("job");
  obj["fingerprint"] = Json(fingerprint);
  obj["label"] = Json(label);
  obj["state"] = Json(state);
  obj["seconds"] = Json(seconds);
  for (const auto& [key, value] : extra) obj[key] = value;
  return Json(std::move(obj)).dump(-1) + "\n";
}

std::string event_line(const std::string& name) {
  JsonObject obj;
  obj["event"] = Json(name);
  return Json(std::move(obj)).dump(-1) + "\n";
}

ServerMessage parse_server_message(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::exception& e) {
    raise(std::string("invalid server JSON: ") + e.what());
  }
  if (doc.kind() != Json::Kind::Object)
    raise("server message must be a JSON object");
  const JsonObject& obj = doc.as_object();

  ServerMessage message;
  if (const Json* event = obj.find("event")) {
    message.is_event = true;
    message.event = event->as_string();
  } else if (const Json* ok = obj.find("ok")) {
    message.ok = ok->as_bool();
    message.op = string_field(obj, "op");
    message.error = string_field(obj, "error");
  } else {
    raise("server message has neither 'event' nor 'ok'");
  }
  message.body = std::move(doc);
  return message;
}

}  // namespace hmpt::service
