#include "service/daemon.h"

#include <utility>

#include "common/error.h"
#include "core/outcome_io.h"

namespace hmpt::service {

namespace {

/// The spelling of a scheduler state on the wire.
std::string wire_state(JobState state) { return to_string(state); }

JsonObject job_fields(const JobStatus& status) {
  JsonObject fields;
  fields["fingerprint"] = Json(status.fingerprint);
  if (!status.label.empty()) fields["label"] = Json(status.label);
  fields["state"] = Json(wire_state(status.state));
  if (!status.error.empty()) fields["error"] = Json(status.error);
  if (status.attempts > 0) fields["attempts"] = Json(status.attempts);
  return fields;
}

JsonObject snapshot_fields(
    const ConcurrentQuantileTracker::Snapshot& snapshot) {
  JsonObject fields;
  fields["count"] = Json(static_cast<std::uint64_t>(snapshot.count));
  fields["mean_s"] = Json(snapshot.mean);
  fields["p50_s"] = Json(snapshot.p50);
  fields["p95_s"] = Json(snapshot.p95);
  fields["p99_s"] = Json(snapshot.p99);
  return fields;
}

}  // namespace

bool Daemon::Connection::send(const std::string& line) {
  if (dead.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(write_mutex);
  if (!socket.send_all(line)) {
    // The peer went away (mid-watch disconnects land here): mark the
    // connection dead and let its reader thread tear it down.
    dead.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Daemon::Daemon(DaemonOptions options, ExecutionProvider* provider)
    : options_(std::move(options)) {
  if (provider == nullptr) {
    owned_provider_ =
        std::make_unique<SimulatorProvider>(options_.measure_jobs);
    provider = owned_provider_.get();
  }
  provider_ = provider;
  SchedulerOptions scheduler_options;
  scheduler_options.workers = options_.workers;
  scheduler_options.max_in_flight = options_.max_in_flight;
  scheduler_options.max_queue = options_.max_queue;
  scheduler_options.max_latency_classes = options_.latency_classes;
  scheduler_options.retry = options_.retry;
  scheduler_ = std::make_unique<Scheduler>(
      *provider_, campaign::OutcomeStore(options_.store_dir),
      scheduler_options);
}

Daemon::~Daemon() {
  request_shutdown();
  if (started_) wait_for(-1);
}

void Daemon::start() {
  HMPT_REQUIRE(!started_, "daemon already started");
  ignore_sigpipe();

  if (!options_.journal_path.empty()) {
    // Recover before opening the journal for appending: the previous
    // run's acked-but-unfinished jobs are re-admitted (finished ones are
    // store hits), then every completion — replayed or fresh — appends a
    // terminal record.
    const auto replay = JobJournal::replay(options_.journal_path);
    journal_ = std::make_unique<JobJournal>(options_.journal_path);
    journal_token_ = scheduler_->subscribe([this](const JobStatus& status) {
      try {
        journal_->record_terminal(status.fingerprint, status.state);
      } catch (const std::exception&) {
        // Best-effort: a lost terminal record only costs a redundant
        // (store-hit) replay on the next restart — never fail the job.
      }
    });
    for (const auto& job : replay.pending) {
      scheduler_->submit_replay(job.scenario, job.priority, job.limits);
      ++replayed_jobs_;
    }
  }

  listener_ = Listener::listen(options_.endpoint);
  bound_ = listener_->endpoint();
  scheduler_->start();
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

const Endpoint& Daemon::endpoint() const {
  return started_ ? bound_ : options_.endpoint;
}

void Daemon::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stop_requested_ = true;
  }
  lifecycle_.notify_all();
}

bool Daemon::wait_for(int timeout_ms) {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  const auto requested = [this] { return stop_requested_; };
  if (timeout_ms < 0) {
    lifecycle_.wait(lock, requested);
  } else if (!lifecycle_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                  requested)) {
    return false;
  }
  if (stopped_) return true;
  if (tearing_down_) {
    // Another waiter is tearing down; wait for it to finish.
    lifecycle_.wait(lock, [this] { return stopped_; });
    return true;
  }
  tearing_down_ = true;
  lock.unlock();
  teardown();
  lock.lock();
  stopped_ = true;
  lifecycle_.notify_all();
  return true;
}

void Daemon::teardown() {
  // Stop accepting, finish every admitted job, then disconnect. Order
  // matters: the scheduler drains before sockets die so watchers see
  // their last completions, then the shutdown event, then EOF.
  if (listener_.has_value()) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  scheduler_->shutdown();
  broadcast_event(event_line("shutdown"));
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_)
      connection->socket.shutdown_both();
  }
  for (auto& handler : handlers_)
    if (handler.joinable()) handler.join();
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
}

void Daemon::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      if (stop_requested_) return;
    }
    auto accepted = listener_->accept_for(200);
    if (!accepted.has_value()) continue;  // timeout: re-check the stop flag
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connection->client = scheduler_->new_client();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
      handlers_.emplace_back(
          [this, connection] { handle_connection(connection); });
    }
  }
}

void Daemon::handle_connection(
    const std::shared_ptr<Connection>& connection) {
  LineReader reader(connection->socket.fd());
  std::string line;
  for (;;) {
    const auto status = reader.next(line);
    if (status == LineReader::Status::Oversized) {
      connection->send(error_line(
          "oversized request (limit " + std::to_string(kMaxLineBytes) +
          " bytes per line)"));
      continue;
    }
    if (status != LineReader::Status::Line) break;  // EOF or read error
    if (connection->dead.load(std::memory_order_relaxed)) break;
    handle_request(connection, line);
  }
  if (connection->watching.load(std::memory_order_relaxed))
    scheduler_->unsubscribe(connection->subscriber_token);
  scheduler_->client_gone(connection->client);
  connection->dead.store(true, std::memory_order_relaxed);
}

void Daemon::handle_request(const std::shared_ptr<Connection>& connection,
                            const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    // Malformed input gets a structured error, never a dead daemon.
    connection->send(error_line(e.what()));
    return;
  }

  try {
    switch (request.op) {
      case Op::Submit:
        handle_submit(connection, request);
        break;
      case Op::Status: {
        if (request.fingerprint.empty()) {
          const auto counts = scheduler_->counts();
          JsonObject fields;
          fields["queued"] =
              Json(static_cast<std::uint64_t>(counts.queued));
          fields["running"] =
              Json(static_cast<std::uint64_t>(counts.running));
          fields["done"] = Json(static_cast<std::uint64_t>(counts.done));
          fields["cached"] =
              Json(static_cast<std::uint64_t>(counts.cached));
          fields["failed"] =
              Json(static_cast<std::uint64_t>(counts.failed));
          fields["canceled"] =
              Json(static_cast<std::uint64_t>(counts.canceled));
          fields["retries"] =
              Json(static_cast<std::uint64_t>(counts.retries));
          fields["timeouts"] =
              Json(static_cast<std::uint64_t>(counts.timeouts));
          fields["draining"] = Json(counts.draining);
          connection->send(ok_line(Op::Status, std::move(fields)));
          break;
        }
        const auto status = scheduler_->status(request.fingerprint);
        if (!status.has_value()) {
          connection->send(error_line(
              "unknown fingerprint: " + request.fingerprint,
              to_string(Op::Status)));
          break;
        }
        connection->send(ok_line(Op::Status, job_fields(*status)));
        break;
      }
      case Op::Result:
        handle_result(connection, request);
        break;
      case Op::Watch:
        start_watch(connection);
        break;
      case Op::Stats: {
        const auto counts = scheduler_->counts();
        const auto& latency = scheduler_->latency();
        JsonObject fields;
        fields["workers"] = Json(options_.workers);
        fields["queued"] = Json(static_cast<std::uint64_t>(counts.queued));
        fields["running"] =
            Json(static_cast<std::uint64_t>(counts.running));
        fields["retries"] =
            Json(static_cast<std::uint64_t>(counts.retries));
        fields["timeouts"] =
            Json(static_cast<std::uint64_t>(counts.timeouts));
        fields["eta_s"] = Json(latency.eta_seconds(
            counts.queued + counts.running, options_.workers));
        fields["overall"] = Json(snapshot_fields(latency.overall()));
        JsonArray classes;
        for (const auto& entry : latency.snapshot()) {
          JsonObject cls;
          cls["class"] = Json(entry.scenario_class);
          for (const auto& [key, value] : snapshot_fields(entry.latency))
            cls[key] = value;
          classes.push_back(Json(std::move(cls)));
        }
        fields["classes"] = Json(std::move(classes));
        // The class map is bounded (LRU); surface the cap and how many
        // classes have been evicted so a capped `stats` view is visibly
        // capped rather than silently incomplete.
        fields["class_cap"] =
            Json(static_cast<std::uint64_t>(latency.class_cap()));
        fields["class_evictions"] =
            Json(static_cast<std::uint64_t>(latency.evictions()));
        connection->send(ok_line(Op::Stats, std::move(fields)));
        break;
      }
      case Op::Cancel: {
        if (scheduler_->cancel(request.fingerprint)) {
          JsonObject fields;
          fields["fingerprint"] = Json(request.fingerprint);
          connection->send(ok_line(Op::Cancel, std::move(fields)));
        } else {
          connection->send(error_line(
              "cannot cancel " + request.fingerprint +
                  " (only queued jobs are cancelable)",
              to_string(Op::Cancel)));
        }
        break;
      }
      case Op::Drain: {
        scheduler_->drain();
        broadcast_event(event_line("drained"));
        JsonObject fields;
        fields["drained"] = Json(true);
        connection->send(ok_line(Op::Drain, std::move(fields)));
        break;
      }
      case Op::Shutdown: {
        connection->send(ok_line(Op::Shutdown));
        request_shutdown();
        break;
      }
      case Op::Ping: {
        JsonObject fields;
        fields["protocol"] = Json(kProtocolVersion);
        fields["provider"] = Json(provider_->name());
        connection->send(ok_line(Op::Ping, std::move(fields)));
        break;
      }
    }
  } catch (const std::exception& e) {
    connection->send(error_line(e.what(), to_string(request.op)));
  }
}

void Daemon::handle_submit(const std::shared_ptr<Connection>& connection,
                           const Request& request) {
  std::vector<campaign::Scenario> scenarios;
  std::string campaign_fp;
  if (request.scenario.has_value()) {
    scenarios.push_back(*request.scenario);
  } else {
    // A whole campaign matrix, expanded server-side with the same axis
    // defaults hmpt_campaign applies.
    auto matrix = campaign::ScenarioMatrix::parse(request.campaign_text);
    if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
    if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
    scenarios = matrix.expand();
    campaign_fp = campaign::campaign_fingerprint(scenarios);
  }

  JobLimits limits;
  limits.deadline_s = request.deadline_s;
  limits.max_attempts = request.attempts;

  JsonArray jobs;
  for (const auto& scenario : scenarios) {
    // An admission rejection mid-campaign aborts the rest: the response
    // reports what was admitted so the client can back off and resubmit
    // the remainder (fingerprints make resubmission idempotent).
    bool admitted_new = false;
    const auto status = scheduler_->submit(connection->client, scenario,
                                           request.priority, limits,
                                           &admitted_new);
    // Durability point: the submit record is fsync'd before the ack. A
    // journal failure throws — the client gets an error, never an ack
    // the journal cannot back. (The job may still run; resubmitting is
    // idempotent via the fingerprint.) Only freshly enqueued jobs are
    // journaled: an attach is covered by the in-flight job's original
    // record and a cache hit needs no coverage — journaling either
    // would strand a submit record no terminal ever balances.
    if (journal_ != nullptr && admitted_new)
      journal_->record_submit(scenario, request.priority, limits);
    jobs.push_back(Json(job_fields(status)));
  }

  JsonObject fields;
  if (!campaign_fp.empty()) fields["campaign"] = Json(campaign_fp);
  fields["jobs"] = Json(std::move(jobs));
  connection->send(ok_line(Op::Submit, std::move(fields)));
}

void Daemon::handle_result(const std::shared_ptr<Connection>& connection,
                           const Request& request) {
  auto status = scheduler_->status(request.fingerprint);
  if (status.has_value() && !is_terminal(status->state)) {
    if (request.wait)
      status = scheduler_->wait(request.fingerprint);
    else {
      JsonObject fields;
      fields["state"] = Json(wire_state(status->state));
      connection->send(error_line("pending: " + request.fingerprint,
                                  to_string(Op::Result), std::move(fields)));
      return;
    }
  }
  if (!status.has_value()) {
    connection->send(error_line(
        "unknown fingerprint: " + request.fingerprint,
        to_string(Op::Result)));
    return;
  }
  if (status->state == JobState::Failed ||
      status->state == JobState::Canceled) {
    JsonObject fields;
    fields["state"] = Json(wire_state(status->state));
    connection->send(error_line(
        status->error.empty() ? wire_state(status->state) : status->error,
        to_string(Op::Result), std::move(fields)));
    return;
  }
  const auto outcome = scheduler_->outcome(request.fingerprint);
  if (!outcome.has_value()) {
    connection->send(error_line(
        "outcome missing from store for " + request.fingerprint,
        to_string(Op::Result)));
    return;
  }
  JsonObject fields = job_fields(*status);
  fields["outcome"] = tuner::outcome_to_json(*outcome);
  connection->send(ok_line(Op::Result, std::move(fields)));
}

void Daemon::start_watch(const std::shared_ptr<Connection>& connection) {
  if (connection->watching.exchange(true)) {
    connection->send(ok_line(Op::Watch));  // idempotent re-subscribe
    return;
  }
  // Acknowledge before subscribing so the client never sees an event
  // ahead of the response on this connection.
  connection->send(ok_line(Op::Watch));
  std::weak_ptr<Connection> weak = connection;
  connection->subscriber_token =
      scheduler_->subscribe([this, weak](const JobStatus& status) {
        const auto subscriber = weak.lock();
        if (!subscriber ||
            subscriber->dead.load(std::memory_order_relaxed))
          return;
        JsonObject extra;
        if (status.state == JobState::Done ||
            status.state == JobState::Cached) {
          if (const auto outcome = scheduler_->outcome(status.fingerprint))
            extra["speedup"] = Json(outcome->speedup);
        }
        if (!status.error.empty()) extra["error"] = Json(status.error);
        // A failed send marks the connection dead; its reader thread
        // unsubscribes. Never fatal to the daemon.
        subscriber->send(job_event_line(status.fingerprint, status.label,
                                        wire_state(status.state),
                                        status.seconds, std::move(extra)));
      });
}

void Daemon::broadcast_event(const std::string& line) {
  std::vector<std::shared_ptr<Connection>> watchers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_)
      if (connection->watching.load(std::memory_order_relaxed) &&
          !connection->dead.load(std::memory_order_relaxed))
        watchers.push_back(connection);
  }
  for (const auto& watcher : watchers) watcher->send(line);
}

}  // namespace hmpt::service
