#include "service/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "common/thread_name.h"
#include "core/outcome_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hmpt::service {

namespace {

/// The spelling of a scheduler state on the wire.
std::string wire_state(JobState state) { return to_string(state); }

JsonObject job_fields(const JobStatus& status) {
  JsonObject fields;
  fields["fingerprint"] = Json(status.fingerprint);
  if (!status.label.empty()) fields["label"] = Json(status.label);
  fields["state"] = Json(wire_state(status.state));
  if (!status.error.empty()) fields["error"] = Json(status.error);
  if (status.attempts > 0) fields["attempts"] = Json(status.attempts);
  return fields;
}

/// A latency digest on the wire: "count" always, quantiles only when at
/// least one sample backs them (obs::snapshot_to_json; "_s" marks
/// seconds). An empty distribution reports {"count":0} — n=0, no
/// fabricated zero percentiles.
JsonObject snapshot_fields(
    const ConcurrentQuantileTracker::Snapshot& snapshot) {
  return obs::snapshot_to_json(snapshot, "_s");
}

}  // namespace

bool Daemon::Connection::send(const std::string& line) {
  if (dead.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(write_mutex);
  if (!socket.send_all(line)) {
    // The peer went away (mid-watch disconnects land here): mark the
    // connection dead and let its reader thread tear it down.
    dead.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Daemon::Daemon(DaemonOptions options, ExecutionProvider* provider)
    : options_(std::move(options)) {
  if (provider == nullptr) {
    owned_provider_ =
        std::make_unique<SimulatorProvider>(options_.measure_jobs);
    provider = owned_provider_.get();
  }
  provider_ = provider;
  SchedulerOptions scheduler_options;
  scheduler_options.workers = options_.workers;
  scheduler_options.max_in_flight = options_.max_in_flight;
  scheduler_options.max_queue = options_.max_queue;
  scheduler_options.max_latency_classes = options_.latency_classes;
  scheduler_options.retry = options_.retry;
  scheduler_ = std::make_unique<Scheduler>(
      *provider_, campaign::OutcomeStore(options_.store_dir),
      scheduler_options);
}

Daemon::~Daemon() {
  request_shutdown();
  if (started_) wait_for(-1);
}

void Daemon::start() {
  HMPT_REQUIRE(!started_, "daemon already started");
  ignore_sigpipe();

  if (!options_.journal_path.empty()) {
    // Recover before opening the journal for appending: the previous
    // run's acked-but-unfinished jobs are re-admitted (finished ones are
    // store hits), then every completion — replayed or fresh — appends a
    // terminal record.
    obs::TraceSpan replay_span("daemon", "journal_replay");
    const auto replay = JobJournal::replay(options_.journal_path);
    journal_ = std::make_unique<JobJournal>(options_.journal_path);
    journal_token_ = scheduler_->subscribe([this](const JobStatus& status) {
      try {
        journal_->record_terminal(status.fingerprint, status.state);
      } catch (const std::exception&) {
        // Best-effort: a lost terminal record only costs a redundant
        // (store-hit) replay on the next restart — never fail the job.
      }
    });
    for (const auto& job : replay.pending) {
      scheduler_->submit_replay(job.scenario, job.priority, job.limits);
      ++replayed_jobs_;
    }
    replay_span.arg_number("replayed",
                           static_cast<std::uint64_t>(replayed_jobs_));
    obs::metrics()
        .counter("daemon.replayed")
        .add(static_cast<std::uint64_t>(replayed_jobs_));
  }

  listener_ = Listener::listen(options_.endpoint);
  bound_ = listener_->endpoint();
  scheduler_->start();
  started_ = true;
  accept_thread_ = std::thread([this] {
    set_current_thread_name("hmpt-accept");
    accept_loop();
  });
  if (!options_.metrics_path.empty())
    metrics_thread_ = std::thread([this] {
      set_current_thread_name("hmpt-metrics");
      metrics_loop();
    });
}

const Endpoint& Daemon::endpoint() const {
  return started_ ? bound_ : options_.endpoint;
}

void Daemon::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stop_requested_ = true;
  }
  lifecycle_.notify_all();
}

bool Daemon::wait_for(int timeout_ms) {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  const auto requested = [this] { return stop_requested_; };
  if (timeout_ms < 0) {
    lifecycle_.wait(lock, requested);
  } else if (!lifecycle_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                  requested)) {
    return false;
  }
  if (stopped_) return true;
  if (tearing_down_) {
    // Another waiter is tearing down; wait for it to finish.
    lifecycle_.wait(lock, [this] { return stopped_; });
    return true;
  }
  tearing_down_ = true;
  lock.unlock();
  teardown();
  lock.lock();
  stopped_ = true;
  lifecycle_.notify_all();
  return true;
}

void Daemon::teardown() {
  // Stop accepting, finish every admitted job, then disconnect. Order
  // matters: the scheduler drains before sockets die so watchers see
  // their last completions, then the shutdown event, then EOF.
  if (listener_.has_value()) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  scheduler_->shutdown();
  // One last snapshot after the drain so short-lived daemons (lifetime <
  // one interval) still leave a complete metrics file behind.
  if (!options_.metrics_path.empty()) write_metrics_snapshot();
  broadcast_event(event_line("shutdown"));
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_)
      connection->socket.shutdown_both();
  }
  for (auto& handler : handlers_)
    if (handler.joinable()) handler.join();
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
}

void Daemon::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      if (stop_requested_) return;
    }
    auto accepted = listener_->accept_for(200);
    if (!accepted.has_value()) continue;  // timeout: re-check the stop flag
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connection->client = scheduler_->new_client();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
      const std::uint64_t conn_id = ++next_conn_;
      handlers_.emplace_back([this, connection, conn_id] {
        set_current_thread_name("hmpt-conn-" + std::to_string(conn_id));
        handle_connection(connection);
      });
    }
  }
}

void Daemon::handle_connection(
    const std::shared_ptr<Connection>& connection) {
  LineReader reader(connection->socket.fd());
  std::string line;
  for (;;) {
    const auto status = reader.next(line);
    if (status == LineReader::Status::Oversized) {
      connection->send(error_line(
          "oversized request (limit " + std::to_string(kMaxLineBytes) +
          " bytes per line)"));
      continue;
    }
    if (status != LineReader::Status::Line) break;  // EOF or read error
    if (connection->dead.load(std::memory_order_relaxed)) break;
    handle_request(connection, line);
  }
  if (connection->watching.load(std::memory_order_relaxed))
    scheduler_->unsubscribe(connection->subscriber_token);
  scheduler_->client_gone(connection->client);
  connection->dead.store(true, std::memory_order_relaxed);
}

void Daemon::handle_request(const std::shared_ptr<Connection>& connection,
                            const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    // Malformed input gets a structured error, never a dead daemon.
    connection->send(error_line(e.what()));
    return;
  }

  try {
    switch (request.op) {
      case Op::Submit:
        handle_submit(connection, request);
        break;
      case Op::Status: {
        if (request.fingerprint.empty()) {
          const auto counts = scheduler_->counts();
          JsonObject fields;
          fields["queued"] =
              Json(static_cast<std::uint64_t>(counts.queued));
          fields["running"] =
              Json(static_cast<std::uint64_t>(counts.running));
          fields["done"] = Json(static_cast<std::uint64_t>(counts.done));
          fields["cached"] =
              Json(static_cast<std::uint64_t>(counts.cached));
          fields["failed"] =
              Json(static_cast<std::uint64_t>(counts.failed));
          fields["canceled"] =
              Json(static_cast<std::uint64_t>(counts.canceled));
          fields["retries"] =
              Json(static_cast<std::uint64_t>(counts.retries));
          fields["timeouts"] =
              Json(static_cast<std::uint64_t>(counts.timeouts));
          fields["draining"] = Json(counts.draining);
          connection->send(ok_line(Op::Status, std::move(fields)));
          break;
        }
        const auto status = scheduler_->status(request.fingerprint);
        if (!status.has_value()) {
          connection->send(error_line(
              "unknown fingerprint: " + request.fingerprint,
              to_string(Op::Status)));
          break;
        }
        connection->send(ok_line(Op::Status, job_fields(*status)));
        break;
      }
      case Op::Result:
        handle_result(connection, request);
        break;
      case Op::Watch:
        start_watch(connection);
        break;
      case Op::Stats: {
        connection->send(ok_line(Op::Stats, stats_fields()));
        break;
      }
      case Op::Cancel: {
        if (scheduler_->cancel(request.fingerprint)) {
          JsonObject fields;
          fields["fingerprint"] = Json(request.fingerprint);
          connection->send(ok_line(Op::Cancel, std::move(fields)));
        } else {
          connection->send(error_line(
              "cannot cancel " + request.fingerprint +
                  " (only queued jobs are cancelable)",
              to_string(Op::Cancel)));
        }
        break;
      }
      case Op::Drain: {
        scheduler_->drain();
        broadcast_event(event_line("drained"));
        JsonObject fields;
        fields["drained"] = Json(true);
        connection->send(ok_line(Op::Drain, std::move(fields)));
        break;
      }
      case Op::Shutdown: {
        connection->send(ok_line(Op::Shutdown));
        request_shutdown();
        break;
      }
      case Op::Ping: {
        JsonObject fields;
        fields["protocol"] = Json(kProtocolVersion);
        fields["provider"] = Json(provider_->name());
        connection->send(ok_line(Op::Ping, std::move(fields)));
        break;
      }
    }
  } catch (const std::exception& e) {
    connection->send(error_line(e.what(), to_string(request.op)));
  }
}

void Daemon::handle_submit(const std::shared_ptr<Connection>& connection,
                           const Request& request) {
  std::vector<campaign::Scenario> scenarios;
  std::string campaign_fp;
  if (request.scenario.has_value()) {
    scenarios.push_back(*request.scenario);
  } else {
    // A whole campaign matrix, expanded server-side with the same axis
    // defaults hmpt_campaign applies.
    auto matrix = campaign::ScenarioMatrix::parse(request.campaign_text);
    if (matrix.platforms.empty()) matrix.platforms = {"xeon-max"};
    if (matrix.strategies.empty()) matrix.strategies = {"exhaustive"};
    scenarios = matrix.expand();
    campaign_fp = campaign::campaign_fingerprint(scenarios);
  }

  JobLimits limits;
  limits.deadline_s = request.deadline_s;
  limits.max_attempts = request.attempts;

  JsonArray jobs;
  for (const auto& scenario : scenarios) {
    // An admission rejection mid-campaign aborts the rest: the response
    // reports what was admitted so the client can back off and resubmit
    // the remainder (fingerprints make resubmission idempotent).
    bool admitted_new = false;
    const auto status = scheduler_->submit(connection->client, scenario,
                                           request.priority, limits,
                                           &admitted_new);
    // Durability point: the submit record is fsync'd before the ack. A
    // journal failure throws — the client gets an error, never an ack
    // the journal cannot back. (The job may still run; resubmitting is
    // idempotent via the fingerprint.) Only freshly enqueued jobs are
    // journaled: an attach is covered by the in-flight job's original
    // record and a cache hit needs no coverage — journaling either
    // would strand a submit record no terminal ever balances.
    if (journal_ != nullptr && admitted_new)
      journal_->record_submit(scenario, request.priority, limits);
    jobs.push_back(Json(job_fields(status)));
  }

  JsonObject fields;
  if (!campaign_fp.empty()) fields["campaign"] = Json(campaign_fp);
  fields["jobs"] = Json(std::move(jobs));
  connection->send(ok_line(Op::Submit, std::move(fields)));
}

void Daemon::handle_result(const std::shared_ptr<Connection>& connection,
                           const Request& request) {
  auto status = scheduler_->status(request.fingerprint);
  if (status.has_value() && !is_terminal(status->state)) {
    if (request.wait)
      status = scheduler_->wait(request.fingerprint);
    else {
      JsonObject fields;
      fields["state"] = Json(wire_state(status->state));
      connection->send(error_line("pending: " + request.fingerprint,
                                  to_string(Op::Result), std::move(fields)));
      return;
    }
  }
  if (!status.has_value()) {
    connection->send(error_line(
        "unknown fingerprint: " + request.fingerprint,
        to_string(Op::Result)));
    return;
  }
  if (status->state == JobState::Failed ||
      status->state == JobState::Canceled) {
    JsonObject fields;
    fields["state"] = Json(wire_state(status->state));
    connection->send(error_line(
        status->error.empty() ? wire_state(status->state) : status->error,
        to_string(Op::Result), std::move(fields)));
    return;
  }
  const auto outcome = scheduler_->outcome(request.fingerprint);
  if (!outcome.has_value()) {
    connection->send(error_line(
        "outcome missing from store for " + request.fingerprint,
        to_string(Op::Result)));
    return;
  }
  JsonObject fields = job_fields(*status);
  fields["outcome"] = tuner::outcome_to_json(*outcome);
  connection->send(ok_line(Op::Result, std::move(fields)));
}

void Daemon::start_watch(const std::shared_ptr<Connection>& connection) {
  if (connection->watching.exchange(true)) {
    connection->send(ok_line(Op::Watch));  // idempotent re-subscribe
    return;
  }
  // Acknowledge before subscribing so the client never sees an event
  // ahead of the response on this connection.
  connection->send(ok_line(Op::Watch));
  std::weak_ptr<Connection> weak = connection;
  connection->subscriber_token =
      scheduler_->subscribe([this, weak](const JobStatus& status) {
        const auto subscriber = weak.lock();
        if (!subscriber ||
            subscriber->dead.load(std::memory_order_relaxed))
          return;
        JsonObject extra;
        if (status.state == JobState::Done ||
            status.state == JobState::Cached) {
          if (const auto outcome = scheduler_->outcome(status.fingerprint))
            extra["speedup"] = Json(outcome->speedup);
        }
        if (!status.error.empty()) extra["error"] = Json(status.error);
        // A failed send marks the connection dead; its reader thread
        // unsubscribes. Never fatal to the daemon.
        subscriber->send(job_event_line(status.fingerprint, status.label,
                                        wire_state(status.state),
                                        status.seconds, std::move(extra)));
      });
}

JsonObject Daemon::stats_fields() const {
  const auto counts = scheduler_->counts();
  const auto& latency = scheduler_->latency();
  JsonObject fields;
  fields["workers"] = Json(options_.workers);
  fields["queued"] = Json(static_cast<std::uint64_t>(counts.queued));
  fields["running"] = Json(static_cast<std::uint64_t>(counts.running));
  fields["retries"] = Json(static_cast<std::uint64_t>(counts.retries));
  fields["timeouts"] = Json(static_cast<std::uint64_t>(counts.timeouts));
  fields["eta_s"] = Json(latency.eta_seconds(
      counts.queued + counts.running, options_.workers));

  // Worker utilization: provider wall time across the lanes against the
  // lane-seconds available since start().
  JsonObject utilization;
  utilization["busy_s"] = Json(counts.busy_seconds);
  utilization["uptime_s"] = Json(counts.uptime_seconds);
  const double capacity =
      counts.uptime_seconds * static_cast<double>(options_.workers);
  utilization["busy_fraction"] =
      Json(capacity > 0.0
               ? std::min(counts.busy_seconds / capacity, 1.0)
               : 0.0);
  fields["utilization"] = Json(std::move(utilization));

  // Queue depth over time: the distribution of depths observed at every
  // enqueue and dispatch (obs histogram), not just the instant value.
  fields["queue_depth"] = Json(obs::snapshot_to_json(
      obs::metrics().histogram("scheduler.queue_depth").snapshot()));

  // Cache effectiveness: scheduler-level store hits (submits answered
  // without execution) and the simulator timing cache's hit ratio.
  JsonObject cache;
  cache["store_hits"] = Json(static_cast<std::uint64_t>(counts.cached));
  cache["executed"] = Json(static_cast<std::uint64_t>(counts.done));
  const std::uint64_t timer_hits =
      obs::metrics().counter("timer.hits").value();
  const std::uint64_t timer_misses =
      obs::metrics().counter("timer.misses").value();
  cache["timer_hits"] = Json(timer_hits);
  cache["timer_misses"] = Json(timer_misses);
  if (timer_hits + timer_misses > 0)
    cache["timer_hit_ratio"] =
        Json(static_cast<double>(timer_hits) /
             static_cast<double>(timer_hits + timer_misses));
  fields["cache"] = Json(std::move(cache));

  fields["overall"] = Json(snapshot_fields(latency.overall()));
  JsonArray classes;
  for (const auto& entry : latency.snapshot()) {
    JsonObject cls;
    cls["class"] = Json(entry.scenario_class);
    for (const auto& [key, value] : snapshot_fields(entry.latency))
      cls[key] = value;
    cls["attempts"] = Json(entry.attempts);
    cls["retries"] = Json(entry.retries);
    cls["timeouts"] = Json(entry.timeouts);
    classes.push_back(Json(std::move(cls)));
  }
  fields["classes"] = Json(std::move(classes));
  // The class map is bounded (LRU); surface the cap and how many
  // classes have been evicted so a capped `stats` view is visibly
  // capped rather than silently incomplete.
  fields["class_cap"] =
      Json(static_cast<std::uint64_t>(latency.class_cap()));
  fields["class_evictions"] =
      Json(static_cast<std::uint64_t>(latency.evictions()));
  // The whole registry last: every counter/gauge/histogram any subsystem
  // recorded this process, name-sorted.
  fields["metrics"] = obs::metrics().snapshot();
  return fields;
}

void Daemon::write_metrics_snapshot() const {
  try {
    const std::string tmp = options_.metrics_path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os.good()) return;
      os << Json(stats_fields()).dump() << "\n";
      os.flush();
      if (!os.good()) return;
    }
    std::rename(tmp.c_str(), options_.metrics_path.c_str());
  } catch (const std::exception&) {
    // Best-effort by contract: a full disk or a bad path costs the
    // snapshot, never a job or the daemon.
  }
}

void Daemon::metrics_loop() {
  const auto interval = std::chrono::milliseconds(static_cast<long>(
      std::max(options_.metrics_interval_s, 0.05) * 1000.0));
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  for (;;) {
    const bool stopping = lifecycle_.wait_for(
        lock, interval, [this] { return stop_requested_; });
    lock.unlock();
    write_metrics_snapshot();
    if (stopping) return;
    lock.lock();
  }
}

void Daemon::broadcast_event(const std::string& line) {
  std::vector<std::shared_ptr<Connection>> watchers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_)
      if (connection->watching.load(std::memory_order_relaxed) &&
          !connection->dead.load(std::memory_order_relaxed))
        watchers.push_back(connection);
  }
  for (const auto& watcher : watchers) watcher->send(line);
}

}  // namespace hmpt::service
