#include "workloads/app_models.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/units.h"
#include "workloads/kwave.h"

namespace hmpt::workloads {

namespace {

/// Synthetic application: groups + a pre-built trace.
class SyntheticAppModel final : public Workload {
 public:
  SyntheticAppModel(std::string name, std::vector<GroupInfo> groups,
                    sim::PhaseTrace trace)
      : name_(std::move(name)),
        groups_(std::move(groups)),
        trace_(std::move(trace)) {}

  std::string name() const override { return name_; }
  std::vector<GroupInfo> groups() const override { return groups_; }
  sim::PhaseTrace trace() const override { return trace_; }

 private:
  std::string name_;
  std::vector<GroupInfo> groups_;
  sim::PhaseTrace trace_;
};

/// Execution context of the paper's runs: the whole dual-socket machine.
sim::ExecutionContext paper_context(const sim::MachineSimulator& sim) {
  return sim.full_machine();
}

}  // namespace

WorkloadPtr make_synthetic_app(std::string name, double total_bytes,
                               std::vector<GroupSpec> groups,
                               std::vector<PhaseSpec> phases, double runtime,
                               const sim::MachineSimulator& sim,
                               const sim::ExecutionContext& ctx) {
  HMPT_REQUIRE(total_bytes > 0, "app needs a positive footprint");
  HMPT_REQUIRE(runtime > 0, "app needs a positive runtime");
  double frac_sum = 0.0;
  for (const auto& g : groups) frac_sum += g.footprint_fraction;
  HMPT_REQUIRE(std::fabs(frac_sum - 1.0) < 1e-6,
               "group footprint fractions must sum to 1");

  std::vector<GroupInfo> infos;
  infos.reserve(groups.size());
  for (const auto& g : groups)
    infos.push_back({g.label, g.footprint_fraction * total_bytes});

  const auto& model = sim.pool_model();
  const double bw_ddr =
      model.stream_bandwidth(topo::PoolKind::DDR, ctx.threads, ctx.tiles);
  const double compute_rate = model.compute_rate(ctx.threads, true);

  sim::PhaseTrace trace;
  for (const auto& ps : phases) {
    sim::KernelPhase phase;
    phase.name = ps.name;
    phase.vectorized = true;
    phase.flops = ps.compute_time * runtime * compute_rate;
    for (const auto& ss : ps.streams) {
      HMPT_REQUIRE(ss.group >= 0 &&
                       ss.group < static_cast<int>(groups.size()),
                   "stream group out of range");
      const double window =
          infos[static_cast<std::size_t>(ss.group)].bytes;
      if (ss.seq_time > 0.0) {
        sim::StreamAccess s;
        s.group = ss.group;
        // Modelled as reads: with non-temporal stores reads and writes cost
        // the same pool bandwidth, and keeping synthetic streams read-only
        // avoids re-triggering the cross-pool write coupling the closed-form
        // calibration deliberately excludes (STREAM/k-Wave exercise it).
        s.bytes_read = ss.seq_time * runtime * bw_ddr;
        s.pattern = sim::AccessPattern::Sequential;
        phase.streams.push_back(s);
      }
      if (ss.chase_time > 0.0) {
        const double eff_lat = sim.cache().effective_latency(
            window, model.idle_latency(topo::PoolKind::DDR));
        const double chase_bw = model.chase_bandwidth(
            topo::PoolKind::DDR, ctx.threads, eff_lat);
        sim::StreamAccess s;
        s.group = ss.group;
        s.bytes_read = ss.chase_time * runtime * chase_bw;
        s.pattern = sim::AccessPattern::PointerChase;
        s.working_set_bytes = window;
        phase.streams.push_back(s);
      }
    }
    trace.phases.push_back(std::move(phase));
  }
  return std::make_shared<SyntheticAppModel>(std::move(name),
                                             std::move(infos),
                                             std::move(trace));
}

namespace {

/// Additive layout shared by BT/LU/SP/UA/IS: one phase per group (its
/// solo traffic) plus one placement-independent compute phase. With this
/// structure runtimes compose additively over groups, so the calibration
/// below can be solved per group in closed form against Table II.
AppInfo make_additive_app(const sim::MachineSimulator& sim, std::string name,
                          std::string variant, double memory_bytes,
                          int filtered_allocations, PaperResult paper,
                          std::vector<GroupSpec> groups,
                          std::vector<double> seq_time,
                          std::vector<double> chase_time, double runtime) {
  HMPT_REQUIRE(groups.size() == seq_time.size() &&
                   groups.size() == chase_time.size(),
               "per-group spec arity mismatch");
  double budget = 0.0;
  std::vector<PhaseSpec> phases;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    PhaseSpec ps;
    ps.name = groups[i].label + "::sweep";
    ps.streams.push_back({static_cast<int>(i), seq_time[i], chase_time[i]});
    budget += seq_time[i] + chase_time[i];
    if (seq_time[i] + chase_time[i] > 0.0) phases.push_back(std::move(ps));
  }
  HMPT_REQUIRE(budget < 1.0, "memory time fractions exceed the runtime");
  PhaseSpec compute;
  compute.name = "compute";
  compute.compute_time = 1.0 - budget;
  phases.push_back(std::move(compute));

  AppInfo info;
  info.name = std::move(name);
  info.variant = std::move(variant);
  info.memory_bytes = memory_bytes;
  info.filtered_allocations = filtered_allocations;
  info.paper = paper;
  info.context = paper_context(sim);
  info.workload =
      make_synthetic_app(info.name, memory_bytes, std::move(groups),
                         std::move(phases), runtime, sim, info.context);
  return info;
}

}  // namespace

// ---------------------------------------------------------------------- MG
// Calibration (see DESIGN.md §5). Three allocations of similar size; u and
// r are co-streamed in the main V-cycle phase (shared-phase concurrency is
// what makes s({0})+s({1})-1 < s({0,1}), the superlinearity visible in
// Fig. 7a), with small solo phases and a compute floor. Solved for
// s({0})=1.66, s({1})=1.60, s({0,1})=2.27 (= max, at 69.6 % usage),
// s(all)=2.26 with rho = bw_HBM/bw_DDR = 3.253, chase penalty 1.195.
AppInfo make_mg_model(const sim::MachineSimulator& sim) {
  AppInfo info;
  info.name = "NPB: Multi-Grid";
  info.variant = "mg.D";
  info.memory_bytes = 26.46 * GB;
  info.filtered_allocations = 3;
  info.paper = {2.27, 2.26, 0.696};
  info.context = paper_context(sim);

  std::vector<GroupSpec> groups = {
      {"mg::u", 0.348}, {"mg::r", 0.348}, {"mg::v", 0.304}};
  std::vector<PhaseSpec> phases;
  // Shared V-cycle phase: u & r streamed concurrently; v is the rarely
  // touched right-hand side (latency-bound reads, slightly DDR-preferring,
  // which is why adding it to HBM drops 2.27 -> 2.26).
  phases.push_back({"mg::vcycle",
                    {{0, 0.35464, 0.0},
                     {1, 0.34390, 0.0},
                     {2, 0.0, 0.00163}},
                    0.0});
  phases.push_back({"mg::interp", {{0, 0.062, 0.0}}, 0.0});
  phases.push_back({"mg::rprj3", {{1, 0.0449, 0.0}}, 0.0});
  phases.push_back({"mg::compute", {}, 0.19293});
  info.workload = make_synthetic_app(info.name, info.memory_bytes,
                                     std::move(groups), std::move(phases),
                                     40.0, sim, info.context);
  return info;
}

// ---------------------------------------------------------------------- BT
// Block tri-diagonal solver: compute-dominated (c = 0.772), so speedups are
// shallow. Three moderately hot groups carry the gain; group 7 has a small
// pointer-chase component making all-HBM (1.14) worse than max (1.15).
AppInfo make_bt_model(const sim::MachineSimulator& sim) {
  return make_additive_app(
      sim, "NPB: Block Tri-diag.", "bt.D", 10.68 * GB, 9,
      {1.15, 1.14, 0.550},
      {{"bt::u", 0.25},
       {"bt::rhs", 0.18},
       {"bt::lhs", 0.12},
       {"bt::fjac", 0.11},
       {"bt::njac", 0.10},
       {"bt::qs", 0.09},
       {"bt::square", 0.08},
       {"bt::rest", 0.07}},
      {0.088, 0.056, 0.036, 0.0021, 0.0021, 0.0021, 0.0021, 0.0},
      {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0389}, 60.0);
}

// ---------------------------------------------------------------------- LU
// Lower-upper Gauss-Seidel: one allocation (~25 % of the footprint) carries
// most of the traffic — the paper highlights that most of the speedup comes
// from moving it alone.
AppInfo make_lu_model(const sim::MachineSimulator& sim) {
  return make_additive_app(
      sim, "NPB: Lower-Upper GS.", "lu.D", 8.65 * GB, 7,
      {1.27, 1.27, 0.588},
      {{"lu::u", 0.25},
       {"lu::rsd", 0.17},
       {"lu::frct", 0.168},
       {"lu::flux", 0.12},
       {"lu::a", 0.11},
       {"lu::b", 0.10},
       {"lu::rest", 0.082}},
      {0.20, 0.047, 0.042, 0.0045, 0.0045, 0.0045, 0.0046},
      {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, 60.0);
}

// ---------------------------------------------------------------------- SP
// Scalar penta-diagonal solver: four hot streamed groups; groups 6-7 are
// latency-bound line-solve metadata that actively prefer DDR — placing
// them in HBM costs 1.79 -> 1.70, the largest such gap in Table II.
AppInfo make_sp_model(const sim::MachineSimulator& sim) {
  return make_additive_app(
      sim, "NPB: Scalar Penta-diag.", "sp.D", 11.19 * GB, 10,
      {1.79, 1.70, 0.688},
      {{"sp::u", 0.20},
       {"sp::rhs", 0.17},
       {"sp::lhs", 0.16},
       {"sp::rho_i", 0.158},
       {"sp::us", 0.10},
       {"sp::vs", 0.09},
       {"sp::ws", 0.07},
       {"sp::rest", 0.052}},
      {0.17, 0.16, 0.14, 0.135, 0.02, 0.0124, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.10, 0.051}, 60.0);
}

// ---------------------------------------------------------------------- UA
// Unstructured adaptive mesh: 56 small allocations folded into 8 groups
// (top-7 + rest). Low arithmetic intensity but half the runtime is pointer
// arithmetic/compute, capping the gain at 1.49.
AppInfo make_ua_model(const sim::MachineSimulator& sim) {
  return make_additive_app(
      sim, "NPB: Unst. Adapt. Mesh", "ua.D", 7.25 * GB, 56,
      {1.49, 1.49, 0.688},
      {{"ua::mesh", 0.22},
       {"ua::sol", 0.18},
       {"ua::res", 0.15},
       {"ua::adj", 0.138},
       {"ua::g4", 0.11},
       {"ua::g5", 0.09},
       {"ua::g6", 0.07},
       {"ua::rest", 0.042}},
      {0.17, 0.13, 0.10, 0.048, 0.007, 0.007, 0.007, 0.006},
      {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, 60.0);
}

// ---------------------------------------------------------------------- IS
// Integer sort with blocking disabled (is.C x4): despite the nominally
// random access, the enlarged unblocked working set streams buckets at
// near-sequential rates (the paper notes the surprisingly high 2.21x);
// the small rank array keeps a chase component that prefers DDR.
AppInfo make_is_model(const sim::MachineSimulator& sim) {
  return make_additive_app(
      sim, "NPB: Integer Sort (NB)", "is.C*", 20.0 * GB, 4,
      {2.21, 2.18, 0.600},
      {{"is::key_array", 0.40},
       {"is::key_buff1", 0.25},
       {"is::key_buff2", 0.20},
       {"is::rank", 0.15}},
      {0.45, 0.031, 0.31, 0.0},
      {0.0, 0.0, 0.0, 0.0318}, 60.0);
}

// ------------------------------------------------------------------ k-Wave
// Pseudospectral ultrasound solver at 512^3. Structure follows the real
// code: pack -> forward FFT -> k-space scaling/inverse FFTs -> unpack per
// field, so the complex FFT temporaries only pay off fully once the real
// vector fields they exchange data with also move (pack/unpack phases stay
// DDR-bound otherwise) — that is what pushes the 90 %-speedup usage to
// 76.8 % even though the FFT arrays dominate traffic. FFT passes carry a
// compute floor of beta = 0.885 of their DDR memory time (strided
// butterflies run far below stream bandwidth), calibrating the overall
// speedup to 1.32.
AppInfo make_kwave_model(const sim::MachineSimulator& sim) {
  AppInfo info;
  info.name = "k-Wave Solver 512^3 Grid";
  info.variant = "kwave-512";
  info.filtered_allocations = 34;
  info.paper = {1.32, 1.32, 0.768};
  info.context = paper_context(sim);

  const std::size_t n = 512;
  const double cells = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double R = cells * sizeof(double);   // one real field
  const double C = 2.0 * R;                  // one complex field
  auto groups_info = kwave_groups(n);
  info.memory_bytes = 0.0;
  for (const auto& g : groups_info) info.memory_bytes += g.bytes;

  std::vector<GroupSpec> groups;
  for (const auto& g : groups_info)
    groups.push_back({g.label, g.bytes / info.memory_bytes});

  constexpr int kP = 0, kRho = 1, kU = 2, kTmp = 3;
  constexpr double kBeta = 0.90;  // FFT compute floor vs DDR memory time

  const auto& model = sim.pool_model();
  const auto ctx = info.context;
  const double bw_ddr =
      model.stream_bandwidth(topo::PoolKind::DDR, ctx.threads, ctx.tiles);
  const double compute_rate = model.compute_rate(ctx.threads, true);

  auto seq = [&](int group, double read_bytes, double write_bytes) {
    sim::StreamAccess s;
    s.group = group;
    s.bytes_read = read_bytes;
    s.bytes_written = write_bytes;
    s.pattern = sim::AccessPattern::Sequential;
    return s;
  };
  auto fft_phase = [&](const std::string& name, double bytes) {
    sim::KernelPhase phase;
    phase.name = name;
    phase.streams.push_back(seq(kTmp, bytes / 2.0, bytes / 2.0));
    phase.flops = kBeta * (bytes / bw_ddr) * compute_rate;
    phase.vectorized = true;
    return phase;
  };

  sim::PhaseTrace trace;
  const int steps = 10;
  for (int step = 0; step < steps; ++step) {
    sim::KernelPhase pack_p;
    pack_p.name = "kwave::pack_p";
    pack_p.streams.push_back(seq(kP, R, 0.0));
    pack_p.streams.push_back(seq(kTmp, 0.0, C));
    trace.phases.push_back(pack_p);

    trace.phases.push_back(fft_phase("kwave::fft_p", 6.0 * C));
    trace.phases.push_back(fft_phase("kwave::grad_ffts", 20.0 * C));

    // The gradient unpack touches every velocity component twice (update
    // read + write) plus ghost/staggered-grid copies — the vector field is
    // the heavy real-space partner of the FFT temporaries, which is what
    // pushes the 90 %-speedup footprint up to fft_tmp + u_vec.
    sim::KernelPhase unpack_grad;
    unpack_grad.name = "kwave::unpack_grad";
    unpack_grad.streams.push_back(seq(kTmp, 3.0 * C, 0.0));
    unpack_grad.streams.push_back(seq(kU, 6.0 * R, 3.0 * R));
    trace.phases.push_back(unpack_grad);

    sim::KernelPhase pack_u;
    pack_u.name = "kwave::pack_u";
    pack_u.streams.push_back(seq(kU, 4.5 * R, 0.0));
    pack_u.streams.push_back(seq(kTmp, 0.0, 3.0 * C));
    trace.phases.push_back(pack_u);

    trace.phases.push_back(fft_phase("kwave::div_ffts", 27.0 * C));

    sim::KernelPhase unpack_rho;
    unpack_rho.name = "kwave::unpack_rho";
    unpack_rho.streams.push_back(seq(kTmp, C, 0.0));
    unpack_rho.streams.push_back(seq(kRho, 0.75 * R, 0.75 * R));
    trace.phases.push_back(unpack_rho);

    sim::KernelPhase eos;
    eos.name = "kwave::eos";
    eos.streams.push_back(seq(kRho, 0.75 * R, 0.0));
    eos.streams.push_back(seq(kP, 0.0, 0.75 * R));
    trace.phases.push_back(eos);
  }

  info.workload = std::make_shared<SyntheticAppModel>(
      info.name, std::move(groups_info), std::move(trace));
  (void)groups;
  return info;
}

std::vector<AppInfo> paper_benchmark_suite(const sim::MachineSimulator& sim) {
  std::vector<AppInfo> suite;
  suite.push_back(make_mg_model(sim));
  suite.push_back(make_bt_model(sim));
  suite.push_back(make_lu_model(sim));
  suite.push_back(make_sp_model(sim));
  suite.push_back(make_ua_model(sim));
  suite.push_back(make_is_model(sim));
  suite.push_back(make_kwave_model(sim));
  return suite;
}

double arithmetic_intensity(const Workload& workload) {
  const auto trace = workload.trace();
  const double bytes = trace.total_bytes();
  const double flops = trace.total_flops();
  HMPT_REQUIRE(bytes > 0, "workload moves no bytes");
  return flops / bytes;
}

}  // namespace hmpt::workloads
