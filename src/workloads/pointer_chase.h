// pointer_chase.h — dependent-load latency benchmark (Figs. 3-4).
//
// A random cyclic permutation is chased one element at a time, exposing raw
// load-to-use latency: one outstanding access per thread, so the ~20 %
// HBM latency penalty is fully visible at any core count (Sec. I-A).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

/// Phase builder: chase `accesses` dependent loads over a `window_bytes`
/// working set in group 0.
sim::KernelPhase make_chase_phase(double window_bytes, double accesses);

/// Pointer chase as a tunable single-group workload.
class PointerChaseWorkload final : public Workload {
 public:
  PointerChaseWorkload(double window_bytes, double accesses);
  std::string name() const override { return "PointerChase"; }
  std::vector<GroupInfo> groups() const override;
  sim::PhaseTrace trace() const override;

 private:
  double window_bytes_;
  double accesses_;
};

/// Executable mini chase: builds a Sattolo cycle over `elements` u64 slots
/// allocated through the shim, chases it `steps` times, and returns the
/// final cursor (forcing the dependency chain) plus the visit count check.
struct MiniChaseResult {
  std::uint64_t final_index = 0;
  bool full_cycle = false;  ///< permutation visited every slot
  sim::PhaseTrace trace;
};
MiniChaseResult run_mini_chase(shim::ShimAllocator& shim,
                               std::size_t elements, std::size_t steps,
                               std::uint64_t seed = 1,
                               sample::IbsSampler* sampler = nullptr);

}  // namespace hmpt::workloads
