#include "workloads/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace hmpt::workloads {

namespace {

const char* pattern_name(sim::AccessPattern pattern) {
  switch (pattern) {
    case sim::AccessPattern::Sequential:
      return "sequential";
    case sim::AccessPattern::Random:
      return "random";
    case sim::AccessPattern::PointerChase:
      return "chase";
  }
  return "?";
}

sim::AccessPattern pattern_from(const std::string& name, int line_no) {
  if (name == "sequential") return sim::AccessPattern::Sequential;
  if (name == "random") return sim::AccessPattern::Random;
  if (name == "chase") return sim::AccessPattern::PointerChase;
  raise("unknown access pattern '" + name + "' (line " +
        std::to_string(line_no) + ")");
}

/// Labels may contain spaces in principle; the format forbids them, so
/// replace on write and reject on read.
std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out)
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  return out.empty() ? "_" : out;
}

}  // namespace

void write_workload(std::ostream& os, const Workload& workload) {
  // 17 significant digits: doubles survive the text round trip exactly.
  const auto old_precision = os.precision(17);
  os << "workload " << sanitize_label(workload.name()) << '\n';
  const auto groups = workload.groups();
  for (std::size_t g = 0; g < groups.size(); ++g)
    os << "group " << g << ' ' << sanitize_label(groups[g].label) << ' '
       << groups[g].bytes << '\n';
  for (const auto& phase : workload.trace().phases) {
    os << "phase " << sanitize_label(phase.name) << ' ' << phase.flops
       << ' ' << (phase.vectorized ? 1 : 0) << '\n';
    for (const auto& s : phase.streams)
      os << "stream " << s.group << ' ' << s.bytes_read << ' '
         << s.bytes_written << ' ' << pattern_name(s.pattern) << ' '
         << (s.nontemporal_writes ? 1 : 0) << ' ' << s.working_set_bytes
         << '\n';
  }
  os.precision(old_precision);
}

std::string serialize_workload(const Workload& workload) {
  std::ostringstream os;
  write_workload(os, workload);
  return os.str();
}

RecordedWorkload parse_workload(std::istream& is) {
  std::string name = "recorded";
  std::vector<GroupInfo> groups;
  sim::PhaseTrace trace;
  bool have_phase = false;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    const std::string where = " (line " + std::to_string(line_no) + ")";

    if (directive == "workload") {
      HMPT_REQUIRE(static_cast<bool>(ls >> name),
                   "workload needs a name" + where);
    } else if (directive == "group") {
      std::size_t id;
      std::string label;
      double bytes;
      HMPT_REQUIRE(static_cast<bool>(ls >> id >> label >> bytes),
                   "group needs <id> <label> <bytes>" + where);
      HMPT_REQUIRE(id == groups.size(),
                   "group ids must be dense and in order" + where);
      HMPT_REQUIRE(bytes >= 0.0, "negative group bytes" + where);
      groups.push_back({label, bytes});
    } else if (directive == "phase") {
      sim::KernelPhase phase;
      int vectorized;
      HMPT_REQUIRE(static_cast<bool>(ls >> phase.name >> phase.flops >>
                                     vectorized),
                   "phase needs <name> <flops> <vectorized>" + where);
      phase.vectorized = vectorized != 0;
      trace.phases.push_back(std::move(phase));
      have_phase = true;
    } else if (directive == "stream") {
      HMPT_REQUIRE(have_phase, "stream before any phase" + where);
      sim::StreamAccess s;
      std::string pattern;
      int nt;
      HMPT_REQUIRE(static_cast<bool>(ls >> s.group >> s.bytes_read >>
                                     s.bytes_written >> pattern >> nt >>
                                     s.working_set_bytes),
                   "stream needs 6 fields" + where);
      HMPT_REQUIRE(s.group >= 0 &&
                       s.group < static_cast<int>(groups.size()),
                   "stream group out of range" + where);
      s.pattern = pattern_from(pattern, line_no);
      s.nontemporal_writes = nt != 0;
      trace.phases.back().streams.push_back(s);
    } else {
      raise("unknown profile directive '" + directive + "'" + where);
    }
  }
  HMPT_REQUIRE(!groups.empty(), "profile declares no groups");
  return RecordedWorkload(name, std::move(groups), std::move(trace));
}

RecordedWorkload parse_workload(const std::string& text) {
  std::istringstream is(text);
  return parse_workload(is);
}

void save_workload(const std::string& path, const Workload& workload) {
  std::ofstream os(path);
  HMPT_REQUIRE(os.good(), "cannot open profile for writing: " + path);
  write_workload(os, workload);
}

RecordedWorkload load_workload(const std::string& path) {
  std::ifstream is(path);
  HMPT_REQUIRE(is.good(), "cannot open profile: " + path);
  return parse_workload(is);
}

}  // namespace hmpt::workloads
