#include "workloads/stream.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::workloads {

const char* to_string(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::Copy:
      return "Copy";
    case StreamKernel::Scale:
      return "Scale";
    case StreamKernel::Add:
      return "Add";
    case StreamKernel::Triad:
      return "Triad";
  }
  return "?";
}

int stream_arity(StreamKernel kernel) {
  return (kernel == StreamKernel::Add || kernel == StreamKernel::Triad) ? 3
                                                                        : 2;
}

double stream_flops_per_elem(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::Copy:
      return 0.0;
    case StreamKernel::Scale:
    case StreamKernel::Add:
      return 1.0;
    case StreamKernel::Triad:
      return 2.0;
  }
  return 0.0;
}

sim::KernelPhase make_stream_phase(StreamKernel kernel, double array_bytes) {
  HMPT_REQUIRE(array_bytes > 0, "array bytes must be positive");
  sim::KernelPhase phase;
  phase.name = to_string(kernel);
  phase.vectorized = true;
  phase.flops =
      stream_flops_per_elem(kernel) * array_bytes / sizeof(double);

  auto read = [&](int group) {
    sim::StreamAccess s;
    s.group = group;
    s.bytes_read = array_bytes;
    s.pattern = sim::AccessPattern::Sequential;
    phase.streams.push_back(s);
  };
  auto write = [&](int group) {
    sim::StreamAccess s;
    s.group = group;
    s.bytes_written = array_bytes;
    s.pattern = sim::AccessPattern::Sequential;
    s.nontemporal_writes = true;  // STREAM convention: no RFO traffic
    phase.streams.push_back(s);
  };

  switch (kernel) {
    case StreamKernel::Copy:   // c = a
    case StreamKernel::Scale:  // c = q*a
      read(0);
      write(2);
      break;
    case StreamKernel::Add:    // c = a + b
    case StreamKernel::Triad:  // c = a + q*b
      read(0);
      read(1);
      write(2);
      break;
  }
  return phase;
}

StreamWorkload::StreamWorkload(double array_bytes, int iterations,
                               std::vector<StreamKernel> kernels)
    : array_bytes_(array_bytes),
      iterations_(iterations),
      kernels_(std::move(kernels)) {
  HMPT_REQUIRE(array_bytes_ > 0, "array bytes must be positive");
  HMPT_REQUIRE(iterations_ >= 1, "iterations must be >= 1");
  HMPT_REQUIRE(!kernels_.empty(), "need at least one kernel");
}

std::vector<GroupInfo> StreamWorkload::groups() const {
  return {{"stream::a", array_bytes_},
          {"stream::b", array_bytes_},
          {"stream::c", array_bytes_}};
}

sim::PhaseTrace StreamWorkload::trace() const {
  sim::PhaseTrace trace;
  for (int it = 0; it < iterations_; ++it)
    for (const auto kernel : kernels_)
      trace.phases.push_back(make_stream_phase(kernel, array_bytes_));
  return trace;
}

MiniStreamResult run_mini_stream(shim::ShimAllocator& shim,
                                 std::size_t elements, int iterations,
                                 sample::IbsSampler* sampler) {
  HMPT_REQUIRE(elements >= 2, "mini STREAM needs >= 2 elements");
  HMPT_REQUIRE(iterations >= 1, "mini STREAM needs >= 1 iteration");
  constexpr double kScalar = 3.0;

  TrackedArray<double> a(shim, "stream::a", elements);
  TrackedArray<double> b(shim, "stream::b", elements);
  TrackedArray<double> c(shim, "stream::c", elements);

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    a.attach_sampler(sampler, &map);
    b.attach_sampler(sampler, &map);
    c.attach_sampler(sampler, &map);
  }

  for (std::size_t i = 0; i < elements; ++i) {
    a.store(i, 1.0);
    b.store(i, 2.0);
    c.store(i, 0.0);
  }

  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < elements; ++i) c.store(i, a.load(i));
    for (std::size_t i = 0; i < elements; ++i)
      b.store(i, kScalar * c.load(i));
    for (std::size_t i = 0; i < elements; ++i)
      c.store(i, a.load(i) + b.load(i));
    for (std::size_t i = 0; i < elements; ++i)
      a.store(i, b.load(i) + kScalar * c.load(i));
  }

  // Reference recurrence of the official STREAM validation.
  double ra = 1.0, rb = 2.0, rc = 0.0;
  for (int it = 0; it < iterations; ++it) {
    rc = ra;
    rb = kScalar * rc;
    rc = ra + rb;
    ra = rb + kScalar * rc;
  }
  double residual = 0.0;
  for (std::size_t i = 0; i < elements; i += std::max<std::size_t>(
                                            1, elements / 64)) {
    residual = std::max(residual, std::fabs(a.load(i) - ra));
    residual = std::max(residual, std::fabs(b.load(i) - rb));
    residual = std::max(residual, std::fabs(c.load(i) - rc));
  }

  MiniStreamResult result;
  result.max_residual = residual;
  const double bytes = static_cast<double>(elements * sizeof(double));
  for (int it = 0; it < iterations; ++it) {
    result.trace.phases.push_back(make_stream_phase(StreamKernel::Copy,
                                                    bytes));
    result.trace.phases.push_back(make_stream_phase(StreamKernel::Scale,
                                                    bytes));
    result.trace.phases.push_back(make_stream_phase(StreamKernel::Add,
                                                    bytes));
    result.trace.phases.push_back(make_stream_phase(StreamKernel::Triad,
                                                    bytes));
  }
  return result;
}

}  // namespace hmpt::workloads
