// fft.h — self-contained complex FFT used by the mini k-Wave solver.
//
// The k-Wave application in the paper is a pseudospectral ultrasound solver
// dominated by 3-D FFTs over complex arrays (Sec. IV-B). No external FFT
// library is assumed offline, so this module implements an iterative
// radix-2 Cooley-Tukey transform with bit-reversal permutation plus 3-D
// axis-wise application. Sizes must be powers of two.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace hmpt::workloads {

using Complex = std::complex<double>;

/// True when n is a power of two (and at least 1).
bool is_pow2(std::size_t n);

/// In-place 1-D FFT of length data.size() (power of two).
/// `inverse` applies the conjugate transform and 1/N normalisation.
void fft_inplace(std::vector<Complex>& data, bool inverse);
void fft_inplace(Complex* data, std::size_t n, bool inverse);

/// Strided in-place transform: elements data[offset + i*stride].
void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse, std::vector<Complex>& scratch);

/// In-place 3-D FFT over an nx*ny*nz row-major volume (z fastest).
void fft3d_inplace(Complex* data, std::size_t nx, std::size_t ny,
                   std::size_t nz, bool inverse);

/// Flops of one 1-D FFT of length n (the usual 5 n log2 n count).
double fft_flops(std::size_t n);
/// Flops of a full 3-D transform.
double fft3d_flops(std::size_t nx, std::size_t ny, std::size_t nz);

}  // namespace hmpt::workloads
