#include "workloads/line_solver.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace hmpt::workloads {

void solve_tridiagonal(const double* sub, const double* diag,
                       const double* super, double* rhs, double* scratch,
                       std::size_t n) {
  HMPT_REQUIRE(n >= 1, "empty system");
  // Forward elimination into scratch (modified super-diagonal) and rhs.
  scratch[0] = super[0] / diag[0];
  rhs[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = 1.0 / (diag[i] - sub[i] * scratch[i - 1]);
    scratch[i] = super[i] * m;
    rhs[i] = (rhs[i] - sub[i] * rhs[i - 1]) * m;
  }
  // Back substitution.
  for (std::size_t i = n - 1; i-- > 0;)
    rhs[i] -= scratch[i] * rhs[i + 1];
}

void solve_pentadiagonal(double* b2, double* b1, double* d, double* a1,
                         double* a2, double* rhs, std::size_t n) {
  HMPT_REQUIRE(n >= 3, "pentadiagonal system needs n >= 3");
  // Banded Gaussian elimination (no pivoting; diagonally dominant input).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Eliminate b1[i+1] (first sub-diagonal of row i+1).
    const double f1 = b1[i + 1] / d[i];
    d[i + 1] -= f1 * a1[i];
    if (i + 2 < n) a1[i + 1] -= f1 * a2[i];
    rhs[i + 1] -= f1 * rhs[i];
    // Eliminate b2[i+2] (second sub-diagonal of row i+2).
    if (i + 2 < n) {
      const double f2 = b2[i + 2] / d[i];
      b1[i + 2] -= f2 * a1[i];
      d[i + 2] -= f2 * a2[i];
      rhs[i + 2] -= f2 * rhs[i];
    }
  }
  // Back substitution over the remaining upper-banded system.
  rhs[n - 1] /= d[n - 1];
  if (n >= 2)
    rhs[n - 2] = (rhs[n - 2] - a1[n - 2] * rhs[n - 1]) / d[n - 2];
  for (std::size_t i = n - 2; i-- > 0;)
    rhs[i] = (rhs[i] - a1[i] * rhs[i + 1] - a2[i] * rhs[i + 2]) / d[i];
}

namespace {

sim::StreamAccess seq(int group, double read_bytes, double write_bytes) {
  sim::StreamAccess s;
  s.group = group;
  s.bytes_read = read_bytes;
  s.bytes_written = write_bytes;
  s.pattern = sim::AccessPattern::Sequential;
  return s;
}

}  // namespace

MiniLineSolverResult run_mini_line_solver(shim::ShimAllocator& shim,
                                          const MiniLineSolverConfig& config,
                                          const std::string& prefix,
                                          sample::IbsSampler* sampler) {
  const std::size_t n = config.n;
  HMPT_REQUIRE(n >= 4, "grid too small");
  const std::size_t cells = n * n * n;
  const int bands = config.system == LineSystem::Tridiagonal ? 3 : 5;

  // The three dominant allocations of the NPB codes: solution field,
  // right-hand side, and the factored line systems (lhs).
  TrackedArray<double> u(shim, prefix + "::u", cells);
  TrackedArray<double> rhs(shim, prefix + "::rhs", cells);
  TrackedArray<double> lhs(shim, prefix + "::lhs",
                           cells * static_cast<std::size_t>(bands));

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    u.attach_sampler(sampler, &map);
    rhs.attach_sampler(sampler, &map);
    lhs.attach_sampler(sampler, &map);
  }

  Rng rng(config.seed);
  for (std::size_t i = 0; i < cells; ++i) {
    u.store(i, 0.0);
    rhs.store(i, rng.next_double() - 0.5);
  }

  sim::PhaseTrace trace;
  MiniLineSolverResult result;

  std::vector<double> line_rhs(n), scratch(n);
  std::vector<double> band(bands * n);

  const auto fill_line_system = [&](std::size_t line_id) {
    // Diagonally dominant banded system; coefficients stored in lhs so the
    // allocation sees real traffic.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t base =
          (line_id * n + i) * static_cast<std::size_t>(bands);
      if (config.system == LineSystem::Tridiagonal) {
        lhs.store(base + 0, i > 0 ? -1.0 : 0.0);
        lhs.store(base + 1, 4.0 + 0.1 * static_cast<double>(i % 7));
        lhs.store(base + 2, i + 1 < n ? -1.0 : 0.0);
      } else {
        lhs.store(base + 0, i > 1 ? -0.5 : 0.0);
        lhs.store(base + 1, i > 0 ? -1.0 : 0.0);
        lhs.store(base + 2, 6.0 + 0.1 * static_cast<double>(i % 5));
        lhs.store(base + 3, i + 1 < n ? -1.0 : 0.0);
        lhs.store(base + 4, i + 2 < n ? -0.5 : 0.0);
      }
    }
  };

  const auto solve_line = [&](std::size_t line_id, std::size_t base_cell,
                              std::size_t stride) {
    for (std::size_t i = 0; i < n; ++i)
      line_rhs[i] = rhs.load(base_cell + i * stride);
    for (std::size_t i = 0; i < n; ++i)
      for (int b = 0; b < bands; ++b)
        band[static_cast<std::size_t>(b) * n + i] = lhs.load(
            (line_id * n + i) * static_cast<std::size_t>(bands) +
            static_cast<std::size_t>(b));
    // Keep pristine copies for residual verification.
    const std::vector<double> b_copy = band;
    const std::vector<double> rhs_copy = line_rhs;

    if (config.system == LineSystem::Tridiagonal) {
      solve_tridiagonal(&band[0], &band[n], &band[2 * n], line_rhs.data(),
                        scratch.data(), n);
    } else {
      solve_pentadiagonal(&band[0], &band[n], &band[2 * n], &band[3 * n],
                          &band[4 * n], line_rhs.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i)
      u.store(base_cell + i * stride, line_rhs[i]);

    // Residual check on a sample of lines (every 16th).
    if (line_id % 16 == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        double ax = 0.0;
        if (config.system == LineSystem::Tridiagonal) {
          if (i > 0) ax += b_copy[i] * line_rhs[i - 1];
          ax += b_copy[n + i] * line_rhs[i];
          if (i + 1 < n) ax += b_copy[2 * n + i] * line_rhs[i + 1];
        } else {
          if (i > 1) ax += b_copy[i] * line_rhs[i - 2];
          if (i > 0) ax += b_copy[n + i] * line_rhs[i - 1];
          ax += b_copy[2 * n + i] * line_rhs[i];
          if (i + 1 < n) ax += b_copy[3 * n + i] * line_rhs[i + 1];
          if (i + 2 < n) ax += b_copy[4 * n + i] * line_rhs[i + 2];
        }
        result.max_residual = std::max(result.max_residual,
                                       std::fabs(ax - rhs_copy[i]));
      }
    }
  };

  const double cell_bytes = static_cast<double>(cells) * sizeof(double);
  for (int sweep = 0; sweep < config.sweeps; ++sweep) {
    // Alternating-direction sweeps over the three axes, like ADI solvers.
    for (int axis = 0; axis < 3; ++axis) {
      std::size_t line_id = 0;
      const std::size_t stride =
          axis == 0 ? n * n : (axis == 1 ? n : 1);
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < n; ++k) {
          std::size_t base_cell;
          if (axis == 0) base_cell = j * n + k;
          else if (axis == 1) base_cell = j * n * n + k;
          else base_cell = j * n * n + k * n;
          fill_line_system(line_id);
          solve_line(line_id, base_cell, stride);
          ++line_id;
        }

      sim::KernelPhase phase;
      phase.name = prefix + "::sweep_axis" + std::to_string(axis);
      phase.streams.push_back(seq(0, 0.0, cell_bytes));       // u written
      phase.streams.push_back(seq(1, cell_bytes, 0.0));       // rhs read
      phase.streams.push_back(
          seq(2, bands * cell_bytes, bands * cell_bytes));    // lhs rw
      phase.flops = (config.system == LineSystem::Tridiagonal ? 8.0 : 19.0) *
                    static_cast<double>(cells);
      trace.phases.push_back(phase);
    }
    // RHS refresh between sweeps: rhs += 0.1 * u (keeps the ADI loop
    // honest and adds the u-read traffic BT/SP exhibit).
    for (std::size_t i = 0; i < cells; ++i)
      rhs.store(i, rhs.load(i) + 0.1 * u.load(i));
    sim::KernelPhase refresh;
    refresh.name = prefix + "::rhs_refresh";
    refresh.streams.push_back(seq(0, cell_bytes, 0.0));
    refresh.streams.push_back(seq(1, cell_bytes, cell_bytes));
    refresh.flops = 2.0 * static_cast<double>(cells);
    trace.phases.push_back(refresh);
  }

  result.converged = result.max_residual < 1e-8;
  result.trace = std::move(trace);
  return result;
}

}  // namespace hmpt::workloads
