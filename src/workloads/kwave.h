// kwave.h — miniature pseudospectral ultrasound solver (k-Wave analogue).
//
// The paper's final case study is k-Wave, a pseudospectral solver for
// nonlinear sound propagation dominated by 3-D FFTs over complex arrays,
// with the remaining arrays organised as vector fields over three spatial
// dimensions (Sec. IV-B). This mini solver integrates the first-order
// linear acoustic equations in k-space on a power-of-two grid:
//   du/dt = -grad(p)/rho0,   drho/dt = -rho0 div(u),   p = c^2 rho
// with spectral derivatives (ik multiplication in Fourier space). All field
// arrays are allocated through the shim with the same logical grouping the
// paper uses (vector fields as single groups, FFT temporaries separate).
#pragma once

#include <memory>

#include "simmem/phase.h"
#include "workloads/fft.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

struct KWaveConfig {
  std::size_t n = 16;        ///< grid edge (power of two); n^3 cells
  int steps = 4;             ///< time steps
  double c0 = 1500.0;        ///< sound speed [m/s]
  double rho0 = 1000.0;      ///< ambient density [kg/m^3]
  double dx = 1e-4;          ///< grid spacing [m]
  double cfl = 0.3;          ///< CFL number fixing dt
};

/// Outcome of an executable mini k-Wave run.
struct MiniKWaveResult {
  double max_pressure = 0.0;     ///< max |p| after the run (finite check)
  double mass_drift = 0.0;       ///< |mean(rho)| drift from 0 (conservation)
  bool finite = true;            ///< no NaN/Inf anywhere
  sim::PhaseTrace trace;         ///< traffic of the run (mini scale)
};

/// Run the mini solver through the shim; groups are named
/// kwave::{p,rho,u_vec,fft_tmp,kspace}.
MiniKWaveResult run_mini_kwave(shim::ShimAllocator& shim,
                               const KWaveConfig& config,
                               sample::IbsSampler* sampler = nullptr);

/// Build the phase trace of `steps` time steps at grid size n^3 (without
/// executing); used by the paper-scale k-Wave app model (512^3).
sim::PhaseTrace kwave_trace(std::size_t n, int steps);

/// Group inventory matching kwave_trace()'s ids.
std::vector<GroupInfo> kwave_groups(std::size_t n);

}  // namespace hmpt::workloads
