#include "workloads/pointer_chase.h"

#include <vector>

#include "common/error.h"

namespace hmpt::workloads {

sim::KernelPhase make_chase_phase(double window_bytes, double accesses) {
  HMPT_REQUIRE(window_bytes > 0 && accesses > 0, "bad chase parameters");
  sim::KernelPhase phase;
  phase.name = "pointer-chase";
  phase.vectorized = false;
  sim::StreamAccess s;
  s.group = 0;
  s.bytes_read = accesses * kCacheLine;  // each hop touches one line
  s.pattern = sim::AccessPattern::PointerChase;
  s.working_set_bytes = window_bytes;
  phase.streams.push_back(s);
  return phase;
}

PointerChaseWorkload::PointerChaseWorkload(double window_bytes,
                                           double accesses)
    : window_bytes_(window_bytes), accesses_(accesses) {
  HMPT_REQUIRE(window_bytes_ > 0 && accesses_ > 0, "bad chase parameters");
}

std::vector<GroupInfo> PointerChaseWorkload::groups() const {
  return {{"chase::ring", window_bytes_}};
}

sim::PhaseTrace PointerChaseWorkload::trace() const {
  sim::PhaseTrace trace;
  trace.phases.push_back(make_chase_phase(window_bytes_, accesses_));
  return trace;
}

MiniChaseResult run_mini_chase(shim::ShimAllocator& shim,
                               std::size_t elements, std::size_t steps,
                               std::uint64_t seed,
                               sample::IbsSampler* sampler) {
  HMPT_REQUIRE(elements >= 2, "chase needs >= 2 elements");
  TrackedArray<std::uint64_t> ring(shim, "chase::ring", elements);
  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) ring.attach_sampler(sampler, &map);

  // Sattolo's algorithm: a single cycle covering all slots, so the chase
  // has maximal period and no short-cycle cache artefacts.
  std::vector<std::uint64_t> perm(elements);
  for (std::size_t i = 0; i < elements; ++i) perm[i] = i;
  Rng rng(seed);
  for (std::size_t i = elements - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(perm[i], perm[j]);
  }
  for (std::size_t i = 0; i < elements; ++i) ring.store(i, perm[i]);

  // Verify the permutation forms one full cycle.
  std::size_t cursor = 0, visited = 0;
  do {
    cursor = static_cast<std::size_t>(ring.data()[cursor]);
    ++visited;
  } while (cursor != 0 && visited <= elements);
  const bool full_cycle = (visited == elements && cursor == 0);

  std::uint64_t idx = 0;
  for (std::size_t s = 0; s < steps; ++s)
    idx = ring.load(static_cast<std::size_t>(idx));

  MiniChaseResult result;
  result.final_index = idx;
  result.full_cycle = full_cycle;
  result.trace.phases.push_back(make_chase_phase(
      static_cast<double>(elements * sizeof(std::uint64_t)),
      static_cast<double>(steps)));
  return result;
}

}  // namespace hmpt::workloads
