// stream.h — the STREAM benchmark (Copy/Scale/Add/Triad).
//
// Used three ways, matching the paper's platform analysis:
//   * phase builders at paper scale (16 GB per array) for the bandwidth
//     sweeps of Fig. 2 and the per-array placement study of Fig. 5;
//   * a Workload with one group per array so the tuner can sweep STREAM's
//     placement space like any application;
//   * an executable mini-kernel that really runs through the shim with
//     verifiable results (tests, quickstart example).
#pragma once

#include <array>

#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

enum class StreamKernel { Copy, Scale, Add, Triad };
const char* to_string(StreamKernel kernel);
/// Arrays touched by a kernel: Copy/Scale read a, write c; Add/Triad read
/// a and b, write c.
int stream_arity(StreamKernel kernel);
/// Flops per element (Scale 1, Add 1, Triad 2, Copy 0).
double stream_flops_per_elem(StreamKernel kernel);

/// Phase for one kernel execution with per-array group ids {a=0,b=1,c=2}.
/// `array_bytes` is the size of each work array.
sim::KernelPhase make_stream_phase(StreamKernel kernel, double array_bytes);

/// STREAM as a tunable workload: groups a/b/c of `array_bytes` each,
/// `iterations` repetitions of the four (or selected) kernels.
class StreamWorkload final : public Workload {
 public:
  StreamWorkload(double array_bytes, int iterations,
                 std::vector<StreamKernel> kernels = {
                     StreamKernel::Copy, StreamKernel::Scale,
                     StreamKernel::Add, StreamKernel::Triad});

  std::string name() const override { return "STREAM"; }
  std::vector<GroupInfo> groups() const override;
  sim::PhaseTrace trace() const override;

 private:
  double array_bytes_;
  int iterations_;
  std::vector<StreamKernel> kernels_;
};

/// Executable mini STREAM: allocates three arrays through the shim, runs
/// the kernels for real, optionally feeding the sampler, and verifies the
/// arithmetic. Returns the verification residual (0 when exact).
struct MiniStreamResult {
  double max_residual = 0.0;
  sim::PhaseTrace trace;  ///< traffic of the run (mini scale)
};
MiniStreamResult run_mini_stream(shim::ShimAllocator& shim,
                                 std::size_t elements, int iterations,
                                 sample::IbsSampler* sampler = nullptr);

}  // namespace hmpt::workloads
