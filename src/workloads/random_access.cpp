#include "workloads/random_access.h"

#include "common/error.h"
#include "common/rng.h"

namespace hmpt::workloads {

sim::KernelPhase make_random_sum_phase(double data_bytes, double accesses) {
  HMPT_REQUIRE(data_bytes > 0 && accesses > 0, "bad random-sum parameters");
  sim::KernelPhase phase;
  phase.name = "random-indirect-sum";
  phase.vectorized = false;
  phase.flops = accesses;  // one add per gathered element

  sim::StreamAccess data;
  data.group = 0;
  data.bytes_read = accesses * kCacheLine;  // one line per gather
  data.pattern = sim::AccessPattern::Random;
  phase.streams.push_back(data);

  sim::StreamAccess index;
  index.group = 1;
  index.bytes_read = accesses * sizeof(std::uint64_t);
  index.pattern = sim::AccessPattern::Sequential;
  phase.streams.push_back(index);
  return phase;
}

RandomSumWorkload::RandomSumWorkload(double data_bytes, double accesses)
    : data_bytes_(data_bytes), accesses_(accesses) {
  HMPT_REQUIRE(data_bytes_ > 0 && accesses_ > 0, "bad parameters");
}

std::vector<GroupInfo> RandomSumWorkload::groups() const {
  return {{"randsum::data", data_bytes_},
          {"randsum::index", accesses_ * sizeof(std::uint64_t)}};
}

sim::PhaseTrace RandomSumWorkload::trace() const {
  sim::PhaseTrace trace;
  trace.phases.push_back(make_random_sum_phase(data_bytes_, accesses_));
  return trace;
}

MiniRandomSumResult run_mini_random_sum(shim::ShimAllocator& shim,
                                        std::size_t elements,
                                        std::size_t accesses,
                                        std::uint64_t seed,
                                        sample::IbsSampler* sampler) {
  HMPT_REQUIRE(elements >= 1, "need >= 1 element");
  TrackedArray<double> data(shim, "randsum::data", elements);
  TrackedArray<std::uint64_t> index(shim, "randsum::index", accesses);

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    data.attach_sampler(sampler, &map);
    index.attach_sampler(sampler, &map);
  }

  Rng rng(seed);
  for (std::size_t i = 0; i < elements; ++i)
    data.store(i, static_cast<double>(i % 97) * 0.25);
  for (std::size_t i = 0; i < accesses; ++i)
    index.store(i, rng.next_below(elements));

  double sum = 0.0;
  for (std::size_t i = 0; i < accesses; ++i)
    sum += data.load(static_cast<std::size_t>(index.load(i)));

  double reference = 0.0;
  for (std::size_t i = 0; i < accesses; ++i)
    reference += data.data()[index.data()[i]];

  MiniRandomSumResult result;
  result.sum = sum;
  result.reference = reference;
  result.trace.phases.push_back(make_random_sum_phase(
      static_cast<double>(elements * sizeof(double)),
      static_cast<double>(accesses)));
  return result;
}

}  // namespace hmpt::workloads
