#include "workloads/kwave.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::workloads {

namespace {

/// Angular wavenumber of index i on a periodic grid of n cells.
double wavenumber(std::size_t i, std::size_t n, double dx) {
  const auto si = static_cast<long long>(i);
  const auto sn = static_cast<long long>(n);
  const long long k = si <= sn / 2 ? si : si - sn;
  return 2.0 * M_PI * static_cast<double>(k) /
         (static_cast<double>(n) * dx);
}

/// Sequential read+write stream helper for trace building.
sim::StreamAccess rw(int group, double read_bytes, double write_bytes) {
  sim::StreamAccess s;
  s.group = group;
  s.bytes_read = read_bytes;
  s.bytes_written = write_bytes;
  s.pattern = sim::AccessPattern::Sequential;
  return s;
}

constexpr int kGroupP = 0;
constexpr int kGroupRho = 1;
constexpr int kGroupUVec = 2;
constexpr int kGroupFftTmp = 3;
constexpr int kGroupKSpace = 4;

}  // namespace

std::vector<GroupInfo> kwave_groups(std::size_t n) {
  const double cells = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double real_bytes = cells * sizeof(double);
  const double complex_bytes = cells * sizeof(Complex);
  return {
      {"kwave::p", real_bytes},
      {"kwave::rho", real_bytes},
      {"kwave::u_vec", 3.0 * real_bytes},
      {"kwave::fft_tmp", 2.0 * complex_bytes},
      {"kwave::kspace", 3.0 * static_cast<double>(n) * sizeof(double)},
  };
}

sim::PhaseTrace kwave_trace(std::size_t n, int steps) {
  HMPT_REQUIRE(is_pow2(n), "grid must be a power of two");
  HMPT_REQUIRE(steps >= 1, "need >= 1 step");
  const double cells = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double real_bytes = cells * sizeof(double);
  const double complex_bytes = cells * sizeof(Complex);
  // One in-place 3-D FFT makes three axis passes, each reading and writing
  // the full complex volume.
  const double fft_pass_bytes = 3.0 * 2.0 * complex_bytes;
  const double fft_flops = fft3d_flops(n, n, n);

  sim::PhaseTrace trace;
  for (int step = 0; step < steps; ++step) {
    // Phase 1: velocity update, u -= dt/rho0 * ifft(ik fft(p)) per axis.
    // One forward FFT of p, three inverse FFTs (one per axis).
    sim::KernelPhase grad;
    grad.name = "kwave::grad_p";
    grad.streams.push_back(rw(kGroupP, real_bytes, 0.0));
    grad.streams.push_back(
        rw(kGroupFftTmp, 4.0 * fft_pass_bytes / 2.0,
           4.0 * fft_pass_bytes / 2.0));
    grad.streams.push_back(rw(kGroupUVec, 3.0 * real_bytes,
                              3.0 * real_bytes));
    grad.streams.push_back(
        rw(kGroupKSpace, 3.0 * static_cast<double>(n) * sizeof(double),
           0.0));
    grad.flops = 4.0 * fft_flops + 6.0 * cells;
    trace.phases.push_back(grad);

    // Phase 2: density update, rho -= dt*rho0 * sum_a ifft(ik_a fft(u_a)).
    // Three forward FFTs, accumulation in k-space, one inverse FFT.
    sim::KernelPhase divu;
    divu.name = "kwave::div_u";
    divu.streams.push_back(rw(kGroupUVec, 3.0 * real_bytes, 0.0));
    divu.streams.push_back(
        rw(kGroupFftTmp, 4.0 * fft_pass_bytes / 2.0,
           4.0 * fft_pass_bytes / 2.0));
    divu.streams.push_back(rw(kGroupRho, real_bytes, real_bytes));
    divu.streams.push_back(
        rw(kGroupKSpace, 3.0 * static_cast<double>(n) * sizeof(double),
           0.0));
    divu.flops = 4.0 * fft_flops + 5.0 * cells;
    trace.phases.push_back(divu);

    // Phase 3: equation of state, p = c0^2 * rho.
    sim::KernelPhase eos;
    eos.name = "kwave::eos";
    eos.streams.push_back(rw(kGroupRho, real_bytes, 0.0));
    eos.streams.push_back(rw(kGroupP, 0.0, real_bytes));
    eos.flops = cells;
    trace.phases.push_back(eos);
  }
  return trace;
}

MiniKWaveResult run_mini_kwave(shim::ShimAllocator& shim,
                               const KWaveConfig& config,
                               sample::IbsSampler* sampler) {
  const std::size_t n = config.n;
  HMPT_REQUIRE(is_pow2(n) && n >= 4, "grid must be a power of two >= 4");
  const std::size_t cells = n * n * n;
  const double dt = config.cfl * config.dx / config.c0;

  TrackedArray<double> p(shim, "kwave::p", cells);
  TrackedArray<double> rho(shim, "kwave::rho", cells);
  TrackedArray<double> u(shim, "kwave::u_vec", 3 * cells);
  TrackedArray<Complex> tmp_a(shim, "kwave::fft_tmp", cells);
  TrackedArray<Complex> tmp_b(shim, "kwave::fft_tmp", cells);
  TrackedArray<double> kvec(shim, "kwave::kspace", 3 * n);

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    p.attach_sampler(sampler, &map);
    rho.attach_sampler(sampler, &map);
    u.attach_sampler(sampler, &map);
    tmp_a.attach_sampler(sampler, &map);
    tmp_b.attach_sampler(sampler, &map);
    kvec.attach_sampler(sampler, &map);
  }

  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t i = 0; i < n; ++i)
      kvec.store(a * n + i, wavenumber(i, n, config.dx));

  // Initial condition: centred Gaussian pressure pulse, quiescent medium.
  const double centre = static_cast<double>(n - 1) / 2.0;
  const double width = static_cast<double>(n) / 8.0;
  double rho_mean0 = 0.0;
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t z = 0; z < n; ++z) {
        const double dx2 = (static_cast<double>(x) - centre) *
                           (static_cast<double>(x) - centre);
        const double dy2 = (static_cast<double>(y) - centre) *
                           (static_cast<double>(y) - centre);
        const double dz2 = (static_cast<double>(z) - centre) *
                           (static_cast<double>(z) - centre);
        const double value =
            std::exp(-(dx2 + dy2 + dz2) / (2.0 * width * width));
        const std::size_t idx = (x * n + y) * n + z;
        p.store(idx, value);
        rho.store(idx, value / (config.c0 * config.c0));
        rho_mean0 += value / (config.c0 * config.c0);
      }
  rho_mean0 /= static_cast<double>(cells);
  for (std::size_t i = 0; i < 3 * cells; ++i) u.store(i, 0.0);

  // Index stride of axis a in the row-major volume.
  const std::size_t stride[3] = {n * n, n, 1};

  // Spectral derivative: out = ifft3(i * k_a * fft3(field)).
  auto spectral_derivative = [&](const TrackedArray<double>& field,
                                 std::size_t base_offset, int axis,
                                 TrackedArray<Complex>& work) {
    for (std::size_t i = 0; i < cells; ++i)
      work.store(i, Complex(field.load(base_offset + i), 0.0));
    fft3d_inplace(work.data(), n, n, n, false);
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z) {
          const std::size_t axis_idx = axis == 0 ? x : (axis == 1 ? y : z);
          const double k =
              kvec.load(static_cast<std::size_t>(axis) * n + axis_idx);
          const std::size_t idx = (x * n + y) * n + z;
          work.data()[idx] *= Complex(0.0, k);
        }
    fft3d_inplace(work.data(), n, n, n, true);
  };

  for (int step = 0; step < config.steps; ++step) {
    // Velocity update from the pressure gradient.
    for (int axis = 0; axis < 3; ++axis) {
      spectral_derivative(p, 0, axis, tmp_a);
      const std::size_t base = static_cast<std::size_t>(axis) * cells;
      for (std::size_t i = 0; i < cells; ++i)
        u.store(base + i,
                u.load(base + i) -
                    dt / config.rho0 * tmp_a.data()[i].real());
    }
    // Density update from the velocity divergence.
    for (std::size_t i = 0; i < cells; ++i) tmp_b.store(i, Complex(0, 0));
    for (int axis = 0; axis < 3; ++axis) {
      spectral_derivative(u, static_cast<std::size_t>(axis) * cells, axis,
                          tmp_a);
      for (std::size_t i = 0; i < cells; ++i)
        tmp_b.data()[i] += tmp_a.data()[i];
    }
    for (std::size_t i = 0; i < cells; ++i)
      rho.store(i, rho.load(i) - dt * config.rho0 * tmp_b.load(i).real());
    // Equation of state.
    for (std::size_t i = 0; i < cells; ++i)
      p.store(i, config.c0 * config.c0 * rho.load(i));
  }

  MiniKWaveResult result;
  double rho_mean = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    const double pv = p.data()[i];
    if (!std::isfinite(pv)) result.finite = false;
    result.max_pressure = std::max(result.max_pressure, std::fabs(pv));
    rho_mean += rho.data()[i];
  }
  rho_mean /= static_cast<double>(cells);
  result.mass_drift = std::fabs(rho_mean - rho_mean0);
  result.trace = kwave_trace(n, config.steps);
  return result;
}

}  // namespace hmpt::workloads
