// line_solver.h — executable line-solver miniatures of BT/SP/LU.
//
// NPB's BT, SP and LU are implicit CFD solvers whose core is sweeping
// banded linear systems along grid lines (block tri-diagonal, scalar
// penta-diagonal, lower-upper relaxation respectively). This module
// implements the shared algorithmic substrate for real execution through
// the shim: batched Thomas-algorithm solves for tri- and penta-diagonal
// systems over the lines of a 3-D grid, verified against residuals.
#pragma once

#include <cstddef>

#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

/// Bandwidth of the per-line system.
enum class LineSystem {
  Tridiagonal,   ///< BT/LU-style (scalarised blocks)
  Pentadiagonal, ///< SP-style
};

struct MiniLineSolverConfig {
  std::size_t n = 24;  ///< grid edge; n^2 lines of n unknowns per sweep
  int sweeps = 2;      ///< alternating-direction sweeps (x then y then z)
  LineSystem system = LineSystem::Tridiagonal;
  std::uint64_t seed = 21;
};

struct MiniLineSolverResult {
  /// Max residual |A x - b| over all verified lines (machine-eps scale
  /// when the solver is correct; the systems are diagonally dominant).
  double max_residual = 0.0;
  bool converged = false;  ///< residual below 1e-8
  sim::PhaseTrace trace;
};

/// Run the mini solver through the shim. Allocation groups are named
/// <prefix>::{u,rhs,lhs} — matching the three heaviest allocations of the
/// corresponding NPB codes.
MiniLineSolverResult run_mini_line_solver(shim::ShimAllocator& shim,
                                          const MiniLineSolverConfig& config,
                                          const std::string& prefix,
                                          sample::IbsSampler* sampler =
                                              nullptr);

/// Solve one tridiagonal system in place (Thomas algorithm).
/// Arrays: sub/diag/super diagonals (sub[0], super[n-1] unused), rhs is
/// overwritten with the solution. Requires diagonal dominance.
void solve_tridiagonal(const double* sub, const double* diag,
                       const double* super, double* rhs, double* scratch,
                       std::size_t n);

/// Solve one pentadiagonal system in place (banded LU without pivoting,
/// valid for diagonally dominant systems). Bands b2,b1,d,a1,a2 are
/// overwritten; rhs receives the solution.
void solve_pentadiagonal(double* b2, double* b1, double* d, double* a1,
                         double* a2, double* rhs, std::size_t n);

}  // namespace hmpt::workloads
