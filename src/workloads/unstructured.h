// unstructured.h — executable miniature of NPB UA (Unstructured Adaptive).
//
// UA's distinguishing property in Table I is its allocation profile: 56
// filtered allocations, most of them small per-level/per-field arrays that
// the tuner must filter and fold into the rest group (Sec. III-A). This
// mini kernel reproduces that shape for real: a CSR adjacency graph over
// an irregular mesh, Jacobi relaxation with indirect (gather) access, and
// several refinement levels each allocating its own small field arrays —
// yielding dozens of distinct call sites of very different sizes flowing
// through the shim.
#pragma once

#include <cstdint>

#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

struct MiniUaConfig {
  std::size_t base_vertices = 2048;  ///< coarsest-level mesh size
  int levels = 4;                    ///< refinement levels (allocs scale!)
  int relax_sweeps = 3;              ///< Jacobi sweeps per level
  int avg_degree = 6;                ///< mesh connectivity
  std::uint64_t seed = 31;
};

struct MiniUaResult {
  /// Residual decrease of the relaxation on the finest level.
  double initial_residual = 0.0;
  double final_residual = 0.0;
  bool converging = false;
  int allocations_made = 0;  ///< distinct shim call sites exercised
  sim::PhaseTrace trace;
};

/// Run the mini UA solver through the shim. Call sites are named
/// ua::L<level>::{xadj,adjncy,x,b,diag} plus small per-level metadata
/// arrays — deliberately many small sites, as in the real ua.D.
MiniUaResult run_mini_ua(shim::ShimAllocator& shim, const MiniUaConfig& config,
                         sample::IbsSampler* sampler = nullptr);

}  // namespace hmpt::workloads
