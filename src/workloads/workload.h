// workload.h — common interface of tunable workloads.
//
// A workload exposes (a) its allocation groups (the unit the tuner places:
// after filtering/aliasing, each group is one logical allocation or a set
// treated as one, Sec. III-A) and (b) a PhaseTrace describing its memory
// traffic at the configured scale. Analytical AppModels (paper-scale NPB /
// k-Wave descriptors) implement trace() directly; executable mini-kernels
// build it from their actual loop structure while also running for real
// through the shim allocator, feeding the IBS sampler.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "sample/sampler.h"
#include "shim/shim_allocator.h"
#include "simmem/phase.h"

namespace hmpt::workloads {

/// One tunable allocation group.
struct GroupInfo {
  std::string label;
  double bytes = 0.0;  ///< resident size of the group
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::vector<GroupInfo> groups() const = 0;
  /// Memory behaviour of one full run; stream group ids index groups().
  virtual sim::PhaseTrace trace() const = 0;

  int num_groups() const { return static_cast<int>(groups().size()); }
  double total_bytes() const;
  /// Fraction of resident bytes held by `group` (the "HBM usage" x-axis of
  /// the summary views when the group is placed in HBM).
  double footprint_fraction(int group) const;
};

/// Shared-ownership handle used across the tuner API.
using WorkloadPtr = std::shared_ptr<const Workload>;

/// A real buffer allocated through the shim, with optional access-event
/// emission into an IBS sampler. Kernels instrument their inner loops with
/// load()/store(); when no sampler is attached the accessors compile down
/// to plain array accesses.
template <typename T>
class TrackedArray {
 public:
  TrackedArray(shim::ShimAllocator& shim, const std::string& label,
               std::size_t count)
      : shim_(&shim),
        data_(shim.allocate_array<T>(label, count)),
        count_(count),
        label_(label) {
    HMPT_REQUIRE(data_ != nullptr, "shim allocation failed: " + label);
  }
  ~TrackedArray() {
    if (data_ != nullptr) shim_->deallocate(data_);
  }
  TrackedArray(const TrackedArray&) = delete;
  TrackedArray& operator=(const TrackedArray&) = delete;
  TrackedArray(TrackedArray&& other) noexcept
      : shim_(other.shim_),
        data_(other.data_),
        count_(other.count_),
        label_(std::move(other.label_)),
        sampler_(other.sampler_),
        map_(other.map_) {
    other.data_ = nullptr;
  }

  /// Attach an IBS sampler; all subsequent accesses are candidate samples.
  void attach_sampler(sample::IbsSampler* sampler,
                      const pools::PageMap* map) {
    sampler_ = sampler;
    map_ = map;
  }

  T load(std::size_t i) const {
    HMPT_ASSERT(i < count_);
    if (sampler_ != nullptr)
      sampler_->feed({address_of(i), false, 0.0}, *map_);
    return data_[i];
  }
  void store(std::size_t i, T value) {
    HMPT_ASSERT(i < count_);
    if (sampler_ != nullptr)
      sampler_->feed({address_of(i), true, 0.0}, *map_);
    data_[i] = value;
  }

  /// Raw access for verification code (no sampling).
  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  double bytes() const { return static_cast<double>(count_ * sizeof(T)); }
  const std::string& label() const { return label_; }

 private:
  std::uintptr_t address_of(std::size_t i) const {
    return reinterpret_cast<std::uintptr_t>(data_ + i);
  }

  shim::ShimAllocator* shim_;
  T* data_;
  std::size_t count_;
  std::string label_;
  sample::IbsSampler* sampler_ = nullptr;
  const pools::PageMap* map_ = nullptr;
};

}  // namespace hmpt::workloads
