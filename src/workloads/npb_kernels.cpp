#include "workloads/npb_kernels.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "workloads/fft.h"  // is_pow2

namespace hmpt::workloads {

namespace {

/// Total cells of all multigrid levels from edge n down to 4.
std::size_t mg_total_cells(std::size_t n) {
  std::size_t total = 0;
  for (std::size_t e = n; e >= 4; e /= 2) total += e * e * e;
  return total;
}

sim::StreamAccess seq_rw(int group, double r, double w) {
  sim::StreamAccess s;
  s.group = group;
  s.bytes_read = r;
  s.bytes_written = w;
  s.pattern = sim::AccessPattern::Sequential;
  return s;
}

}  // namespace

MiniMgResult run_mini_mg(shim::ShimAllocator& shim, const MiniMgConfig& config,
                         sample::IbsSampler* sampler) {
  const std::size_t n = config.n;
  HMPT_REQUIRE(is_pow2(n) && n >= 8, "MG grid must be a power of two >= 8");
  const std::size_t cells = n * n * n;
  const std::size_t all_cells = mg_total_cells(n);

  // Like NPB MG: u and r hold every level in one allocation each; v is the
  // finest-level right-hand side only. These are the paper's three
  // significant allocations of mg.D (Fig. 7a).
  TrackedArray<double> u(shim, "mg::u", all_cells);
  TrackedArray<double> r(shim, "mg::r", all_cells);
  TrackedArray<double> v(shim, "mg::v", cells);

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    u.attach_sampler(sampler, &map);
    r.attach_sampler(sampler, &map);
    v.attach_sampler(sampler, &map);
  }

  // Zero-mean random RHS (periodic Poisson needs a zero-mean source).
  Rng rng(11);
  double mean = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    const double x = rng.next_double() - 0.5;
    v.store(i, x);
    mean += x;
  }
  mean /= static_cast<double>(cells);
  for (std::size_t i = 0; i < cells; ++i) v.store(i, v.load(i) - mean);
  for (std::size_t i = 0; i < all_cells; ++i) {
    u.store(i, 0.0);
    r.store(i, 0.0);
  }

  // Byte-level traffic of the run, accumulated as the kernels execute.
  sim::PhaseTrace trace;

  const auto idx = [](std::size_t e, std::size_t x, std::size_t y,
                      std::size_t z) { return (x * e + y) * e + z; };
  const auto wrap = [](std::size_t i, std::size_t e, long long d) {
    return (i + e + static_cast<std::size_t>(
                        static_cast<long long>(e) + d)) %
           e;
  };

  // residual: r = v_or_rcoarse - A u  (A = -laplace, 7-point, h = 1).
  auto residual = [&](std::size_t e, std::size_t off, bool finest) {
    for (std::size_t x = 0; x < e; ++x)
      for (std::size_t y = 0; y < e; ++y)
        for (std::size_t z = 0; z < e; ++z) {
          const double uc = u.load(off + idx(e, x, y, z));
          const double lap =
              u.load(off + idx(e, wrap(x, e, -1), y, z)) +
              u.load(off + idx(e, wrap(x, e, +1), y, z)) +
              u.load(off + idx(e, x, wrap(y, e, -1), z)) +
              u.load(off + idx(e, x, wrap(y, e, +1), z)) +
              u.load(off + idx(e, x, y, wrap(z, e, -1))) +
              u.load(off + idx(e, x, y, wrap(z, e, +1))) - 6.0 * uc;
          const double rhs =
              finest ? v.load(idx(e, x, y, z)) : r.load(off + idx(e, x, y, z));
          // Store the residual in place of the level's rhs copy: the
          // smoother below consumes it immediately.
          r.store(off + idx(e, x, y, z), rhs + lap);
        }
    const double bytes = static_cast<double>(e * e * e) * sizeof(double);
    sim::KernelPhase phase;
    phase.name = "mg::resid";
    phase.streams.push_back(seq_rw(0, 7.0 * bytes, 0.0));  // u stencil
    phase.streams.push_back(finest ? seq_rw(2, bytes, 0.0)
                                   : seq_rw(1, bytes, 0.0));
    phase.streams.push_back(seq_rw(1, 0.0, bytes));
    phase.flops = 8.0 * static_cast<double>(e * e * e);
    trace.phases.push_back(phase);
  };

  // weighted-Jacobi smoothing: u += omega/6 * r, then recompute r.
  auto smooth = [&](std::size_t e, std::size_t off) {
    constexpr double kOmega = 0.8;
    for (std::size_t i = 0; i < e * e * e; ++i)
      u.store(off + i, u.load(off + i) + kOmega / 6.0 * r.load(off + i));
    const double bytes = static_cast<double>(e * e * e) * sizeof(double);
    sim::KernelPhase phase;
    phase.name = "mg::psinv";
    phase.streams.push_back(seq_rw(0, bytes, bytes));
    phase.streams.push_back(seq_rw(1, bytes, 0.0));
    phase.flops = 2.0 * static_cast<double>(e * e * e);
    trace.phases.push_back(phase);
  };

  // full-weighting restriction of r to the next level (stored in r there).
  auto restrict_r = [&](std::size_t e, std::size_t off, std::size_t off_c) {
    const std::size_t ec = e / 2;
    for (std::size_t x = 0; x < ec; ++x)
      for (std::size_t y = 0; y < ec; ++y)
        for (std::size_t z = 0; z < ec; ++z) {
          double acc = 0.0;
          for (int dx = 0; dx < 2; ++dx)
            for (int dy = 0; dy < 2; ++dy)
              for (int dz = 0; dz < 2; ++dz)
                acc += r.load(off + idx(e, 2 * x + static_cast<std::size_t>(dx),
                                        2 * y + static_cast<std::size_t>(dy),
                                        2 * z + static_cast<std::size_t>(dz)));
          r.store(off_c + idx(ec, x, y, z), acc / 8.0);
        }
    const double bytes_f = static_cast<double>(e * e * e) * sizeof(double);
    const double bytes_c = bytes_f / 8.0;
    sim::KernelPhase phase;
    phase.name = "mg::rprj3";
    phase.streams.push_back(seq_rw(1, bytes_f, bytes_c));
    phase.flops = static_cast<double>(e * e * e);
    trace.phases.push_back(phase);
  };

  // trilinear-ish prolongation: u_fine += injected coarse correction.
  auto prolong = [&](std::size_t e_c, std::size_t off_c, std::size_t off_f) {
    const std::size_t ef = e_c * 2;
    for (std::size_t x = 0; x < ef; ++x)
      for (std::size_t y = 0; y < ef; ++y)
        for (std::size_t z = 0; z < ef; ++z) {
          const double corr = u.load(off_c + idx(e_c, x / 2, y / 2, z / 2));
          u.store(off_f + idx(ef, x, y, z),
                  u.load(off_f + idx(ef, x, y, z)) + corr);
        }
    const double bytes_f = static_cast<double>(ef * ef * ef) * sizeof(double);
    sim::KernelPhase phase;
    phase.name = "mg::interp";
    phase.streams.push_back(seq_rw(0, bytes_f / 8.0 + bytes_f, bytes_f));
    phase.flops = static_cast<double>(ef * ef * ef);
    trace.phases.push_back(phase);
  };

  auto norm_r = [&](std::size_t e, std::size_t off) {
    double acc = 0.0;
    for (std::size_t i = 0; i < e * e * e; ++i) {
      const double x = r.data()[off + i];
      acc += x * x;
    }
    return std::sqrt(acc / static_cast<double>(e * e * e));
  };

  // Level offsets into u/r.
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> edges;
  {
    std::size_t off = 0;
    for (std::size_t e = n; e >= 4; e /= 2) {
      offsets.push_back(off);
      edges.push_back(e);
      off += e * e * e;
    }
  }
  const int levels = static_cast<int>(edges.size());

  residual(n, 0, true);
  MiniMgResult result;
  result.initial_residual = norm_r(n, 0);

  for (int cycle = 0; cycle < config.v_cycles; ++cycle) {
    // Downstroke: smooth + restrict.
    for (int l = 0; l < levels - 1; ++l) {
      residual(edges[static_cast<std::size_t>(l)],
               offsets[static_cast<std::size_t>(l)], l == 0);
      for (int s = 0; s < config.pre_smooth; ++s)
        smooth(edges[static_cast<std::size_t>(l)],
               offsets[static_cast<std::size_t>(l)]);
      residual(edges[static_cast<std::size_t>(l)],
               offsets[static_cast<std::size_t>(l)], l == 0);
      restrict_r(edges[static_cast<std::size_t>(l)],
                 offsets[static_cast<std::size_t>(l)],
                 offsets[static_cast<std::size_t>(l) + 1]);
      // Zero the coarse-level initial guess.
      const std::size_t ec = edges[static_cast<std::size_t>(l) + 1];
      for (std::size_t i = 0; i < ec * ec * ec; ++i)
        u.store(offsets[static_cast<std::size_t>(l) + 1] + i, 0.0);
    }
    // Coarsest level: a few smoothing sweeps.
    for (int s = 0; s < 4; ++s)
      smooth(edges.back(), offsets.back());
    // Upstroke: prolong + smooth.
    for (int l = levels - 2; l >= 0; --l) {
      prolong(edges[static_cast<std::size_t>(l) + 1],
              offsets[static_cast<std::size_t>(l) + 1],
              offsets[static_cast<std::size_t>(l)]);
      residual(edges[static_cast<std::size_t>(l)],
               offsets[static_cast<std::size_t>(l)], l == 0);
      for (int s = 0; s < config.post_smooth; ++s)
        smooth(edges[static_cast<std::size_t>(l)],
               offsets[static_cast<std::size_t>(l)]);
    }
  }
  residual(n, 0, true);
  result.final_residual = norm_r(n, 0);
  result.converging = result.final_residual < result.initial_residual;
  result.trace = std::move(trace);
  return result;
}

MiniIsResult run_mini_is(shim::ShimAllocator& shim, const MiniIsConfig& config,
                         sample::IbsSampler* sampler) {
  HMPT_REQUIRE(config.num_keys >= 2, "IS needs >= 2 keys");
  HMPT_REQUIRE(config.max_key >= 2, "IS needs >= 2 key values");

  TrackedArray<std::uint32_t> keys(shim, "is::keys", config.num_keys);
  TrackedArray<std::uint32_t> sorted(shim, "is::sorted", config.num_keys);
  TrackedArray<std::uint32_t> histogram(shim, "is::histogram",
                                        config.max_key);
  TrackedArray<std::uint32_t> rank(shim, "is::rank", config.max_key);

  const pools::PageMap map = shim.pool().page_map_snapshot();
  if (sampler != nullptr) {
    keys.attach_sampler(sampler, &map);
    sorted.attach_sampler(sampler, &map);
    histogram.attach_sampler(sampler, &map);
    rank.attach_sampler(sampler, &map);
  }

  Rng rng(config.seed);
  for (std::size_t i = 0; i < config.num_keys; ++i)
    keys.store(i, static_cast<std::uint32_t>(rng.next_below(config.max_key)));

  sim::PhaseTrace trace;
  MiniIsResult result;

  for (int it = 0; it < config.iterations; ++it) {
    // Histogram pass: sequential key reads, random histogram updates
    // (blocking disabled, as in the paper's modified is.C*).
    for (std::size_t k = 0; k < config.max_key; ++k) histogram.store(k, 0);
    for (std::size_t i = 0; i < config.num_keys; ++i) {
      const std::uint32_t key = keys.load(i);
      histogram.store(key, histogram.load(key) + 1);
    }
    {
      sim::KernelPhase phase;
      phase.name = "is::count";
      const double kb = static_cast<double>(config.num_keys) *
                        sizeof(std::uint32_t);
      phase.streams.push_back(seq_rw(0, kb, 0.0));
      sim::StreamAccess hist;
      hist.group = 2;
      hist.bytes_read = kb;
      hist.bytes_written = kb;
      hist.pattern = sim::AccessPattern::Random;
      phase.streams.push_back(hist);
      trace.phases.push_back(phase);
    }

    // Exclusive prefix sum into rank.
    std::uint32_t running = 0;
    for (std::size_t k = 0; k < config.max_key; ++k) {
      rank.store(k, running);
      running += histogram.load(k);
    }
    {
      sim::KernelPhase phase;
      phase.name = "is::rank";
      const double hb = static_cast<double>(config.max_key) *
                        sizeof(std::uint32_t);
      phase.streams.push_back(seq_rw(2, hb, 0.0));
      phase.streams.push_back(seq_rw(3, 0.0, hb));
      trace.phases.push_back(phase);
    }

    // Permutation pass: sequential key reads, random writes into sorted.
    for (std::size_t i = 0; i < config.num_keys; ++i) {
      const std::uint32_t key = keys.load(i);
      const std::uint32_t pos = rank.load(key);
      rank.store(key, pos + 1);
      sorted.store(pos, key);
    }
    {
      sim::KernelPhase phase;
      phase.name = "is::permute";
      const double kb = static_cast<double>(config.num_keys) *
                        sizeof(std::uint32_t);
      phase.streams.push_back(seq_rw(0, kb, 0.0));
      sim::StreamAccess scatter;
      scatter.group = 1;
      scatter.bytes_written = kb;
      scatter.pattern = sim::AccessPattern::Random;
      phase.streams.push_back(scatter);
      sim::StreamAccess ranks;
      ranks.group = 3;
      ranks.bytes_read = kb;
      ranks.bytes_written = kb;
      ranks.pattern = sim::AccessPattern::Random;
      phase.streams.push_back(ranks);
      trace.phases.push_back(phase);
    }
  }

  // Verify sortedness and the permutation property.
  for (std::size_t i = 1; i < config.num_keys; ++i)
    if (sorted.data()[i - 1] > sorted.data()[i]) result.sorted = false;
  std::vector<std::size_t> check_in(config.max_key, 0),
      check_out(config.max_key, 0);
  for (std::size_t i = 0; i < config.num_keys; ++i) {
    ++check_in[keys.data()[i]];
    ++check_out[sorted.data()[i]];
  }
  result.permutation_ok = check_in == check_out;
  result.trace = std::move(trace);
  return result;
}

}  // namespace hmpt::workloads
