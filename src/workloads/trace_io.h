// trace_io.h — (de)serialisation of recorded profiles.
//
// The paper's workflow is two-run: a profiling run produces the allocation
// inventory and access statistics, the driver script computes a plan, and
// the next run applies it. This module persists the intermediate artefact
// — a workload's groups + PhaseTrace — in a line-oriented text format so
// the two runs can be separate processes (or separate machines).
//
// Format (one directive per line, '#' comments):
//   workload <name>
//   group <id> <label> <bytes>
//   phase <name> <flops> <vectorized:0|1>
//   stream <group> <bytes_read> <bytes_written> <pattern> <nt:0|1> <ws>
// Streams attach to the most recent phase; patterns are
// sequential|random|chase.
#pragma once

#include <iosfwd>
#include <string>

#include "workloads/recorded.h"

namespace hmpt::workloads {

/// Serialise a workload (its groups and trace) to the profile format.
std::string serialize_workload(const Workload& workload);
void write_workload(std::ostream& os, const Workload& workload);

/// Parse a profile back into an analysable workload.
RecordedWorkload parse_workload(const std::string& text);
RecordedWorkload parse_workload(std::istream& is);

/// Convenience: file round trip.
void save_workload(const std::string& path, const Workload& workload);
RecordedWorkload load_workload(const std::string& path);

}  // namespace hmpt::workloads
