#include "workloads/unstructured.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace hmpt::workloads {

namespace {

sim::StreamAccess stream_of(int group, double read_bytes,
                            double write_bytes, sim::AccessPattern pattern) {
  sim::StreamAccess s;
  s.group = group;
  s.bytes_read = read_bytes;
  s.bytes_written = write_bytes;
  s.pattern = pattern;
  return s;
}

}  // namespace

MiniUaResult run_mini_ua(shim::ShimAllocator& shim, const MiniUaConfig& config,
                         sample::IbsSampler* sampler) {
  HMPT_REQUIRE(config.base_vertices >= 16, "mesh too small");
  HMPT_REQUIRE(config.levels >= 1 && config.levels <= 8,
               "levels out of range");
  Rng rng(config.seed);
  MiniUaResult result;
  sim::PhaseTrace trace;

  // Per-level storage; TrackedArray is move-only, so keep them in vectors
  // of one-element batches per level.
  struct Level {
    std::unique_ptr<TrackedArray<std::uint32_t>> xadj;
    std::unique_ptr<TrackedArray<std::uint32_t>> adjncy;
    std::unique_ptr<TrackedArray<double>> x;
    std::unique_ptr<TrackedArray<double>> b;
    std::unique_ptr<TrackedArray<double>> diag;
    std::size_t vertices = 0;
    std::size_t edges = 0;
  };
  std::vector<Level> levels;

  const pools::PageMap* map = nullptr;
  pools::PageMap map_storage;

  for (int l = 0; l < config.levels; ++l) {
    Level level;
    level.vertices = config.base_vertices << l;  // refinement doubles
    const std::size_t degree = static_cast<std::size_t>(config.avg_degree);
    level.edges = level.vertices * degree;
    const std::string prefix = "ua::L" + std::to_string(l) + "::";

    level.xadj = std::make_unique<TrackedArray<std::uint32_t>>(
        shim, prefix + "xadj", level.vertices + 1);
    level.adjncy = std::make_unique<TrackedArray<std::uint32_t>>(
        shim, prefix + "adjncy", level.edges);
    level.x = std::make_unique<TrackedArray<double>>(shim, prefix + "x",
                                                     level.vertices);
    level.b = std::make_unique<TrackedArray<double>>(shim, prefix + "b",
                                                     level.vertices);
    level.diag = std::make_unique<TrackedArray<double>>(
        shim, prefix + "diag", level.vertices);
    // Small metadata arrays: UA is full of these (they make up most of
    // the 56 filtered allocations and must be folded by the tuner).
    auto* marker = shim.allocate_array<std::uint32_t>(
        prefix + "refine_marker", 64);
    auto* weights = shim.allocate_array<double>(prefix + "quad_weights",
                                                16);
    result.allocations_made += 7;

    // Random mesh: each vertex gets `degree` random neighbours (CSR).
    for (std::size_t v = 0; v <= level.vertices; ++v)
      level.xadj->store(v, static_cast<std::uint32_t>(v * degree));
    for (std::size_t e = 0; e < level.edges; ++e)
      level.adjncy->store(
          e, static_cast<std::uint32_t>(rng.next_below(level.vertices)));
    for (std::size_t v = 0; v < level.vertices; ++v) {
      level.x->store(v, 0.0);
      level.b->store(v, rng.next_double() - 0.5);
      // Strong diagonal keeps Jacobi convergent on the random graph.
      level.diag->store(v, static_cast<double>(degree) + 2.0);
    }
    for (std::size_t i = 0; i < 64; ++i)
      marker[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < 16; ++i) weights[i] = 1.0 / 16.0;
    shim.deallocate(marker);
    shim.deallocate(weights);

    levels.push_back(std::move(level));
  }

  map_storage = shim.pool().page_map_snapshot();
  map = &map_storage;
  if (sampler != nullptr) {
    for (auto& level : levels) {
      level.xadj->attach_sampler(sampler, map);
      level.adjncy->attach_sampler(sampler, map);
      level.x->attach_sampler(sampler, map);
      level.b->attach_sampler(sampler, map);
      level.diag->attach_sampler(sampler, map);
    }
  }

  // Jacobi relaxation on the random graph Laplacian-like system
  //   diag(v) x_v + sum_nb (-1) x_nb = b_v.
  const auto residual_norm = [&](Level& level) {
    double acc = 0.0;
    for (std::size_t v = 0; v < level.vertices; ++v) {
      double ax = level.diag->data()[v] * level.x->data()[v];
      const auto begin = level.xadj->data()[v];
      const auto end = level.xadj->data()[v + 1];
      for (auto e = begin; e < end; ++e)
        ax -= level.x->data()[level.adjncy->data()[e]];
      const double r = level.b->data()[v] - ax;
      acc += r * r;
    }
    return std::sqrt(acc / static_cast<double>(level.vertices));
  };

  Level& finest = levels.back();
  result.initial_residual = residual_norm(finest);

  std::vector<double> x_new;
  for (int l = 0; l < config.levels; ++l) {
    Level& level = levels[static_cast<std::size_t>(l)];
    x_new.assign(level.vertices, 0.0);
    for (int sweep = 0; sweep < config.relax_sweeps; ++sweep) {
      for (std::size_t v = 0; v < level.vertices; ++v) {
        double acc = level.b->load(v);
        const auto begin = level.xadj->load(v);
        const auto end = level.xadj->load(v + 1);
        for (auto e = begin; e < end; ++e)
          acc += level.x->load(level.adjncy->load(e));  // random gather
        x_new[v] = acc / level.diag->load(v);
      }
      for (std::size_t v = 0; v < level.vertices; ++v)
        level.x->store(v, x_new[v]);

      // Traffic of one sweep: CSR metadata streamed, solution gathered.
      sim::KernelPhase phase;
      phase.name = "ua::relax_L" + std::to_string(l);
      const double vb = static_cast<double>(level.vertices);
      phase.streams.push_back(stream_of(
          5 * l + 0, vb * sizeof(std::uint32_t), 0.0,
          sim::AccessPattern::Sequential));  // xadj
      phase.streams.push_back(stream_of(
          5 * l + 1,
          static_cast<double>(level.edges) * sizeof(std::uint32_t), 0.0,
          sim::AccessPattern::Sequential));  // adjncy
      phase.streams.push_back(stream_of(
          5 * l + 2, static_cast<double>(level.edges) * kCacheLine,
          vb * sizeof(double), sim::AccessPattern::Random));  // x gathers
      phase.streams.push_back(stream_of(5 * l + 3, vb * sizeof(double),
                                        0.0,
                                        sim::AccessPattern::Sequential));
      phase.streams.push_back(stream_of(5 * l + 4, vb * sizeof(double),
                                        0.0,
                                        sim::AccessPattern::Sequential));
      phase.flops = static_cast<double>(level.edges) + 2.0 * vb;
      trace.phases.push_back(std::move(phase));
    }
  }

  result.final_residual = residual_norm(finest);
  result.converging = result.final_residual < result.initial_residual;
  result.trace = std::move(trace);
  return result;
}

}  // namespace hmpt::workloads
