// random_access.h — random indirect summation (Fig. 4).
//
// Sums values at precomputed random indices: accesses are independent, so
// out-of-order cores keep several misses in flight and HBM's bandwidth can
// overcome its latency handicap at high thread counts — the crossover the
// paper uses to argue when HBM pays off for irregular access.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

/// Phase builder: `accesses` independent random 64 B reads over group 0
/// (the data array); the index array (group 1) is streamed sequentially.
sim::KernelPhase make_random_sum_phase(double data_bytes, double accesses);

class RandomSumWorkload final : public Workload {
 public:
  RandomSumWorkload(double data_bytes, double accesses);
  std::string name() const override { return "RandomIndirectSum"; }
  std::vector<GroupInfo> groups() const override;
  sim::PhaseTrace trace() const override;

 private:
  double data_bytes_;
  double accesses_;
};

/// Executable mini kernel; returns the checksum and the matching
/// reference sum computed without instrumentation.
struct MiniRandomSumResult {
  double sum = 0.0;
  double reference = 0.0;
  sim::PhaseTrace trace;
};
MiniRandomSumResult run_mini_random_sum(shim::ShimAllocator& shim,
                                        std::size_t elements,
                                        std::size_t accesses,
                                        std::uint64_t seed = 2,
                                        sample::IbsSampler* sampler = nullptr);

}  // namespace hmpt::workloads
