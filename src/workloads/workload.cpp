#include "workloads/workload.h"

#include "common/error.h"

namespace hmpt::workloads {

double Workload::total_bytes() const {
  double total = 0.0;
  for (const auto& g : groups()) total += g.bytes;
  return total;
}

double Workload::footprint_fraction(int group) const {
  const auto gs = groups();
  HMPT_REQUIRE(group >= 0 && group < static_cast<int>(gs.size()),
               "group out of range");
  const double total = total_bytes();
  if (total <= 0.0) return 0.0;
  return gs[static_cast<std::size_t>(group)].bytes / total;
}

}  // namespace hmpt::workloads
