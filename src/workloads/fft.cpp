#include "workloads/fft.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::workloads {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(Complex* data, std::size_t n, bool inverse) {
  HMPT_REQUIRE(is_pow2(n), "FFT length must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

void fft_inplace(std::vector<Complex>& data, bool inverse) {
  fft_inplace(data.data(), data.size(), inverse);
}

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse, std::vector<Complex>& scratch) {
  HMPT_REQUIRE(stride >= 1, "stride must be >= 1");
  if (stride == 1) {
    fft_inplace(data, n, inverse);
    return;
  }
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = data[i * stride];
  fft_inplace(scratch.data(), n, inverse);
  for (std::size_t i = 0; i < n; ++i) data[i * stride] = scratch[i];
}

void fft3d_inplace(Complex* data, std::size_t nx, std::size_t ny,
                   std::size_t nz, bool inverse) {
  HMPT_REQUIRE(is_pow2(nx) && is_pow2(ny) && is_pow2(nz),
               "3-D FFT dims must be powers of two");
  std::vector<Complex> scratch;
  // z axis (contiguous rows).
  for (std::size_t x = 0; x < nx; ++x)
    for (std::size_t y = 0; y < ny; ++y)
      fft_inplace(data + (x * ny + y) * nz, nz, inverse);
  // y axis (stride nz).
  for (std::size_t x = 0; x < nx; ++x)
    for (std::size_t z = 0; z < nz; ++z)
      fft_strided(data + x * ny * nz + z, ny, nz, inverse, scratch);
  // x axis (stride ny*nz).
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t z = 0; z < nz; ++z)
      fft_strided(data + y * nz + z, nx, ny * nz, inverse, scratch);
}

double fft_flops(std::size_t n) {
  if (n <= 1) return 0.0;
  return 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

double fft3d_flops(std::size_t nx, std::size_t ny, std::size_t nz) {
  const double per_x = fft_flops(nx) * static_cast<double>(ny * nz);
  const double per_y = fft_flops(ny) * static_cast<double>(nx * nz);
  const double per_z = fft_flops(nz) * static_cast<double>(nx * ny);
  return per_x + per_y + per_z;
}

}  // namespace hmpt::workloads
