#include "workloads/recorded.h"

#include "common/error.h"

namespace hmpt::workloads {

RecordedWorkload::RecordedWorkload(std::string name,
                                   std::vector<GroupInfo> groups,
                                   sim::PhaseTrace trace)
    : name_(std::move(name)),
      groups_(std::move(groups)),
      trace_(std::move(trace)) {
  HMPT_REQUIRE(!groups_.empty(), "recorded workload needs groups");
  HMPT_REQUIRE(trace_.num_groups() <= static_cast<int>(groups_.size()),
               "trace references undeclared groups");
}

void RecordedWorkload::remap_groups(const std::vector<int>& remap,
                                    std::vector<GroupInfo> new_groups) {
  HMPT_REQUIRE(!new_groups.empty(), "remap needs target groups");
  const int old_arity = trace_.num_groups();
  HMPT_REQUIRE(static_cast<int>(remap.size()) >= old_arity,
               "remap does not cover all trace groups");
  for (int target : remap)
    HMPT_REQUIRE(target >= 0 &&
                     target < static_cast<int>(new_groups.size()),
                 "remap target out of range");
  for (auto& phase : trace_.phases)
    for (auto& s : phase.streams)
      s.group = remap[static_cast<std::size_t>(s.group)];
  groups_ = std::move(new_groups);
}

}  // namespace hmpt::workloads
