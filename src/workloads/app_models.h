// app_models.h — paper-scale traffic models of the evaluated applications.
//
// The paper evaluates six NPB benchmarks and k-Wave (Table I) on real
// hardware. Those binaries and the machine are not available offline, so
// each application is substituted by a calibrated traffic descriptor: its
// allocation groups (with the paper's footprint split) and a PhaseTrace
// whose per-group sequential/pointer-chase/compute composition is solved in
// closed form so the simulated placement sweep reproduces Table II (max
// speedup, HBM-only speedup, 90 %-speedup HBM usage) and the summary-view
// shapes of Figs. 9-15. The solve is documented per application in the .cpp
// and verified by tests/calibration_test.cpp.
#pragma once

#include "simmem/simulator.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

/// Table II row (paper-reported values) for comparison in reports/tests.
struct PaperResult {
  double max_speedup = 0.0;
  double hbm_only_speedup = 0.0;
  double usage90 = 0.0;  ///< fraction of data in HBM at >= 90 % of max
};

/// One benchmark of the evaluation suite.
struct AppInfo {
  std::string name;     ///< e.g. "NPB: Multi-Grid"
  std::string variant;  ///< e.g. "mg.D"
  double memory_bytes = 0.0;
  int filtered_allocations = 0;  ///< Table I column
  PaperResult paper;
  WorkloadPtr workload;
  sim::ExecutionContext context;  ///< threads/tiles the paper ran with
};

/// Traffic of one group inside one synthetic phase, expressed as a fraction
/// of the application's all-DDR runtime (the builder converts fractions to
/// bytes with the platform's reference bandwidths).
struct StreamSpec {
  int group = -1;
  double seq_time = 0.0;    ///< sequential-stream DDR-time fraction
  double chase_time = 0.0;  ///< pointer-chase DDR-time fraction
};

struct PhaseSpec {
  std::string name;
  std::vector<StreamSpec> streams;
  double compute_time = 0.0;  ///< placement-independent compute fraction
};

struct GroupSpec {
  std::string label;
  double footprint_fraction = 0.0;
};

/// Build a synthetic application from time-fraction specs. `runtime` is the
/// absolute all-DDR runtime the fractions refer to; `sim` supplies the
/// reference bandwidth/latency/compute rates at `ctx`.
WorkloadPtr make_synthetic_app(std::string name, double total_bytes,
                               std::vector<GroupSpec> groups,
                               std::vector<PhaseSpec> phases, double runtime,
                               const sim::MachineSimulator& sim,
                               const sim::ExecutionContext& ctx);

/// The individual applications (calibration constants in the .cpp).
AppInfo make_mg_model(const sim::MachineSimulator& sim);
AppInfo make_bt_model(const sim::MachineSimulator& sim);
AppInfo make_lu_model(const sim::MachineSimulator& sim);
AppInfo make_sp_model(const sim::MachineSimulator& sim);
AppInfo make_ua_model(const sim::MachineSimulator& sim);
AppInfo make_is_model(const sim::MachineSimulator& sim);
AppInfo make_kwave_model(const sim::MachineSimulator& sim);

/// All Table I rows in paper order.
std::vector<AppInfo> paper_benchmark_suite(const sim::MachineSimulator& sim);

/// Rough DRAM-side arithmetic intensity (flops per byte) of an app's trace;
/// used for the roofline points of Fig. 8.
double arithmetic_intensity(const Workload& workload);

}  // namespace hmpt::workloads
