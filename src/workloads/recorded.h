// recorded.h — a Workload built from a profiling run.
//
// The driver profiles the real application once through the shim (recorded
// trace + registry groups) and then analyses the recorded behaviour
// offline against arbitrary placements — the "analysis from a previous
// run" mode of the paper's tool. Also supports remapping the trace's group
// ids when the grouping step reorders or folds allocations.
#pragma once

#include "workloads/workload.h"

namespace hmpt::workloads {

class RecordedWorkload final : public Workload {
 public:
  RecordedWorkload(std::string name, std::vector<GroupInfo> groups,
                   sim::PhaseTrace trace);

  std::string name() const override { return name_; }
  std::vector<GroupInfo> groups() const override { return groups_; }
  sim::PhaseTrace trace() const override { return trace_; }

  /// Rewrite stream group ids: new_id = remap[old_id]. Ids mapping to the
  /// same value are folded into one group. `remap` must cover every id the
  /// trace references.
  void remap_groups(const std::vector<int>& remap,
                    std::vector<GroupInfo> new_groups);

  /// Scale the recorded traffic, e.g. to extrapolate a short profiling run
  /// to the production iteration count.
  void scale(double factor) { trace_.scale(factor); }

 private:
  std::string name_;
  std::vector<GroupInfo> groups_;
  sim::PhaseTrace trace_;
};

}  // namespace hmpt::workloads
