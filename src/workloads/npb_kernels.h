// npb_kernels.h — executable miniatures of NPB kernels.
//
// The paper evaluates unmodified NPB 3.4 OMP binaries; here two
// representative kernels are implemented for real so the full pipeline
// (shim interception -> IBS sampling -> grouping -> placement sweep) can be
// exercised end-to-end in tests and examples:
//   * MultiGrid: a V-cycle for the 3-D Poisson equation with the same three
//     dominant allocations as mg.D (solution u, residual r, rhs v);
//   * IntegerSort: a counting/bucket sort matching is.C's four significant
//     arrays (keys, sorted keys, histogram, bucket pointers) with blocking
//     disabled, i.e. one global histogram pass like the paper's is.C*.
// Paper-scale traffic descriptors for all seven applications live in
// app_models.h.
#pragma once

#include <cstdint>

#include "simmem/phase.h"
#include "workloads/workload.h"

namespace hmpt::workloads {

// ---------------------------------------------------------------- MultiGrid
struct MiniMgConfig {
  std::size_t n = 32;  ///< finest grid edge (power of two), n^3 cells
  int v_cycles = 2;
  int pre_smooth = 1;
  int post_smooth = 1;
};

struct MiniMgResult {
  double initial_residual = 0.0;
  double final_residual = 0.0;
  bool converging = false;  ///< final < initial
  sim::PhaseTrace trace;
};

/// Solve -laplace(u) = v on a periodic n^3 grid with V-cycles; groups are
/// named mg::{u,r,v}.
MiniMgResult run_mini_mg(shim::ShimAllocator& shim, const MiniMgConfig& config,
                         sample::IbsSampler* sampler = nullptr);

// -------------------------------------------------------------- IntegerSort
struct MiniIsConfig {
  std::size_t num_keys = 1u << 16;
  std::uint32_t max_key = 1u << 11;
  int iterations = 2;
  std::uint64_t seed = 3;
};

struct MiniIsResult {
  bool sorted = true;
  bool permutation_ok = true;  ///< output is a permutation of the input
  sim::PhaseTrace trace;
};

/// Counting sort with groups is::{keys,sorted,histogram,rank}.
MiniIsResult run_mini_is(shim::ShimAllocator& shim, const MiniIsConfig& config,
                         sample::IbsSampler* sampler = nullptr);

}  // namespace hmpt::workloads
