// machine.h — simulated NUMA topology of heterogeneous-memory platforms.
//
// Models the structure in Fig. 1 of the paper: a dual Intel Xeon Max 9468 in
// flat SNC4 mode exposes 16 NUMA nodes — per tile one DDR node (32 GB,
// dual-channel DDR5) and one HBM node (16 GB HBM2e). The tuner and the
// memory-system model consume this as pure data: pool kinds, capacities,
// peak bandwidths, and core counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hmpt::topo {

/// Kind of a physical memory pool. The paper's platform has the first two;
/// CXL models a third, capacity-rich but slower tier (CXL- or NVM-class
/// expansion memory). The enum value doubles as the pool's *tier index* in
/// the tuner's k-tier placement space: tier 0 (DDR) is always the baseline
/// the paper's speedups are relative to, tier 1 is HBM — exactly the bit
/// semantics of the original two-tier mask — and higher tiers extend the
/// space without disturbing two-tier runs.
enum class PoolKind : std::uint8_t { DDR = 0, HBM = 1, CXL = 2 };

inline constexpr int kNumPoolKinds = 3;

const char* to_string(PoolKind kind);
PoolKind pool_kind_from_string(const std::string& name);

/// Static description of one memory pool attached to a NUMA node.
struct MemoryPoolDesc {
  PoolKind kind = PoolKind::DDR;
  double capacity_bytes = 0.0;
  /// Theoretical peak bandwidth of this node's memory (bytes/s).
  double peak_bandwidth = 0.0;
};

/// One NUMA node: a memory pool, optionally with CPU cores attached.
struct NumaNode {
  int id = -1;
  int socket = -1;
  int tile = -1;  // tile this node's memory hangs off
  MemoryPoolDesc pool;
  int num_cores = 0;  // 0 for memory-only nodes (HBM nodes in flat mode)
};

/// One CPU tile (chiplet): cores plus its local DDR and HBM NUMA nodes.
struct Tile {
  int id = -1;
  int socket = -1;
  int num_cores = 0;
  int first_core = 0;
  int ddr_node = -1;
  int hbm_node = -1;
};

/// Whole-machine topology.
class Machine {
 public:
  Machine(std::string name, std::vector<NumaNode> nodes,
          std::vector<Tile> tiles, int num_sockets);

  const std::string& name() const { return name_; }
  int num_sockets() const { return num_sockets_; }
  int num_tiles() const { return static_cast<int>(tiles_.size()); }
  int tiles_per_socket() const { return num_tiles() / num_sockets_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_cores() const;
  int cores_per_tile() const;

  const std::vector<NumaNode>& nodes() const { return nodes_; }
  const std::vector<Tile>& tiles() const { return tiles_; }
  const NumaNode& node(int id) const;
  const Tile& tile(int id) const;

  /// Number of memory tiers this machine exposes to the placement tuner:
  /// 1 + the highest PoolKind value present among the nodes. Two-pool
  /// DDR/HBM machines report 2 (the paper's search space); machines with a
  /// CXL-class pool report 3. Tiers are the contiguous PoolKind values
  /// 0..num_memory_tiers()-1; a machine must provide every tier below its
  /// highest one (enforced at construction).
  int num_memory_tiers() const;
  /// Whether any node carries a pool of `kind`.
  bool has_kind(PoolKind kind) const;

  /// All node ids whose pool is of `kind` (optionally restricted to socket).
  std::vector<int> nodes_of_kind(PoolKind kind, int socket = -1) const;

  /// Total capacity of all pools of `kind` (optionally per socket).
  double capacity_of_kind(PoolKind kind, int socket = -1) const;

  /// Sum of theoretical peak bandwidth over pools of `kind`
  /// (optionally per socket).
  double peak_bandwidth_of_kind(PoolKind kind, int socket = -1) const;

  /// SLIT-style relative distance between two nodes (10 = local).
  int distance(int node_a, int node_b) const;

  /// Human-readable topology dump (one line per node).
  std::string describe() const;

 private:
  std::string name_;
  std::vector<NumaNode> nodes_;
  std::vector<Tile> tiles_;
  int num_sockets_;
};

/// The paper's platform: dual Intel Xeon Max 9468, flat SNC4 mode (Fig. 1).
/// 2 sockets x 4 tiles x 12 cores; per tile 32 GB DDR5 (76.8 GB/s peak) and
/// 16 GB HBM2e (409.6 GB/s peak). Nodes 0-7 are DDR (with cores), 8-15 HBM.
Machine xeon_max_9468_duo_flat_snc4();

/// Single-socket variant (4 tiles, nodes 0-3 DDR / 4-7 HBM) used by the
/// single-CPU experiments (Figs. 2-5, 8).
Machine xeon_max_9468_single_flat_snc4();

/// A hypothetical flat machine with one DDR and one HBM node, convenient in
/// unit tests and the quickstart example.
Machine two_pool_testbed(double ddr_capacity = 64.0 * GiB,
                         double hbm_capacity = 16.0 * GiB);

/// Three-tier machine: a single-socket Xeon Max 9468 (4 tiles with the
/// paper's DDR5 + HBM2e nodes) extended by one socket-level CXL memory
/// expander node — 128 GB of CXL-attached DRAM at 32 GB/s peak behind a
/// PCIe 5.0 x8-class link, with no local cores (tile -1). The smallest
/// realistic HBM / DDR / CXL platform; the tuner enumerates its 3^n
/// placement space.
Machine cxl_tiered_xeon_max(double cxl_capacity = 128.0 * GiB,
                            double cxl_peak = 32.0 * GB);

/// A hypothetical flat machine with one node per tier (DDR, HBM, CXL),
/// convenient in unit tests of the k-tier placement space.
Machine three_pool_testbed(double ddr_capacity = 64.0 * GiB,
                           double hbm_capacity = 16.0 * GiB,
                           double cxl_capacity = 256.0 * GiB);

/// A Knights-Landing-like platform in SNC4 flat mode: the generation the
/// related work (Laghari et al., ADAMANT) targeted. 4 quadrants x 16 cores
/// with 4 GB MCDRAM (exposed as the HBM kind, ~115 GB/s peak each) and
/// 24 GB DDR4 (~25.6 GB/s peak each). Demonstrates that the tuner is not
/// tied to the Sapphire Rapids presets.
Machine knl_like_flat_snc4();

}  // namespace hmpt::topo
