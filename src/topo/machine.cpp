#include "topo/machine.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace hmpt::topo {

const char* to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::DDR:
      return "DDR";
    case PoolKind::HBM:
      return "HBM";
    case PoolKind::CXL:
      return "CXL";
  }
  return "?";
}

PoolKind pool_kind_from_string(const std::string& name) {
  if (name == "DDR" || name == "ddr") return PoolKind::DDR;
  if (name == "HBM" || name == "hbm") return PoolKind::HBM;
  if (name == "CXL" || name == "cxl") return PoolKind::CXL;
  raise("unknown pool kind: " + name);
}

Machine::Machine(std::string name, std::vector<NumaNode> nodes,
                 std::vector<Tile> tiles, int num_sockets)
    : name_(std::move(name)),
      nodes_(std::move(nodes)),
      tiles_(std::move(tiles)),
      num_sockets_(num_sockets) {
  HMPT_REQUIRE(num_sockets_ >= 1, "machine needs at least one socket");
  HMPT_REQUIRE(!nodes_.empty(), "machine needs at least one NUMA node");
  HMPT_REQUIRE(!tiles_.empty(), "machine needs at least one tile");
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i)
    HMPT_REQUIRE(nodes_[static_cast<std::size_t>(i)].id == i,
                 "node ids must be dense and ordered");
  for (int i = 0; i < static_cast<int>(tiles_.size()); ++i) {
    const Tile& t = tiles_[static_cast<std::size_t>(i)];
    HMPT_REQUIRE(t.id == i, "tile ids must be dense and ordered");
    HMPT_REQUIRE(t.ddr_node >= 0 && t.ddr_node < num_nodes(),
                 "tile DDR node out of range");
    HMPT_REQUIRE(t.hbm_node >= 0 && t.hbm_node < num_nodes(),
                 "tile HBM node out of range");
  }
  // Tiers must be contiguous from DDR upward: the tuner enumerates tier
  // indices 0..num_memory_tiers()-1, so a machine exposing tier t must
  // also expose every tier below it.
  for (int k = 0; k < num_memory_tiers(); ++k)
    HMPT_REQUIRE(has_kind(static_cast<PoolKind>(k)),
                 "machine memory tiers must be contiguous from DDR");
}

int Machine::num_memory_tiers() const {
  int highest = 0;
  for (const auto& n : nodes_)
    highest = std::max(highest, static_cast<int>(n.pool.kind));
  return highest + 1;
}

bool Machine::has_kind(PoolKind kind) const {
  for (const auto& n : nodes_)
    if (n.pool.kind == kind) return true;
  return false;
}

int Machine::num_cores() const {
  int total = 0;
  for (const auto& t : tiles_) total += t.num_cores;
  return total;
}

int Machine::cores_per_tile() const {
  return tiles_.front().num_cores;
}

const NumaNode& Machine::node(int id) const {
  HMPT_REQUIRE(id >= 0 && id < num_nodes(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const Tile& Machine::tile(int id) const {
  HMPT_REQUIRE(id >= 0 && id < num_tiles(), "tile id out of range");
  return tiles_[static_cast<std::size_t>(id)];
}

std::vector<int> Machine::nodes_of_kind(PoolKind kind, int socket) const {
  std::vector<int> out;
  for (const auto& n : nodes_) {
    if (n.pool.kind != kind) continue;
    if (socket >= 0 && n.socket != socket) continue;
    out.push_back(n.id);
  }
  return out;
}

double Machine::capacity_of_kind(PoolKind kind, int socket) const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (n.pool.kind != kind) continue;
    if (socket >= 0 && n.socket != socket) continue;
    total += n.pool.capacity_bytes;
  }
  return total;
}

double Machine::peak_bandwidth_of_kind(PoolKind kind, int socket) const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (n.pool.kind != kind) continue;
    if (socket >= 0 && n.socket != socket) continue;
    total += n.pool.peak_bandwidth;
  }
  return total;
}

int Machine::distance(int node_a, int node_b) const {
  const NumaNode& a = node(node_a);
  const NumaNode& b = node(node_b);
  // SLIT-style: local 10; same tile (DDR<->HBM pair) 12; same socket 14;
  // cross-socket 21 (plus 2 for reaching a remote HBM device node). CXL
  // expanders sit behind the socket's root complex: 20 locally, 28 remote
  // (symmetric — either endpoint behind the link pays the hop).
  if (node_a == node_b) return 10;
  if (a.pool.kind == PoolKind::CXL || b.pool.kind == PoolKind::CXL)
    return a.socket == b.socket ? 20 : 28;
  if (a.socket == b.socket) {
    if (a.tile == b.tile) return 12;
    return 14;
  }
  return b.pool.kind == PoolKind::HBM ? 23 : 21;
}

std::string Machine::describe() const {
  std::ostringstream os;
  os << name_ << ": " << num_sockets_ << " socket(s), " << num_tiles()
     << " tile(s), " << num_cores() << " core(s), " << num_nodes()
     << " NUMA node(s)\n";
  for (const auto& n : nodes_) {
    os << "  node " << n.id << " socket " << n.socket << " tile " << n.tile
       << " " << to_string(n.pool.kind) << " "
       << format_bytes(n.pool.capacity_bytes) << " @ "
       << format_bandwidth(n.pool.peak_bandwidth) << " peak, " << n.num_cores
       << " cores\n";
  }
  return os.str();
}

namespace {

Machine build_xeon_max(int num_sockets, const char* name) {
  constexpr int kTilesPerSocket = 4;
  constexpr int kCoresPerTile = 12;
  // Per Fig. 1 and Sec. I-A: per tile 16 GB HBM2e @ 409.6 GB/s peak and
  // dual-channel DDR5 (2 x 16 GB shown in Fig. 1) @ 76.8 GB/s peak.
  constexpr double kDdrCapacity = 32.0 * GiB;
  constexpr double kDdrPeak = 76.8 * GB;
  constexpr double kHbmCapacity = 16.0 * GiB;
  constexpr double kHbmPeak = 409.6 * GB;

  const int tiles_total = num_sockets * kTilesPerSocket;
  std::vector<NumaNode> nodes;
  std::vector<Tile> tiles;
  // Flat SNC4: DDR nodes 0..T-1 carry the cores; HBM nodes T..2T-1 are
  // memory-only device nodes (exactly the paper's node numbering in Fig. 1).
  for (int t = 0; t < tiles_total; ++t) {
    NumaNode ddr;
    ddr.id = t;
    ddr.socket = t / kTilesPerSocket;
    ddr.tile = t;
    ddr.pool = {PoolKind::DDR, kDdrCapacity, kDdrPeak};
    ddr.num_cores = kCoresPerTile;
    nodes.push_back(ddr);
  }
  for (int t = 0; t < tiles_total; ++t) {
    NumaNode hbm;
    hbm.id = tiles_total + t;
    hbm.socket = t / kTilesPerSocket;
    hbm.tile = t;
    hbm.pool = {PoolKind::HBM, kHbmCapacity, kHbmPeak};
    hbm.num_cores = 0;
    nodes.push_back(hbm);
  }
  for (int t = 0; t < tiles_total; ++t) {
    Tile tile;
    tile.id = t;
    tile.socket = t / kTilesPerSocket;
    tile.num_cores = kCoresPerTile;
    tile.first_core = t * kCoresPerTile;
    tile.ddr_node = t;
    tile.hbm_node = tiles_total + t;
    tiles.push_back(tile);
  }
  return Machine(name, std::move(nodes), std::move(tiles), num_sockets);
}

}  // namespace

Machine xeon_max_9468_duo_flat_snc4() {
  return build_xeon_max(2, "2x Intel Xeon Max 9468 (flat SNC4)");
}

Machine xeon_max_9468_single_flat_snc4() {
  return build_xeon_max(1, "1x Intel Xeon Max 9468 (flat SNC4)");
}

Machine knl_like_flat_snc4() {
  constexpr int kQuadrants = 4;
  constexpr int kCoresPerQuadrant = 16;
  std::vector<NumaNode> nodes;
  std::vector<Tile> tiles;
  for (int q = 0; q < kQuadrants; ++q) {
    NumaNode ddr;
    ddr.id = q;
    ddr.socket = 0;
    ddr.tile = q;
    ddr.pool = {PoolKind::DDR, 24.0 * GiB, 25.6 * GB};
    ddr.num_cores = kCoresPerQuadrant;
    nodes.push_back(ddr);
  }
  for (int q = 0; q < kQuadrants; ++q) {
    NumaNode mcdram;
    mcdram.id = kQuadrants + q;
    mcdram.socket = 0;
    mcdram.tile = q;
    mcdram.pool = {PoolKind::HBM, 4.0 * GiB, 115.2 * GB};
    mcdram.num_cores = 0;
    nodes.push_back(mcdram);
  }
  for (int q = 0; q < kQuadrants; ++q)
    tiles.push_back({q, 0, kCoresPerQuadrant, q * kCoresPerQuadrant, q,
                     kQuadrants + q});
  return Machine("KNL-like (flat SNC4)", std::move(nodes), std::move(tiles),
                 1);
}

Machine cxl_tiered_xeon_max(double cxl_capacity, double cxl_peak) {
  // Start from the single-socket paper machine and hang one socket-level
  // CXL expander node (no cores, no tile) off the root complex.
  Machine base = xeon_max_9468_single_flat_snc4();
  std::vector<NumaNode> nodes = base.nodes();
  std::vector<Tile> tiles = base.tiles();
  NumaNode cxl;
  cxl.id = static_cast<int>(nodes.size());
  cxl.socket = 0;
  cxl.tile = -1;  // device node behind the socket, not tile-local
  cxl.pool = {PoolKind::CXL, cxl_capacity, cxl_peak};
  cxl.num_cores = 0;
  nodes.push_back(cxl);
  return Machine("1x Intel Xeon Max 9468 + CXL expander (flat SNC4)",
                 std::move(nodes), std::move(tiles), 1);
}

Machine three_pool_testbed(double ddr_capacity, double hbm_capacity,
                           double cxl_capacity) {
  Machine base = two_pool_testbed(ddr_capacity, hbm_capacity);
  std::vector<NumaNode> nodes = base.nodes();
  std::vector<Tile> tiles = base.tiles();
  NumaNode cxl;
  cxl.id = 2;
  cxl.socket = 0;
  cxl.tile = -1;
  cxl.pool = {PoolKind::CXL, cxl_capacity, 32.0 * GB};
  cxl.num_cores = 0;
  nodes.push_back(cxl);
  return Machine("three-pool testbed", std::move(nodes), std::move(tiles),
                 1);
}

Machine two_pool_testbed(double ddr_capacity, double hbm_capacity) {
  std::vector<NumaNode> nodes(2);
  nodes[0].id = 0;
  nodes[0].socket = 0;
  nodes[0].tile = 0;
  nodes[0].pool = {PoolKind::DDR, ddr_capacity, 76.8 * GB};
  nodes[0].num_cores = 12;
  nodes[1].id = 1;
  nodes[1].socket = 0;
  nodes[1].tile = 0;
  nodes[1].pool = {PoolKind::HBM, hbm_capacity, 409.6 * GB};
  nodes[1].num_cores = 0;
  std::vector<Tile> tiles(1);
  tiles[0] = {0, 0, 12, 0, 0, 1};
  return Machine("two-pool testbed", std::move(nodes), std::move(tiles), 1);
}

}  // namespace hmpt::topo
