// fleet.h — distributed campaign dispatch with work stealing.
//
// One command runs a whole sharded campaign: the dispatcher expands the
// scenario matrix once, writes it to a plan file, deals the
// fingerprint-sorted scenarios round-robin into N shard workers (each an
// `hmpt_campaign --plan ... --assign ... --progress-manifest` child
// process on its own outcome store), and tracks per-scenario completion
// by tailing each worker's shard.manifest.json. Past a configurable
// straggler threshold — or immediately when a worker dies — unfinished
// fingerprints are re-dealt to idle workers (work stealing). Duplicate
// execution is deliberately possible and deliberately harmless: the
// outcome store is content-addressed with first-write-wins byte-compare
// semantics, and the merge verifies that every overlapping copy holds
// identical bytes. When every scenario is complete the dispatcher stops
// surviving children, runs the standard merge/cross-validation path
// in-process, and the artefacts (runs.csv, summary.json, merged store)
// are byte-identical to a single-process run of the same campaign —
// determinism invariant 8, proven by tests/fleet_test.cpp and the
// fleet-smoke CI job rather than asserted in prose.
//
// Workers are local child processes by default; `exec_template` is the
// seam for ssh/job-array launch (the rendered worker command is
// substituted for {cmd}, the 1-based worker index for {index}) and
// `sync_template` the seam for pulling remote stores back before the
// merge ({dir} and {index} substituted).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/merge.h"

namespace hmpt::fleet {

struct FleetOptions {
  /// Shard workers (N >= 1). Each owns <output_dir>/shard-<i>.
  int workers = 2;
  /// Merged artefacts + per-worker stores + fleet scratch files.
  std::string output_dir = "fleet-out";
  /// Store layout of every worker store and of the merged store.
  campaign::StoreFormat store_format = campaign::StoreFormat::Dir;
  /// The hmpt_campaign binary workers run (required).
  std::string worker_bin;
  /// Launch seam: empty = fork/exec worker_bin directly; otherwise the
  /// template is rendered ({cmd} = shell-quoted worker command, {index}
  /// = worker index) and run via /bin/sh -c — "ssh host{index} {cmd}"
  /// turns the local fleet into an ssh fleet.
  std::string exec_template;
  /// Store-sync seam, run per worker after the last child exits and
  /// before the merge ({dir} = worker store directory, {index} = worker
  /// index). Empty = stores are local, nothing to sync.
  std::string sync_template;
  /// Steal from a live worker only after it has made no observable
  /// progress for this long (seconds). <= 0 steals aggressively (any
  /// poll may re-deal); dead workers are always stolen from immediately.
  double straggler_after_s = 30.0;
  /// Manifest poll / scheduling interval in seconds.
  double poll_interval_s = 0.2;
  /// Launch cap per fingerprint (first deal included): a scenario whose
  /// runs keep dying is not re-dealt forever, it fails the fleet.
  int max_deals = 3;
  /// Per-worker --jobs (concurrent scenarios inside one worker).
  int worker_jobs = 1;
  /// Per-worker --measure-jobs.
  int measure_jobs = 1;
  /// Per-scenario attempts (1 = fail fast) and per-attempt deadline,
  /// forwarded to workers as --retries/--scenario-timeout.
  int attempts = 1;
  double scenario_timeout_s = 0.0;
  /// Forwarded as --keep-going; also makes the dispatcher treat a worker
  /// exiting nonzero as a death to be stolen from rather than a fleet
  /// abort.
  bool keep_going = false;
};

/// What the dispatcher did, for logs, tests and the metrics registry.
struct FleetStats {
  std::string campaign;        ///< campaign fingerprint
  int scenarios = 0;           ///< full campaign size
  int workers = 0;             ///< shard workers (options.workers)
  int launches = 0;            ///< child processes spawned, all generations
  int steals = 0;              ///< fingerprints re-dealt away from a worker
  int worker_deaths = 0;       ///< children that died or failed
  campaign::MergeStats merge;  ///< the in-process merge's counters
};

/// One tolerant read of a worker's shard.manifest.json. A fleet tails
/// manifests other processes rewrite (and, behind sync seams, other
/// *hosts* rewrite without rename atomicity), so a torn or half-synced
/// read is an expected transient: it is retried briefly and then
/// reported as Damaged — never an exception, and never evidence that a
/// scenario failed. Only a manifest that parses is evidence of anything.
struct ManifestTail {
  enum class State {
    Ok,       ///< manifest parsed; `manifest` is valid
    Missing,  ///< no manifest file (worker store not created yet)
    Damaged,  ///< unreadable/torn after every retry — treat as "no news"
  };
  State state = State::Missing;
  campaign::ShardManifest manifest;  ///< valid only when state == Ok
};

/// Read a shard manifest, retrying `retries` times (sleeping
/// `retry_sleep_s` between reads) when the bytes do not parse.
ManifestTail tail_manifest(const std::string& store_dir, int retries = 4,
                           double retry_sleep_s = 0.02);

/// Assignment files: one fingerprint per line, the exact scenario set a
/// worker generation runs (`hmpt_campaign --assign`). Atomic write.
void save_assignment(const std::string& path,
                     const std::vector<std::string>& fingerprints);
std::vector<std::string> load_assignment(const std::string& path);

/// Progress hook: human-readable dispatcher events (launches, steals,
/// deaths, completion) for the driving tool to print.
using FleetLog = std::function<void(const std::string&)>;

/// Run the campaign as a fleet: deal, launch, tail, steal, merge.
/// Returns the campaign-ordered merged result (statuses Cached/Failed,
/// exactly like merge_shards), from which the standard aggregation
/// reproduces the unsharded artefacts byte for byte. Throws hmpt::Error
/// when the fleet cannot complete the campaign (a worker failed under
/// fail-fast, the per-fingerprint deal cap was exhausted, a sync command
/// failed, or the final merge found conflicting bytes).
campaign::CampaignResult run_fleet(
    const std::vector<campaign::Scenario>& scenarios,
    const FleetOptions& options, FleetStats* stats = nullptr,
    const FleetLog& log = {});

}  // namespace hmpt::fleet
