#include "fleet/fleet.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace hmpt::fleet {

namespace {

using Clock = std::chrono::steady_clock;
using campaign::Scenario;

/// POSIX single-quote escaping: safe for any byte sequence.
std::string shell_quote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

std::string replace_all(std::string text, const std::string& what,
                        const std::string& with) {
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    text.replace(pos, what.size(), with);
    pos += with.size();
  }
  return text;
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

/// One shard worker slot: a store directory that survives across child
/// generations, plus the child currently running on it (if any).
struct Worker {
  int index = 1;            ///< 1-based shard index (stable for the run)
  std::string dir;          ///< <output_dir>/shard-<index>
  pid_t pid = -1;           ///< running child, or -1
  int generation = 0;       ///< launches on this slot so far
  std::string log_path;     ///< stdout/stderr of the current generation
  /// Fingerprints this worker currently owns (initial deal, then replaced
  /// by the stolen set when the slot is re-used as a thief).
  std::set<std::string> assigned;
  /// Manifest entries observed at the last poll; growth = progress.
  std::size_t observed = 0;
  Clock::time_point last_progress = Clock::now();
};

/// The worker command line (argv after the binary). The child is a plain
/// `hmpt_campaign` run: plan + assignment pin the exact scenario set,
/// --resume makes relaunches on a used store free, --progress-manifest
/// makes its shard.manifest.json tailable and SIGKILL-consistent.
std::vector<std::string> worker_args(const FleetOptions& options,
                                     const Worker& worker,
                                     const std::string& plan_path,
                                     const std::string& assign_path) {
  std::vector<std::string> args = {
      "--plan",
      plan_path,
      "--assign",
      assign_path,
      "--shard",
      std::to_string(worker.index) + "/" + std::to_string(options.workers),
      "--out",
      worker.dir,
      "--store-format",
      campaign::to_string(options.store_format),
      "--resume",
      "--progress-manifest",
      "--quiet",
      "--jobs",
      std::to_string(options.worker_jobs),
      "--measure-jobs",
      std::to_string(options.measure_jobs),
  };
  if (options.keep_going) args.push_back("--keep-going");
  if (options.attempts > 1) {
    args.push_back("--retries");
    args.push_back(std::to_string(options.attempts - 1));
  }
  if (options.scenario_timeout_s > 0.0) {
    args.push_back("--scenario-timeout");
    args.push_back(format_seconds(options.scenario_timeout_s));
  }
  return args;
}

/// Fork the worker in its own process group (so SIGKILL to the group
/// reaches a SIGSTOPped worker and any grandchildren a launch template
/// spawned) with stdout/stderr appended to its per-generation log file.
pid_t spawn_worker(const FleetOptions& options, int index,
                   const std::vector<std::string>& args,
                   const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) raise("fleet: fork failed");
  if (pid == 0) {
    ::setpgid(0, 0);
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    if (options.exec_template.empty()) {
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(options.worker_bin.c_str()));
      for (const auto& arg : args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      ::execv(options.worker_bin.c_str(), argv.data());
    } else {
      std::string cmd = shell_quote(options.worker_bin);
      for (const auto& arg : args) cmd += " " + shell_quote(arg);
      std::string rendered = replace_all(options.exec_template, "{cmd}", cmd);
      rendered = replace_all(rendered, "{index}", std::to_string(index));
      ::execl("/bin/sh", "sh", "-c", rendered.c_str(),
              static_cast<char*>(nullptr));
    }
    ::_exit(127);  // exec failed; reads as a worker death upstream
  }
  // Parent-side setpgid too: closes the race where the child is killed
  // before its own setpgid ran. EACCES after exec just means the child
  // already did it.
  ::setpgid(pid, pid);
  return pid;
}

}  // namespace

ManifestTail tail_manifest(const std::string& store_dir, int retries,
                           double retry_sleep_s) {
  const std::string path = campaign::ShardManifest::path_in(store_dir);
  ManifestTail tail;
  for (int attempt = 0;; ++attempt) {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      tail.state = ManifestTail::State::Missing;
    } else {
      try {
        tail.manifest = campaign::ShardManifest::load(store_dir);
        tail.state = ManifestTail::State::Ok;
        return tail;
      } catch (const std::exception&) {
        // A torn read (mid-rewrite on a remote store, a half-synced
        // file) — transient until proven otherwise.
        tail.state = ManifestTail::State::Damaged;
      }
    }
    if (attempt >= retries) return tail;
    std::this_thread::sleep_for(std::chrono::duration<double>(retry_sleep_s));
  }
}

void save_assignment(const std::string& path,
                     const std::vector<std::string>& fingerprints) {
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
  const fs::path tmp = fs::path(path + ".tmp." + std::to_string(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    HMPT_REQUIRE(os.good(), "cannot write assignment file: " + path);
    for (const auto& fp : fingerprints) os << fp << "\n";
    os.flush();
    HMPT_REQUIRE(os.good(), "cannot write assignment file: " + path);
  }
  fs::rename(tmp, target, ec);
  if (ec) raise("cannot publish assignment file " + path + ": " + ec.message());
}

std::vector<std::string> load_assignment(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) raise("cannot read assignment file: " + path);
  std::vector<std::string> fingerprints;
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    fingerprints.push_back(line.substr(start));
  }
  return fingerprints;
}

campaign::CampaignResult run_fleet(const std::vector<Scenario>& scenarios,
                                   const FleetOptions& options,
                                   FleetStats* stats, const FleetLog& log) {
  HMPT_REQUIRE(options.workers >= 1, "fleet needs at least one worker");
  HMPT_REQUIRE(!options.worker_bin.empty(), "fleet worker binary not set");
  HMPT_REQUIRE(!scenarios.empty(), "fleet campaign is empty");
  HMPT_REQUIRE(options.max_deals >= 1, "fleet deal cap must be >= 1");
  HMPT_REQUIRE(options.poll_interval_s > 0.0,
               "fleet poll interval must be positive");

  obs::TraceSpan span("fleet", "dispatch");
  static obs::Counter& launches_metric =
      obs::metrics().counter("fleet.launches");
  static obs::Counter& steals_metric = obs::metrics().counter("fleet.steals");
  static obs::Counter& deaths_metric =
      obs::metrics().counter("fleet.worker_deaths");

  const auto say = [&log](const std::string& msg) {
    if (log) log(msg);
  };

  const std::string fleet_dir = options.output_dir + "/fleet";
  fs::create_directories(fleet_dir);
  const std::string plan_path = fleet_dir + "/plan.json";
  campaign::save_scenario_plan(plan_path, scenarios);

  // The deal is over fingerprints, mirroring shard_scenarios: sorted by
  // fingerprint, rank r to worker (r mod N) + 1 — a fleet with no steals
  // produces exactly the partition `hmpt_campaign --shard` would.
  std::map<std::string, const Scenario*> by_fp;
  for (const auto& scenario : scenarios) {
    const auto [it, fresh] = by_fp.emplace(scenario.fingerprint(), &scenario);
    HMPT_REQUIRE(fresh,
                 "duplicate scenario fingerprint in campaign: " + it->first);
  }
  const std::string campaign_fp = campaign::campaign_fingerprint(scenarios);
  span.arg("campaign", campaign_fp);
  span.arg_number("workers", static_cast<std::uint64_t>(options.workers));
  span.arg_number("scenarios", static_cast<std::uint64_t>(by_fp.size()));

  std::vector<Worker> workers(static_cast<std::size_t>(options.workers));
  for (int i = 0; i < options.workers; ++i) {
    Worker& worker = workers[static_cast<std::size_t>(i)];
    worker.index = i + 1;
    worker.dir = options.output_dir + "/shard-" + std::to_string(worker.index);
    fs::create_directories(worker.dir);
    // Pre-write the (empty) manifest so a worker SIGKILLed before its
    // first save — or never launched at all — still merges cleanly.
    campaign::ManifestProgress seed(scenarios,
                                    campaign::ShardSpec{worker.index,
                                                        options.workers},
                                    worker.dir);
  }
  {
    std::size_t rank = 0;
    for (const auto& [fp, scenario] : by_fp) {
      (void)scenario;
      workers[rank % workers.size()].assigned.insert(fp);
      ++rank;
    }
  }

  std::map<std::string, int> deals;  ///< fingerprint → times dealt
  std::set<std::string> done;        ///< fingerprints with a terminal record
  int launches = 0;
  int steals = 0;
  int deaths = 0;

  const auto launch = [&](Worker& worker) {
    ++worker.generation;
    const std::string tag = std::to_string(worker.index) + "-g" +
                            std::to_string(worker.generation);
    const std::string assign_path = fleet_dir + "/assign-" + tag + ".txt";
    std::vector<std::string> fps(worker.assigned.begin(),
                                 worker.assigned.end());
    save_assignment(assign_path, fps);
    worker.log_path = fleet_dir + "/worker-" + tag + ".log";
    worker.pid = spawn_worker(
        options, worker.index,
        worker_args(options, worker, plan_path, assign_path), worker.log_path);
    worker.last_progress = Clock::now();
    ++launches;
    launches_metric.add(1);
    obs::trace_instant(
        "fleet", "launch",
        {obs::TraceArg::number("worker",
                               static_cast<std::uint64_t>(worker.index)),
         obs::TraceArg::number("generation",
                               static_cast<std::uint64_t>(worker.generation)),
         obs::TraceArg::number("scenarios",
                               static_cast<std::uint64_t>(fps.size()))});
    say("fleet: worker " + std::to_string(worker.index) + " gen " +
        std::to_string(worker.generation) + " started (pid " +
        std::to_string(worker.pid) + ", " + std::to_string(fps.size()) +
        " scenario(s))");
  };

  const auto kill_all = [&workers]() {
    for (Worker& worker : workers) {
      if (worker.pid <= 0) continue;
      ::kill(-worker.pid, SIGKILL);  // the group: template shells, STOPped
      ::kill(worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  };

  const auto outstanding_of = [&done](const Worker& worker) {
    std::vector<std::string> out;
    for (const auto& fp : worker.assigned)
      if (!done.count(fp)) out.push_back(fp);
    return out;
  };

  for (Worker& worker : workers) {
    if (worker.assigned.empty()) continue;  // more workers than scenarios
    for (const auto& fp : worker.assigned) ++deals[fp];
    launch(worker);
  }

  try {
    while (true) {
      // 1. Reap exited children. The death rule: a signal or an exit
      // status >= 126 (shell-laundered kills, exec failures) is a worker
      // death — steal-eligible, the fleet carries on. A plain nonzero
      // exit is the worker *reporting* failure: fatal under fail-fast;
      // under --keep-going a recorded scenario failure (exit 2) is a
      // terminal result, anything else is treated as a death.
      for (Worker& worker : workers) {
        if (worker.pid <= 0) continue;
        int status = 0;
        if (::waitpid(worker.pid, &status, WNOHANG) != worker.pid) continue;
        worker.pid = -1;
        int code = 0;
        bool death = false;
        if (WIFSIGNALED(status)) {
          code = 128 + WTERMSIG(status);
          death = true;
        } else if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
          if (code == 0 || (code == 2 && options.keep_going)) {
            death = false;
          } else if (code >= 126 || options.keep_going) {
            death = true;
          } else {
            raise("fleet: worker " + std::to_string(worker.index) +
                  " failed with exit status " + std::to_string(code) +
                  " (log: " + worker.log_path + ")");
          }
        }
        if (death) {
          ++deaths;
          deaths_metric.add(1);
          obs::trace_instant(
              "fleet", "worker-death",
              {obs::TraceArg::number("worker",
                                     static_cast<std::uint64_t>(worker.index)),
               obs::TraceArg::number("status",
                                     static_cast<std::uint64_t>(code))});
          say("fleet: worker " + std::to_string(worker.index) +
              " died (status " + std::to_string(code) + ")");
        }
      }

      // 2. Tail manifests. Damaged/missing reads are "no news", never
      // failures; only parsed entries advance the done set, and entry
      // growth is the worker's heartbeat.
      for (Worker& worker : workers) {
        const ManifestTail tail = tail_manifest(worker.dir);
        if (tail.state != ManifestTail::State::Ok) continue;
        if (tail.manifest.campaign != campaign_fp) continue;  // stale store
        if (tail.manifest.entries.size() > worker.observed) {
          worker.observed = tail.manifest.entries.size();
          worker.last_progress = Clock::now();
        }
        for (const auto& entry : tail.manifest.entries)
          done.insert(entry.fingerprint);
      }

      if (done.size() >= by_fp.size()) break;  // done ⊆ campaign always

      // 3. Steal scheduling. A fingerprint is in flight while some live,
      // non-straggling worker owns it; everything else outstanding on a
      // dead or straggling victim is stealable, up to the per-fingerprint
      // deal cap. Idle workers (no child, nothing outstanding) are the
      // thieves.
      const auto now = Clock::now();
      const auto idle_seconds = [&now](const Worker& worker) {
        return std::chrono::duration<double>(now - worker.last_progress)
            .count();
      };
      std::set<std::string> in_flight;
      for (const Worker& worker : workers) {
        if (worker.pid <= 0) continue;
        if (idle_seconds(worker) >= options.straggler_after_s) continue;
        for (const auto& fp : worker.assigned)
          if (!done.count(fp)) in_flight.insert(fp);
      }
      std::vector<Worker*> thieves;
      for (Worker& worker : workers)
        if (worker.pid <= 0 && outstanding_of(worker).empty())
          thieves.push_back(&worker);
      std::vector<Worker*> victims;
      std::set<std::string> stealable;
      for (Worker& worker : workers) {
        const auto out = outstanding_of(worker);
        if (out.empty()) continue;
        const bool dead = worker.pid <= 0;
        if (!dead && idle_seconds(worker) < options.straggler_after_s)
          continue;
        victims.push_back(&worker);
        for (const auto& fp : out) {
          if (in_flight.count(fp)) continue;
          if (deals[fp] >= options.max_deals) continue;
          stealable.insert(fp);
        }
      }

      bool launched = false;
      if (!stealable.empty() && !thieves.empty()) {
        // Deal the stolen set round-robin over the idle workers
        // (fingerprint order over index order — deterministic given the
        // same observation sequence).
        std::map<Worker*, std::vector<std::string>> share;
        std::size_t t = 0;
        for (const auto& fp : stealable) {
          share[thieves[t % thieves.size()]].push_back(fp);
          ++t;
        }
        for (auto& [thief, fps] : share) {
          thief->assigned.clear();
          for (const auto& fp : fps) {
            thief->assigned.insert(fp);
            ++deals[fp];
          }
          steals += static_cast<int>(fps.size());
          steals_metric.add(fps.size());
          obs::trace_instant(
              "fleet", "steal",
              {obs::TraceArg::number(
                   "thief", static_cast<std::uint64_t>(thief->index)),
               obs::TraceArg::number("scenarios",
                                     static_cast<std::uint64_t>(fps.size()))});
          say("fleet: re-dealing " + std::to_string(fps.size()) +
              " scenario(s) to worker " + std::to_string(thief->index));
          launch(*thief);
        }
        // The victims get a fresh grace period: their outstanding work is
        // now in flight on the thieves, so don't churn re-deals until the
        // thieves themselves stall.
        for (Worker* victim : victims) victim->last_progress = now;
      } else if (!stealable.empty()) {
        // Work to re-deal but nobody idle: if every worker is dead the
        // victims relaunch on their own stores (--resume makes finished
        // work free); otherwise wait for a worker to drain and go idle.
        bool any_running = false;
        for (const Worker& worker : workers)
          if (worker.pid > 0) any_running = true;
        if (!any_running) {
          std::set<std::string> remaining = stealable;
          for (Worker* victim : victims) {
            std::vector<std::string> mine;
            for (const auto& fp : victim->assigned)
              if (remaining.count(fp)) mine.push_back(fp);
            if (mine.empty()) continue;
            victim->assigned.clear();
            for (const auto& fp : mine) {
              victim->assigned.insert(fp);
              remaining.erase(fp);
              ++deals[fp];
            }
            say("fleet: relaunching worker " +
                std::to_string(victim->index) + " on its own store");
            launch(*victim);
            launched = true;
          }
        }
      }
      for (const Worker& worker : workers)
        if (worker.pid > 0) launched = true;

      if (!launched) {
        std::size_t undealable = 0;
        for (const auto& [fp, count] : deals)
          if (!done.count(fp) && count >= options.max_deals) ++undealable;
        raise("fleet: stalled with " +
              std::to_string(by_fp.size() - done.size()) +
              " scenario(s) unfinished (" + std::to_string(undealable) +
              " exhausted the deal cap of " +
              std::to_string(options.max_deals) + ")");
      }

      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_interval_s));
    }
  } catch (...) {
    kill_all();
    throw;
  }

  // Every scenario has a terminal record somewhere. Surviving children
  // are stragglers whose work was completed elsewhere — stop them; both
  // store formats tolerate a kill mid-write (atomic publish / torn-tail
  // recovery), and the merge byte-verifies every duplicate anyway.
  kill_all();

  if (!options.sync_template.empty()) {
    obs::TraceSpan sync_span("fleet", "sync");
    for (const Worker& worker : workers) {
      std::string cmd =
          replace_all(options.sync_template, "{dir}", shell_quote(worker.dir));
      cmd = replace_all(cmd, "{index}", std::to_string(worker.index));
      const int rc = std::system(cmd.c_str());
      HMPT_REQUIRE(rc == 0, "fleet: sync command failed for worker " +
                                std::to_string(worker.index) + ": " + cmd);
    }
  }

  campaign::MergeStats merge_stats;
  campaign::CampaignResult result;
  {
    obs::TraceSpan merge_span("fleet", "merge");
    std::vector<std::string> shard_dirs;
    for (const Worker& worker : workers) shard_dirs.push_back(worker.dir);
    result = campaign::merge_shards(shard_dirs, options.output_dir,
                                    &merge_stats, options.store_format);
  }

  if (stats) {
    stats->campaign = campaign_fp;
    stats->scenarios = static_cast<int>(by_fp.size());
    stats->workers = options.workers;
    stats->launches = launches;
    stats->steals = steals;
    stats->worker_deaths = deaths;
    stats->merge = merge_stats;
  }
  span.arg_number("launches", static_cast<std::uint64_t>(launches));
  span.arg_number("steals", static_cast<std::uint64_t>(steals));
  span.arg_number("worker_deaths", static_cast<std::uint64_t>(deaths));
  say("fleet: complete — " + std::to_string(by_fp.size()) + " scenario(s), " +
      std::to_string(launches) + " launch(es), " + std::to_string(steals) +
      " steal(s), " + std::to_string(deaths) + " death(s)");
  return result;
}

}  // namespace hmpt::fleet
