#include "pools/page_map.h"

#include "common/error.h"

namespace hmpt::pools {

void PageMap::insert(std::uintptr_t addr, std::size_t size, int node,
                     std::uint64_t tag) {
  HMPT_REQUIRE(size > 0, "cannot map an empty range");
  const std::uintptr_t end = addr + size;
  HMPT_REQUIRE(end > addr, "address range overflow");

  // The first range starting at or after `addr` must begin at or after
  // `end`; the range before `addr` must end at or before `addr`.
  auto next = ranges_.lower_bound(addr);
  if (next != ranges_.end())
    HMPT_REQUIRE(next->second.begin >= end, "overlapping range (next)");
  if (next != ranges_.begin()) {
    auto prev = std::prev(next);
    HMPT_REQUIRE(prev->second.end <= addr, "overlapping range (prev)");
  }
  ranges_.emplace(addr, RangeInfo{node, tag, addr, end});
}

RangeInfo PageMap::erase(std::uintptr_t addr) {
  auto it = ranges_.find(addr);
  HMPT_REQUIRE(it != ranges_.end(), "no range starts at this address");
  RangeInfo info = it->second;
  ranges_.erase(it);
  return info;
}

std::optional<RangeInfo> PageMap::lookup(std::uintptr_t addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return std::nullopt;
  --it;
  const RangeInfo& info = it->second;
  if (addr >= info.begin && addr < info.end) return info;
  return std::nullopt;
}

void PageMap::set_node(std::uintptr_t addr, int node) {
  auto it = ranges_.find(addr);
  HMPT_REQUIRE(it != ranges_.end(), "no range starts at this address");
  it->second.node = node;
}

std::size_t PageMap::bytes_on_node(int node) const {
  std::size_t total = 0;
  for (const auto& [begin, info] : ranges_)
    if (node < 0 || info.node == node) total += info.size();
  return total;
}

}  // namespace hmpt::pools
