// arena.h — free-list arena allocator backing one simulated memory pool.
//
// Plays the role memkind's per-kind arenas play on the real platform: all
// allocations bound to one NUMA node come from its arena, which enforces
// the node's (simulated) capacity. Backed by real host memory in chunked
// slabs; carving uses a first-fit free list with splitting and coalescing
// so fragmentation behaviour is realistic and testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace hmpt::pools {

/// Allocation statistics of one arena.
struct ArenaStats {
  std::size_t capacity = 0;        ///< simulated pool capacity (bytes)
  std::size_t allocated = 0;       ///< live payload bytes
  std::size_t peak_allocated = 0;  ///< high-water mark
  std::size_t host_reserved = 0;   ///< host bytes actually reserved in slabs
  std::size_t num_allocs = 0;      ///< live allocation count
  std::size_t total_allocs = 0;    ///< cumulative allocation count
  std::size_t failed_allocs = 0;   ///< capacity-exceeded rejections
};

/// One pool's arena. Not thread-safe by itself; PoolAllocator serialises.
class PoolArena {
 public:
  /// `capacity` is the simulated pool size; `slab_bytes` the host chunk
  /// granularity (rounded up per allocation when larger).
  explicit PoolArena(std::size_t capacity,
                     std::size_t slab_bytes = 1u << 20);
  ~PoolArena();

  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  /// Allocate `size` bytes aligned to `alignment` (power of two).
  /// Returns nullptr when the simulated capacity would be exceeded.
  void* allocate(std::size_t size, std::size_t alignment = 16);

  /// Release a pointer previously returned by allocate().
  void deallocate(void* ptr);

  /// Size originally requested for `ptr`.
  std::size_t allocation_size(const void* ptr) const;

  /// True if `ptr` was allocated (and not yet freed) by this arena.
  bool owns(const void* ptr) const;

  const ArenaStats& stats() const { return stats_; }
  std::size_t available() const { return stats_.capacity - stats_.allocated; }

  /// Number of entries in the free list (fragmentation inspection).
  std::size_t free_list_size() const;

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  struct FreeBlock {
    std::uintptr_t addr = 0;
    std::size_t size = 0;
  };
  struct LiveBlock {
    std::size_t block_size = 0;    // carved block (aligned)
    std::size_t request_size = 0;  // user-visible size
  };

  void add_slab(std::size_t min_bytes);
  void insert_free_block(std::uintptr_t addr, std::size_t size);

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  // Free blocks keyed by address so adjacent blocks coalesce on insert.
  std::map<std::uintptr_t, std::size_t> free_;
  std::map<std::uintptr_t, LiveBlock> live_;
  ArenaStats stats_;
};

}  // namespace hmpt::pools
