// page_map.h — address-range to memory-pool mapping.
//
// The sampler resolves sampled access addresses to allocations (and hence
// pools) exactly the way the paper's tool correlates IBS samples with known
// allocation address ranges (Sec. III). Implemented as an ordered interval
// map with O(log n) insert/erase/lookup.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace hmpt::pools {

/// What a mapped interval points at.
struct RangeInfo {
  int node = -1;          ///< NUMA node the range is resident on
  std::uint64_t tag = 0;  ///< opaque owner tag (allocation id)
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;  ///< one past the last byte
  std::size_t size() const { return end - begin; }
};

/// Non-overlapping interval map keyed by start address.
class PageMap {
 public:
  /// Register [addr, addr+size); throws on overlap with an existing range.
  void insert(std::uintptr_t addr, std::size_t size, int node,
              std::uint64_t tag);

  /// Remove the range starting exactly at `addr`; throws if absent.
  RangeInfo erase(std::uintptr_t addr);

  /// Find the range containing `addr`, if any.
  std::optional<RangeInfo> lookup(std::uintptr_t addr) const;

  /// Re-home a range (placement migration): change its node in place.
  void set_node(std::uintptr_t addr, int node);

  std::size_t size() const { return ranges_.size(); }
  bool empty() const { return ranges_.empty(); }

  /// Total mapped bytes on `node` (-1 = all nodes).
  std::size_t bytes_on_node(int node = -1) const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [begin, info] : ranges_) fn(info);
  }

 private:
  std::map<std::uintptr_t, RangeInfo> ranges_;  // keyed by begin
};

}  // namespace hmpt::pools
