#include "pools/arena.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::pools {

namespace {

constexpr std::size_t kMinAlign = 16;

std::uintptr_t align_up(std::uintptr_t addr, std::size_t alignment) {
  return (addr + alignment - 1) & ~static_cast<std::uintptr_t>(alignment - 1);
}

bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

PoolArena::PoolArena(std::size_t capacity, std::size_t slab_bytes)
    : slab_bytes_(slab_bytes) {
  HMPT_REQUIRE(capacity > 0, "arena capacity must be positive");
  HMPT_REQUIRE(slab_bytes > 0, "slab size must be positive");
  stats_.capacity = capacity;
}

PoolArena::~PoolArena() = default;

void PoolArena::add_slab(std::size_t min_bytes) {
  const std::size_t bytes = std::max(min_bytes, slab_bytes_);
  Slab slab;
  slab.data = std::make_unique<std::byte[]>(bytes);
  slab.size = bytes;
  const auto addr = reinterpret_cast<std::uintptr_t>(slab.data.get());
  slabs_.push_back(std::move(slab));
  stats_.host_reserved += bytes;
  insert_free_block(addr, bytes);
}

void PoolArena::insert_free_block(std::uintptr_t addr, std::size_t size) {
  if (size == 0) return;
  auto next = free_.lower_bound(addr);
  // Coalesce with predecessor when byte-adjacent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == addr) {
      addr = prev->first;
      size += prev->second;
      free_.erase(prev);
    }
  }
  // Coalesce with successor when byte-adjacent.
  if (next != free_.end() && addr + size == next->first) {
    size += next->second;
    free_.erase(next);
  }
  free_.emplace(addr, size);
}

void* PoolArena::allocate(std::size_t size, std::size_t alignment) {
  HMPT_REQUIRE(size > 0, "zero-size allocation");
  HMPT_REQUIRE(is_pow2(alignment), "alignment must be a power of two");
  alignment = std::max(alignment, kMinAlign);

  if (stats_.allocated + size > stats_.capacity) {
    ++stats_.failed_allocs;
    return nullptr;  // simulated pool exhausted (capacity semantics)
  }

  const std::size_t block_payload = align_up(size, kMinAlign);

  // First-fit over the free list: find a block that can host an aligned
  // payload after carving an (optional) front fragment.
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      const std::uintptr_t block_addr = it->first;
      const std::size_t block_size = it->second;
      const std::uintptr_t user_addr = align_up(block_addr, alignment);
      const std::size_t front = user_addr - block_addr;
      if (front + block_payload > block_size) continue;

      free_.erase(it);
      insert_free_block(block_addr, front);
      insert_free_block(user_addr + block_payload,
                        block_size - front - block_payload);

      live_.emplace(user_addr, LiveBlock{block_payload, size});
      stats_.allocated += size;
      stats_.peak_allocated = std::max(stats_.peak_allocated,
                                       stats_.allocated);
      ++stats_.num_allocs;
      ++stats_.total_allocs;
      return reinterpret_cast<void*>(user_addr);
    }
    // No fit: grow the backing store once, then retry.
    add_slab(block_payload + alignment);
  }
  // Unreachable: a fresh slab always fits the request.
  raise("arena failed to place allocation after growing");
}

void PoolArena::deallocate(void* ptr) {
  HMPT_REQUIRE(ptr != nullptr, "deallocate(nullptr)");
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = live_.find(addr);
  HMPT_REQUIRE(it != live_.end(), "pointer not owned by this arena");
  stats_.allocated -= it->second.request_size;
  --stats_.num_allocs;
  insert_free_block(addr, it->second.block_size);
  live_.erase(it);
}

std::size_t PoolArena::allocation_size(const void* ptr) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = live_.find(addr);
  HMPT_REQUIRE(it != live_.end(), "pointer not owned by this arena");
  return it->second.request_size;
}

bool PoolArena::owns(const void* ptr) const {
  return live_.count(reinterpret_cast<std::uintptr_t>(ptr)) != 0;
}

std::size_t PoolArena::free_list_size() const { return free_.size(); }

}  // namespace hmpt::pools
