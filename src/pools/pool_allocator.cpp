#include "pools/pool_allocator.h"

#include <cstring>

#include "common/error.h"

namespace hmpt::pools {

PoolAllocator::PoolAllocator(const topo::Machine& machine, OomPolicy policy)
    : machine_(&machine), policy_(policy), rr_cursor_(topo::kNumPoolKinds, 0) {
  arenas_.reserve(static_cast<std::size_t>(machine.num_nodes()));
  for (const auto& node : machine.nodes()) {
    arenas_.push_back(std::make_unique<PoolArena>(
        static_cast<std::size_t>(node.pool.capacity_bytes)));
  }
}

PoolAllocation PoolAllocator::try_allocate_kind(std::size_t size,
                                                topo::PoolKind kind,
                                                std::size_t alignment) {
  // Round-robin over the kind's nodes (interleave policy); take the first
  // node with room, starting from the rotating cursor.
  const auto nodes = machine_->nodes_of_kind(kind);
  if (nodes.empty()) return {};
  int& cursor = rr_cursor_[static_cast<std::size_t>(kind)];
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int node =
        nodes[(static_cast<std::size_t>(cursor) + i) % nodes.size()];
    void* ptr = arenas_[static_cast<std::size_t>(node)]->allocate(size,
                                                                  alignment);
    if (ptr != nullptr) {
      cursor = static_cast<int>(
          (static_cast<std::size_t>(cursor) + i + 1) % nodes.size());
      page_map_.insert(reinterpret_cast<std::uintptr_t>(ptr), size, node,
                       next_tag_++);
      return {ptr, node, kind, false};
    }
  }
  return {};
}

PoolAllocation PoolAllocator::allocate(std::size_t size, topo::PoolKind kind,
                                       std::size_t alignment) {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolAllocation result = try_allocate_kind(size, kind, alignment);
  if (result.ptr != nullptr) return result;

  switch (policy_) {
    case OomPolicy::Throw:
      raise(std::string("pool ") + topo::to_string(kind) +
            " out of capacity");
    case OomPolicy::ReturnNull:
      return {};
    case OomPolicy::Spill: {
      // Fall back to another pool kind, as the SHIM library must when the
      // 16 GB/tile HBM pool is exhausted mid-plan. Every non-DDR tier
      // spills to the DDR baseline first, then to any remaining kind the
      // machine has (HBM exhausts into DDR, then into a CXL expander).
      std::vector<topo::PoolKind> fallbacks;
      if (kind != topo::PoolKind::DDR)
        fallbacks.push_back(topo::PoolKind::DDR);
      for (int k = 0; k < topo::kNumPoolKinds; ++k) {
        const auto other = static_cast<topo::PoolKind>(k);
        if (other != kind && other != topo::PoolKind::DDR &&
            machine_->has_kind(other))
          fallbacks.push_back(other);
      }
      for (const auto fallback : fallbacks) {
        result = try_allocate_kind(size, fallback, alignment);
        if (result.ptr != nullptr) {
          result.spilled = true;
          return result;
        }
      }
      raise("all pools out of capacity");
    }
  }
  return {};
}

PoolAllocation PoolAllocator::allocate_on_node(std::size_t size, int node,
                                               std::size_t alignment) {
  std::lock_guard<std::mutex> lock(mutex_);
  HMPT_REQUIRE(node >= 0 && node < machine_->num_nodes(),
               "node out of range");
  void* ptr =
      arenas_[static_cast<std::size_t>(node)]->allocate(size, alignment);
  if (ptr == nullptr) {
    if (policy_ == OomPolicy::Throw) raise("node out of capacity");
    return {};
  }
  page_map_.insert(reinterpret_cast<std::uintptr_t>(ptr), size, node,
                   next_tag_++);
  return {ptr, node, machine_->node(node).pool.kind, false};
}

PoolAllocation PoolAllocator::migrate(void* ptr, topo::PoolKind target,
                                      std::size_t alignment) {
  HMPT_REQUIRE(ptr != nullptr, "migrate(nullptr)");
  std::size_t size = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto info = page_map_.lookup(reinterpret_cast<std::uintptr_t>(ptr));
    HMPT_REQUIRE(info.has_value() &&
                     info->begin == reinterpret_cast<std::uintptr_t>(ptr),
                 "migrate of unknown pointer");
    size = arenas_[static_cast<std::size_t>(info->node)]->allocation_size(
        ptr);
  }
  // Allocate-copy-free outside the lock only for the copy itself; the
  // allocate/deallocate calls take the lock internally.
  PoolAllocation fresh = allocate(size, target, alignment);
  if (fresh.ptr == nullptr) return {};  // ReturnNull policy propagates
  std::memcpy(fresh.ptr, ptr, size);
  deallocate(ptr);
  return fresh;
}

void PoolAllocator::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto info = page_map_.erase(reinterpret_cast<std::uintptr_t>(ptr));
  arenas_[static_cast<std::size_t>(info.node)]->deallocate(ptr);
}

topo::PoolKind PoolAllocator::kind_of(const void* ptr) const {
  return machine_->node(node_of(ptr)).pool.kind;
}

int PoolAllocator::node_of(const void* ptr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto info = page_map_.lookup(reinterpret_cast<std::uintptr_t>(ptr));
  HMPT_REQUIRE(info.has_value(), "pointer not owned by this allocator");
  return info->node;
}

std::size_t PoolAllocator::size_of(const void* ptr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto info = page_map_.lookup(reinterpret_cast<std::uintptr_t>(ptr));
  HMPT_REQUIRE(info.has_value(), "pointer not owned by this allocator");
  return arenas_[static_cast<std::size_t>(info->node)]->allocation_size(
      reinterpret_cast<const void*>(info->begin));
}

std::size_t PoolAllocator::bytes_in_kind(topo::PoolKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (int node : machine_->nodes_of_kind(kind))
    total += arenas_[static_cast<std::size_t>(node)]->stats().allocated;
  return total;
}

std::size_t PoolAllocator::live_allocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_map_.size();
}

ArenaStats PoolAllocator::node_stats(int node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HMPT_REQUIRE(node >= 0 && node < machine_->num_nodes(),
               "node out of range");
  return arenas_[static_cast<std::size_t>(node)]->stats();
}

PageMap PoolAllocator::page_map_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return page_map_;
}

}  // namespace hmpt::pools
