// pool_allocator.h — memkind-like multi-pool allocator front-end.
//
// One arena per NUMA node of a simulated machine; allocations request a
// pool kind (DDR/HBM) or an explicit node, are placed round-robin across
// matching nodes (interleaving, like `numactl --interleave` over the pool's
// nodes), and are registered in a PageMap so the sampler can attribute
// access addresses. Thread-safe. Capacity is enforced per node with a
// configurable fallback policy — the spill-to-DDR path models what the
// paper's SHIM library must do when HBM (16 GB/tile) runs out.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "pools/arena.h"
#include "pools/page_map.h"
#include "topo/machine.h"

namespace hmpt::pools {

/// What to do when the requested pool kind has no capacity left.
enum class OomPolicy {
  Throw,       ///< raise hmpt::Error
  ReturnNull,  ///< return nullptr (malloc semantics)
  Spill,       ///< fall back to another pool kind (DDR first, then any)
};

/// Result of an allocation: pointer plus where it actually landed.
struct PoolAllocation {
  void* ptr = nullptr;
  int node = -1;
  topo::PoolKind kind = topo::PoolKind::DDR;
  bool spilled = false;  ///< placed in a fallback pool
};

class PoolAllocator {
 public:
  explicit PoolAllocator(const topo::Machine& machine,
                         OomPolicy policy = OomPolicy::Spill);

  /// Allocate from any node of `kind` (round-robin interleave).
  PoolAllocation allocate(std::size_t size, topo::PoolKind kind,
                          std::size_t alignment = 16);

  /// Allocate from a specific NUMA node.
  PoolAllocation allocate_on_node(std::size_t size, int node,
                                  std::size_t alignment = 16);

  /// Free a pointer returned by allocate*(); no-op for nullptr.
  void deallocate(void* ptr);

  /// Move a live allocation to another pool kind (realloc semantics: a new
  /// block is allocated on the target pool, contents copied, the old block
  /// freed; the returned pointer replaces `ptr`). This is the object-level
  /// analogue of move_pages() the online tuner uses between iterations.
  /// Honours the OOM policy of the allocator for the target pool.
  PoolAllocation migrate(void* ptr, topo::PoolKind target,
                         std::size_t alignment = 16);

  /// Kind/node the pointer is resident on.
  topo::PoolKind kind_of(const void* ptr) const;
  int node_of(const void* ptr) const;
  std::size_t size_of(const void* ptr) const;

  /// Live bytes per pool kind (optionally one socket).
  std::size_t bytes_in_kind(topo::PoolKind kind) const;
  std::size_t live_allocations() const;

  ArenaStats node_stats(int node) const;

  const topo::Machine& machine() const { return *machine_; }
  OomPolicy policy() const { return policy_; }

  /// Snapshot of the page map (copies under lock; for samplers/tests).
  PageMap page_map_snapshot() const;

 private:
  PoolAllocation try_allocate_kind(std::size_t size, topo::PoolKind kind,
                                   std::size_t alignment);

  const topo::Machine* machine_;
  OomPolicy policy_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<PoolArena>> arenas_;  // per node
  std::vector<int> rr_cursor_;                      // per kind
  PageMap page_map_;
  std::uint64_t next_tag_ = 1;
};

/// C++ standard allocator adapter bound to (PoolAllocator, kind); lets STL
/// containers live in a chosen pool: std::vector<double, PoolStlAllocator<double>>.
template <typename T>
class PoolStlAllocator {
 public:
  using value_type = T;

  PoolStlAllocator(PoolAllocator& pool, topo::PoolKind kind)
      : pool_(&pool), kind_(kind) {}
  template <typename U>
  PoolStlAllocator(const PoolStlAllocator<U>& other)
      : pool_(other.pool_), kind_(other.kind_) {}

  T* allocate(std::size_t n) {
    auto result = pool_->allocate(n * sizeof(T), kind_, alignof(T));
    if (!result.ptr) throw std::bad_alloc();
    return static_cast<T*>(result.ptr);
  }
  void deallocate(T* ptr, std::size_t) { pool_->deallocate(ptr); }

  bool operator==(const PoolStlAllocator& other) const {
    return pool_ == other.pool_ && kind_ == other.kind_;
  }
  bool operator!=(const PoolStlAllocator& other) const {
    return !(*this == other);
  }

  PoolAllocator* pool_;
  topo::PoolKind kind_;
};

}  // namespace hmpt::pools
