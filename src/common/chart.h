// chart.h — ASCII renderings of the paper's figure types.
//
// The bench harnesses print each figure both as CSV (for external plotting)
// and as an ASCII chart so the paper's shapes are visible straight from the
// terminal: scatter plots for the "summary views" (Figs. 7b, 9-15), line
// series for bandwidth/latency sweeps (Figs. 2-5), bars for the detailed
// view (Fig. 7a).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hmpt {

/// One plotted series: points plus the glyph used to draw them.
struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Configuration for an ASCII XY chart.
struct ChartOptions {
  int width = 72;    // plot area columns
  int height = 20;   // plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
  /// Optional horizontal reference lines (e.g. max and 90 %-of-max speedup).
  std::vector<double> hlines;
  /// Force axis ranges; auto-fit when unset.
  std::optional<double> x_min, x_max, y_min, y_max;
};

/// Render scatter/line series into a monospace grid with axes and legend.
std::string render_xy_chart(const std::vector<ChartSeries>& series,
                            const ChartOptions& options);

/// Render a labelled horizontal bar chart (used for Fig. 7a's grouped bars).
/// Each item may carry a secondary value drawn as a second bar underneath.
struct BarItem {
  std::string label;
  double value = 0.0;
  std::optional<double> secondary;  // e.g. linear-estimate speedup
};
std::string render_bar_chart(const std::vector<BarItem>& items,
                             const std::string& title, int width = 60,
                             double baseline = 0.0);

// Inline-SVG twins of the two renderers above, consuming the same series
// types so every figure the benches print has an HTML-embeddable form
// (campaign reports use these). The output is one self-contained <svg>
// element — no external assets, stylesheets or scripts — and is
// deterministic for identical inputs, so report artefacts stay
// byte-comparable across runs.

/// Render scatter/line series as an <svg> element with axes, ticks,
/// reference hlines and a legend. `options.width`/`height` are
/// interpreted as the ASCII grid size and scaled to pixels.
std::string render_xy_chart_svg(const std::vector<ChartSeries>& series,
                                const ChartOptions& options);

/// Render a labelled horizontal bar chart as an <svg> element; bars grow
/// rightwards from `baseline` (secondary values draw as hollow bars).
std::string render_bar_chart_svg(const std::vector<BarItem>& items,
                                 const std::string& title,
                                 double baseline = 0.0);

/// One span bar on a timeline: [start, end) on a shared time axis (any
/// unit — the caller labels it), drawn in the row of its `lane`.
struct TimelineItem {
  std::string label;  ///< bar caption (drawn beside the bar)
  std::string lane;   ///< row grouping, e.g. a thread name
  double start = 0.0;
  double end = 0.0;
  std::string color;  ///< CSS fill; empty = palette by lane
};

/// Render timeline items as an <svg> Gantt-style strip: one row per lane
/// (first-appearance order), bars positioned proportionally on a shared
/// axis from 0 to the latest end, axis ticks in the caller's time unit
/// (`unit` is the tick suffix, e.g. "ms"). Deterministic for identical
/// inputs, like the other SVG renderers.
std::string render_timeline_svg(const std::vector<TimelineItem>& items,
                                const std::string& title,
                                const std::string& unit = "ms");

}  // namespace hmpt
