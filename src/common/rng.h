// rng.h — deterministic, fast pseudo-random number generation.
//
// All stochastic components (IBS sampling skip, measurement noise injection,
// workload data initialisation) draw from this xoshiro256** implementation
// so that experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace hmpt {

/// Collision-resistant combination of a base seed with up to two stream
/// identifiers (splitmix64 finaliser applied per word). Seeding an Rng from
/// mix_seed(seed, stream, counter) yields statistically independent,
/// counter-based random streams: the draw for a given (stream, counter)
/// pair is a pure function of the triple, independent of any other draw —
/// the foundation of the simulator's per-(mask, repetition) noise streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t counter = 0);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from `seed` via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Gaussian via Box-Muller (one value per call; simple, branch-light).
  double next_gaussian(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (for Poisson sampling gaps).
  double next_exponential(double lambda);

  // UniformRandomBitGenerator interface for <random>/<algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace hmpt
