#include "common/thread_name.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace hmpt {

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // The kernel caps names at 15 chars + NUL; longer names would make the
  // call fail outright, so truncate instead.
  char buf[16] = {};
  name.copy(buf, sizeof(buf) - 1);
  (void)pthread_setname_np(pthread_self(), buf);
#else
  (void)name;
#endif
}

std::string current_thread_name() {
#if defined(__linux__)
  char buf[64] = {};
  if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) != 0) return {};
  return buf;
#else
  return {};
#endif
}

}  // namespace hmpt
