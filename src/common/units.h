// units.h — byte/time/bandwidth units and human-readable formatting.
//
// All quantities in hmpt are carried in SI base units (bytes, seconds) as
// double or std::uint64_t; the helpers here exist so call sites can say
// `16.0 * GiB` instead of sprinkling magic powers of two around.
#pragma once

#include <cstdint>
#include <string>

namespace hmpt {

// --- byte units -----------------------------------------------------------
inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;
inline constexpr double TiB = 1024.0 * GiB;

// Decimal units: memory vendors (and the paper's GB/s figures) use these.
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

// --- time units (seconds base) --------------------------------------------
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

// --- bandwidth (bytes/second base) ----------------------------------------
inline constexpr double GBps = 1e9;

/// Cache line size assumed throughout the memory model (bytes).
inline constexpr double kCacheLine = 64.0;

/// Format a byte count as a short human string, e.g. "26.46 GB".
std::string format_bytes(double bytes);

/// Format a bandwidth as e.g. "693.1 GB/s".
std::string format_bandwidth(double bytes_per_second);

/// Format a duration as e.g. "12.3 ms" / "104 ns".
std::string format_time(double seconds);

/// Format a ratio as a percentage string, e.g. "69.6 %".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace hmpt
