// error.h — precondition checking for the hmpt libraries.
//
// Library code throws hmpt::Error on contract violations so that tests can
// assert on failure modes; hot paths use HMPT_ASSERT which compiles to
// nothing in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace hmpt {

/// Exception type thrown on all hmpt precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

}  // namespace hmpt

/// Check `cond`; on failure throw hmpt::Error with file/line context.
#define HMPT_REQUIRE(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::hmpt::raise(std::string(__FILE__) + ":" +                      \
                    std::to_string(__LINE__) + ": requirement failed " \
                    "(" #cond "): " + (msg));                          \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define HMPT_ASSERT(cond) ((void)0)
#else
#define HMPT_ASSERT(cond) HMPT_REQUIRE(cond, "assertion")
#endif
