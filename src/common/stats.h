// stats.h — streaming statistics and repeated-measurement summaries.
//
// ExperimentRunner averages over n runs per placement configuration (as the
// paper does); RunningStats provides numerically stable mean/variance, and
// Summary adds percentiles and confidence intervals over stored samples.
// P2Quantile estimates a single quantile in O(1) memory for unbounded
// streams (the daemon's latency tracker), with QuantileTracker bundling
// the service percentiles and ConcurrentQuantileTracker adding the lock.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

namespace hmpt {

/// Welford one-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining summary: percentiles, median, CI half-width.
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the ~95 % normal-approximation confidence interval.
  double ci95_halfwidth() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats running_;
};

/// Streaming estimate of one quantile via the P² algorithm (Jain &
/// Chlamtac, CACM 1985): five markers track the quantile in O(1) memory,
/// so an unbounded observation stream (a long-running daemon's latency
/// feed) never accumulates samples the way Summary does. The first five
/// observations are exact; afterwards marker heights move by parabolic
/// (falling back to linear) interpolation. Accuracy is typically within a
/// few percent of the sample quantile for smooth distributions.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median, 0.95 for the tail.
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return count_; }
  double quantile() const { return q_; }
  /// The current estimate (exact while count() <= 5; 0 when empty).
  double value() const;

 private:
  double q_ = 0.5;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker heights (sorted)
  std::array<double, 5> positions_{};  ///< marker positions (1-based)
  std::array<double, 5> desired_{};    ///< desired marker positions
  std::array<double, 5> increment_{};  ///< desired-position increments
};

/// The service latency digest: count/mean plus streaming p50/p95/p99, all
/// O(1) memory. Not thread-safe; see ConcurrentQuantileTracker.
class QuantileTracker {
 public:
  void add(double x);
  std::size_t count() const { return running_.count(); }
  double mean() const { return running_.mean(); }
  double min() const { return running_.min(); }
  double max() const { return running_.max(); }
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }

 private:
  RunningStats running_;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// Thread-safe wrapper over QuantileTracker: writers add() concurrently,
/// readers take a consistent Snapshot — the daemon's stats endpoint reads
/// while workers record.
class ConcurrentQuantileTracker {
 public:
  struct Snapshot {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void add(double x);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  QuantileTracker tracker_;
};

/// Ordinary least squares fit y = a + b·x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Harmonic mean (used to average rates such as bandwidths over sub-tests).
double harmonic_mean(const std::vector<double>& values);

/// Geometric mean of positive values.
double geometric_mean(const std::vector<double>& values);

}  // namespace hmpt
