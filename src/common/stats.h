// stats.h — streaming statistics and repeated-measurement summaries.
//
// ExperimentRunner averages over n runs per placement configuration (as the
// paper does); RunningStats provides numerically stable mean/variance, and
// Summary adds percentiles and confidence intervals over stored samples.
#pragma once

#include <cstddef>
#include <vector>

namespace hmpt {

/// Welford one-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining summary: percentiles, median, CI half-width.
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the ~95 % normal-approximation confidence interval.
  double ci95_halfwidth() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats running_;
};

/// Ordinary least squares fit y = a + b·x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Harmonic mean (used to average rates such as bandwidths over sub-tests).
double harmonic_mean(const std::vector<double>& values);

/// Geometric mean of positive values.
double geometric_mean(const std::vector<double>& values);

}  // namespace hmpt
