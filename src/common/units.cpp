#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace hmpt {

namespace {

std::string format_scaled(double value, const char* const* suffixes,
                          int n_suffixes, double base) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= base && idx + 1 < n_suffixes) {
    v /= base;
    ++idx;
  }
  char buf[64];
  if (std::fabs(v) >= 100.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, suffixes[idx]);
  } else if (std::fabs(v) >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  }
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  static const char* kSuffix[] = {"B", "kB", "MB", "GB", "TB"};
  return format_scaled(bytes, kSuffix, 5, 1e3);
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f GB/s", bytes_per_second / GB);
  return buf;
}

std::string format_time(double seconds) {
  static const char* kSuffix[] = {"ns", "us", "ms", "s"};
  double v = seconds / ns;
  int idx = 0;
  while (std::fabs(v) >= 1e3 && idx + 1 < 4) {
    v /= 1e3;
    ++idx;
  }
  char buf[64];
  if (std::fabs(v) >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kSuffix[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kSuffix[idx]);
  }
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace hmpt
