// parse.h — strict, non-throwing numeric parsing shared by every layer
// that consumes external text (campaign files, workload parameters, CLI
// flags, shard specs).
//
// The std::stoi/std::stod family is the wrong tool for input validation:
// it throws on garbage (turning one malformed field into an uncaught
// crash unless every call site remembers its own try/catch), silently
// accepts partial consumption unless the caller checks the index, and
// happily returns "inf"/"nan" for fields where only finite values make
// sense. These helpers return std::nullopt on anything that is not a
// fully-consumed, in-range value, so call sites can emit one structured
// error naming the offending field instead of crashing or truncating.
#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

namespace hmpt {

/// Parse a whole base-10 integer into `int`. nullopt unless the entire
/// text is one integer within int range (no trailing characters, no
/// overflow, no empty string).
inline std::optional<int> parse_int_strict(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX)
    return std::nullopt;
  return static_cast<int>(value);
}

/// Parse a whole finite double. nullopt unless the entire text is one
/// number (no trailing characters like "2x"), the magnitude is in range
/// (no overflow to infinity), and the value is finite — "inf"/"nan"
/// spellings parse as doubles but are rejected here, because every field
/// these helpers guard (budgets, scales, timeouts) is meaningless
/// non-finite.
inline std::optional<double> parse_double_strict(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace hmpt
