#include "common/rng.h"

#include <cmath>

namespace hmpt {

namespace {

/// splitmix64 finaliser: a strong 64-bit mixer (Stafford mix13 constants).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t counter) {
  std::uint64_t h = mix64(seed + 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ (stream + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (counter + 0x9e3779b97f4a7c15ULL));
  return h;
}

double Rng::next_gaussian(double mean, double stddev) {
  // Box-Muller; discard the second variate to keep the generator stateless
  // beyond its 256-bit core state.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::next_exponential(double lambda) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

}  // namespace hmpt
