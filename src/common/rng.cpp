#include "common/rng.h"

#include <cmath>

namespace hmpt {

double Rng::next_gaussian(double mean, double stddev) {
  // Box-Muller; discard the second variate to keep the generator stateless
  // beyond its 256-bit core state.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::next_exponential(double lambda) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

}  // namespace hmpt
