#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/error.h"

namespace hmpt {

// -------------------------------------------------------------- JsonObject

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_)
    if (k == key) return v;
  entries_.emplace_back(key, Json());
  return entries_.back().second;
}

const Json* JsonObject::find(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

// ------------------------------------------------------------------- value

Json::Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
Json::Json(JsonArray a)
    : kind_(Kind::Array), array_(std::make_unique<JsonArray>(std::move(a))) {}
Json::Json(JsonObject o)
    : kind_(Kind::Object),
      object_(std::make_unique<JsonObject>(std::move(o))) {}

Json::Json(const Json& other)
    : kind_(other.kind_),
      bool_(other.bool_),
      number_(other.number_),
      string_(other.string_) {
  if (other.array_) array_ = std::make_unique<JsonArray>(*other.array_);
  if (other.object_) object_ = std::make_unique<JsonObject>(*other.object_);
}

Json& Json::operator=(const Json& other) {
  if (this != &other) *this = Json(other);
  return *this;
}

bool Json::as_bool() const {
  HMPT_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  HMPT_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return number_;
}

const std::string& Json::as_string() const {
  HMPT_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  HMPT_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  return *array_;
}

const JsonObject& Json::as_object() const {
  HMPT_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  return *object_;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = as_object().find(key);
  if (value == nullptr) raise("JSON object has no key '" + key + "'");
  return *value;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* value = as_object().find(key);
  return value == nullptr ? fallback : value->as_number();
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  const Json* value = as_object().find(key);
  return value == nullptr ? std::move(fallback) : value->as_string();
}

// ------------------------------------------------------------------ writer

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  HMPT_REQUIRE(std::isfinite(v), "JSON cannot represent a non-finite number");
  // Integers print without an exponent or trailing ".0" (stable, compact);
  // everything else uses max_digits10 so the value round-trips exactly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  out += buf;
}

void write_newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: write_number(out, number_); return;
    case Kind::String: write_escaped(out, string_); return;
    case Kind::Array: {
      if (array_->empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& item : *array_) {
        if (!first) out += ',';
        first = false;
        write_newline(out, indent, depth + 1);
        item.write(out, indent, depth + 1);
      }
      write_newline(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (object_->size() == 0) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out += ',';
        first = false;
        write_newline(out, indent, depth + 1);
        write_escaped(out, key);
        out += indent < 0 ? ":" : ": ";
        value.write(out, indent, depth + 1);
      }
      write_newline(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    raise("JSON parse error at offset " + std::to_string(pos_) + ": " +
          message);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't' && consume_keyword("true")) return Json(true);
    if (c == 'f' && consume_keyword("false")) return Json(false);
    if (c == 'n' && consume_keyword("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      object[key] = parse_value();
      skip_ws();
      const char next = take();
      if (next == '}') return Json(std::move(object));
      if (next != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char next = take();
      if (next == ']') return Json(std::move(array));
      if (next != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // Latin-1 range and reject the rest rather than mis-decode.
          if (code > 0xFF) fail("\\u escape beyond \\u00ff unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hmpt
