// json.h — a minimal JSON value with parser and writer.
//
// The campaign engine persists machine-readable artefacts (per-scenario
// outcomes, campaign summaries, bench trajectories) and must read them
// back for --resume, so both directions live here. The value model is the
// usual tagged union (null/bool/number/string/array/object); objects keep
// insertion order so written files are stable byte-for-byte — resumed
// campaigns must reproduce identical artefacts. No external dependency;
// the dialect is plain RFC 8259 minus \uXXXX escapes beyond ASCII needs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hmpt {

class Json;
using JsonArray = std::vector<Json>;

/// Order-preserving string->Json map (insertion order, like the writer
/// emits and the parser reads — deterministic round trips).
class JsonObject {
 public:
  Json& operator[](const std::string& key);          ///< insert or fetch
  const Json* find(const std::string& key) const;    ///< null when absent
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;  ///< null
  Json(const Json& other);
  Json(Json&&) noexcept = default;
  Json& operator=(const Json& other);
  Json& operator=(Json&&) noexcept = default;
  ~Json() = default;

  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double v) : kind_(Kind::Number), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(std::string s);
  Json(JsonArray a);
  Json(JsonObject o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors; throw hmpt::Error on a kind mismatch so malformed
  /// artefacts fail loudly instead of reading as zeroes.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field access; throws when this is not an object or the key is
  /// missing. `get_or` variants return the fallback on a missing key only.
  const Json& at(const std::string& key) const;
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

  /// Serialise. `indent` < 0 = compact one-liner; >= 0 pretty-prints with
  /// that many spaces per level. Numbers round-trip exactly (max_digits10).
  std::string dump(int indent = 2) const;

  /// Parse a document; throws hmpt::Error with offset context on garbage.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Containers live behind pointers because JsonObject (which stores Json
  // by value) is still incomplete here; copies are deep, so a Json behaves
  // like any other value type.
  std::unique_ptr<JsonArray> array_;
  std::unique_ptr<JsonObject> object_;
};

}  // namespace hmpt
