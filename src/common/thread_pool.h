// thread_pool.h — a small fixed-size worker pool for data-parallel loops.
//
// The measurement campaign of the tuner is embarrassingly parallel (every
// placement configuration is independent once the simulator is const), so
// all it needs is a work-stealing-free pool: workers claim loop indices
// from one atomic counter, or whole contiguous chunks when the caller keeps
// per-worker state (e.g. the per-phase timing cache of a Gray-order sweep).
// The pool threads persist across parallel regions; a region blocks its
// caller until every index has run and rethrows the first task exception.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hmpt {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means hardware_jobs(). Clamped to >= 1.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel lanes of a region: the worker threads plus the calling
  /// thread, which drains regions too.
  int size() const { return jobs_; }

  /// std::thread::hardware_concurrency(), but never 0.
  static int hardware_jobs();

  /// Run fn(i) for every i in [0, n); blocks until all indices finished.
  /// Indices are claimed dynamically (good load balance for uneven tasks).
  /// `fn` must be safe to call concurrently; the first exception any task
  /// throws is rethrown here after the region drains. Not reentrant: do not
  /// start a region from inside a task of the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Split [0, n) into size() contiguous chunks and run fn(begin, end) once
  /// per non-empty chunk. Contiguity is the point: a Gray-order sweep keeps
  /// per-chunk state (timing caches) effective because adjacent indices
  /// differ by one allocation group.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// One parallel region: shared by the caller and all workers.
  struct Region {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void worker_loop();
  void run_region(const std::shared_ptr<Region>& region);
  /// Claim-and-run loop shared by workers and the caller; returns when no
  /// index is left to claim.
  void drain(Region& region);

  int jobs_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait for a new region
  std::condition_variable idle_;   ///< caller waits for region completion
  std::shared_ptr<Region> region_; ///< current region (null when idle)
  std::uint64_t generation_ = 0;   ///< bumped per region so workers run once
  std::exception_ptr error_;       ///< first task exception of the region
  bool stop_ = false;
};

/// Convenience: run fn(i) over [0, n) with `jobs` workers (0 = hardware),
/// serially in the calling thread when jobs <= 1 or n < 2.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hmpt
