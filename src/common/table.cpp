#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace hmpt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HMPT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HMPT_REQUIRE(cells.size() == headers_.size(),
               "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(cell(v, precision));
  add_row(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  HMPT_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

namespace {

std::string csv_escape(const std::string& s) {
  bool needs_quote =
      s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

std::string Table::to_text() const {
  std::ostringstream os;
  write_text(os);
  return os.str();
}

void Table::write_text(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace hmpt
