#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmpt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford accumulators.
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  running_.add(x);
}

double Summary::mean() const { return running_.mean(); }
double Summary::stddev() const { return running_.stddev(); }
double Summary::min() const { return running_.min(); }
double Summary::max() const { return running_.max(); }

double Summary::percentile(double p) const {
  HMPT_REQUIRE(!samples_.empty(), "percentile of empty summary");
  HMPT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Summary::ci95_halfwidth() const {
  if (count() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count()));
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  HMPT_REQUIRE(x.size() == y.size(), "fit_linear size mismatch");
  HMPT_REQUIRE(x.size() >= 2, "fit_linear needs >= 2 points");
  double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double harmonic_mean(const std::vector<double>& values) {
  HMPT_REQUIRE(!values.empty(), "harmonic_mean of empty vector");
  double acc = 0.0;
  for (double v : values) {
    HMPT_REQUIRE(v > 0.0, "harmonic_mean requires positive values");
    acc += 1.0 / v;
  }
  return static_cast<double>(values.size()) / acc;
}

double geometric_mean(const std::vector<double>& values) {
  HMPT_REQUIRE(!values.empty(), "geometric_mean of empty vector");
  double acc = 0.0;
  for (double v : values) {
    HMPT_REQUIRE(v > 0.0, "geometric_mean requires positive values");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

}  // namespace hmpt
