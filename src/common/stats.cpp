#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmpt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford accumulators.
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  running_.add(x);
}

double Summary::mean() const { return running_.mean(); }
double Summary::stddev() const { return running_.stddev(); }
double Summary::min() const { return running_.min(); }
double Summary::max() const { return running_.max(); }

double Summary::percentile(double p) const {
  HMPT_REQUIRE(!samples_.empty(), "percentile of empty summary");
  HMPT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Summary::ci95_halfwidth() const {
  if (count() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count()));
}

P2Quantile::P2Quantile(double q) : q_(q) {
  HMPT_REQUIRE(q > 0.0 && q < 1.0, "P2Quantile quantile must be in (0, 1)");
  increment_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    // Bootstrap: the first five observations are the markers themselves.
    heights_[count_ - 1] = x;
    std::sort(heights_.begin(), heights_.begin() + count_);
    return;
  }

  // Locate the cell [heights_[k], heights_[k+1]) holding x, stretching the
  // extreme markers when x falls outside the observed range.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Nudge the three interior markers toward their desired positions by
  // piecewise-parabolic (P²) interpolation, falling back to linear when
  // the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double parabolic =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = sign > 0.0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ > 5) return heights_[2];
  // Exact small-sample quantile over the sorted bootstrap markers, with
  // the same linear interpolation Summary::percentile uses.
  const std::size_t n = count_;
  if (n == 1) return heights_[0];
  const double rank = q_ * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return heights_[lo] * (1.0 - frac) + heights_[hi] * frac;
}

void QuantileTracker::add(double x) {
  running_.add(x);
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
}

void ConcurrentQuantileTracker::add(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracker_.add(x);
}

ConcurrentQuantileTracker::Snapshot ConcurrentQuantileTracker::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.count = tracker_.count();
  snap.mean = tracker_.mean();
  snap.min = tracker_.min();
  snap.max = tracker_.max();
  snap.p50 = tracker_.p50();
  snap.p95 = tracker_.p95();
  snap.p99 = tracker_.p99();
  return snap;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  HMPT_REQUIRE(x.size() == y.size(), "fit_linear size mismatch");
  HMPT_REQUIRE(x.size() >= 2, "fit_linear needs >= 2 points");
  double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double harmonic_mean(const std::vector<double>& values) {
  HMPT_REQUIRE(!values.empty(), "harmonic_mean of empty vector");
  double acc = 0.0;
  for (double v : values) {
    HMPT_REQUIRE(v > 0.0, "harmonic_mean requires positive values");
    acc += 1.0 / v;
  }
  return static_cast<double>(values.size()) / acc;
}

double geometric_mean(const std::vector<double>& values) {
  HMPT_REQUIRE(!values.empty(), "geometric_mean of empty vector");
  double acc = 0.0;
  for (double v : values) {
    HMPT_REQUIRE(v > 0.0, "geometric_mean requires positive values");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

}  // namespace hmpt
