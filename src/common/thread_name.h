// thread_name.h — best-effort OS-level thread naming.
//
// Worker and connection threads name themselves ("hmpt-worker-3",
// "hmpt-conn-12") so traces, `top -H`, gdb and sanitizer reports
// attribute work to the right lane instead of an anonymous TID. Naming
// is purely diagnostic: failures are ignored and nothing downstream may
// depend on a name being set.
#pragma once

#include <string>

namespace hmpt {

/// Name the calling thread (Linux pthread_setname_np; silently truncated
/// to the kernel's 15-character limit, no-op where unsupported).
void set_current_thread_name(const std::string& name);

/// The calling thread's current name; empty when unavailable.
std::string current_thread_name();

}  // namespace hmpt
