#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "common/thread_name.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hmpt {

int ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  int jobs = threads == 0 ? hardware_jobs() : std::max(threads, 1);
  jobs_ = jobs;
  // The caller drains regions too, so jobs workers would oversubscribe by
  // one: spawn jobs - 1 and let the calling thread be the last lane.
  workers_.reserve(static_cast<std::size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i)
    workers_.emplace_back([this, i] {
      // Best-effort: lets traces, `top -H` and sanitizer reports
      // attribute work to a pool lane instead of an anonymous TID.
      set_current_thread_name("hmpt-worker-" + std::to_string(i + 1));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      region = region_;
    }
    if (region) drain(*region);
  }
}

void ThreadPool::drain(Region& region) {
  for (;;) {
    const std::size_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.count) return;
    static obs::Counter& tasks = obs::metrics().counter("pool.tasks");
    tasks.add();
    try {
      obs::TraceSpan span("pool", "task");
      span.arg_number("index", static_cast<std::uint64_t>(i));
      region.fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    if (region.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.count) {
      std::lock_guard<std::mutex> lock(mutex_);  // orders with the idle wait
      idle_.notify_all();
    }
  }
}

void ThreadPool::run_region(const std::shared_ptr<Region>& region) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error_ = nullptr;
    region_ = region;
    ++generation_;
  }
  wake_.notify_all();
  drain(*region);
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] {
    return region->done.load(std::memory_order_acquire) == region->count;
  });
  region_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto region = std::make_shared<Region>();
  region->fn = fn;
  region->count = n;
  run_region(region);
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size()), n);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    if (begin < end) fn(begin, end);
  });
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const int resolved = jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
  if (resolved <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for(n, fn);
}

}  // namespace hmpt
