// retry.h — the one failure model of the execution stack.
//
// Everything that retries, times out, or cancels in this codebase goes
// through the three types here, so the batch campaign runner, the hmptd
// scheduler, and the client tools agree on what "transient" means and
// back off the same way:
//
//   * RetryPolicy — attempt budget, exponential backoff with
//     *deterministic* seeded jitter (mix_seed + xoshiro, a pure function
//     of (seed, stream, attempt) — two runs of the same campaign sleep
//     the same schedule), a per-attempt deadline and a total wall-clock
//     budget across attempts.
//   * CancelToken — cooperative cancellation + deadline in one object.
//     Work checks check() at its yield points (throws hmpt::Error with a
//     "canceled:" or "timeout:" prefix past the deadline) and sleeps via
//     sleep_for(), which wakes early on cancel — a timed-out or canceled
//     job stops burning its worker instead of finishing a doomed run.
//   * attempt_with_retries() — the retry loop itself: runs a callable
//     under a fresh per-attempt token, records an AttemptRecord per
//     failure, classifies errors (terminal errors never retry), backs
//     off per the policy, and returns the value plus the full attempt
//     history.
//
// Error classification is by message prefix, matching the protocol's
// prefix-tagged errors: "terminal:" and determinism violations
// ("conflicting outcome") never retry; "canceled:" aborts the loop;
// everything else — including "timeout:" — is transient and retried
// while budget remains.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace hmpt {

/// How (and whether) to retry a failing operation. The default policy is
/// one attempt, no deadline — exactly the pre-fault-tolerance behaviour.
struct RetryPolicy {
  int max_attempts = 1;           ///< total attempts (>= 1), not "extra"
  double initial_backoff_s = 0.05;  ///< sleep after the first failure
  double backoff_multiplier = 2.0;  ///< exponential growth per attempt
  double max_backoff_s = 5.0;       ///< backoff cap
  double jitter = 0.25;           ///< +/- fraction of the backoff, seeded
  std::uint64_t seed = 0;         ///< jitter stream seed (deterministic)
  /// Per-attempt deadline; 0 = none. Each attempt's CancelToken expires
  /// this many seconds after the attempt starts.
  double attempt_deadline_s = 0.0;
  /// Total wall-clock budget across attempts *and* backoff sleeps;
  /// 0 = none. An exhausted budget stops retrying (and caps the last
  /// attempt's deadline), reported as a timeout.
  double total_deadline_s = 0.0;

  /// The backoff before attempt `attempt + 1` (attempt is 1-based: the
  /// sleep after the attempt-th failure). Deterministic in
  /// (seed, stream, attempt): exponential base, multiplied by a jitter
  /// factor drawn from mix_seed(seed, stream, attempt), capped at
  /// max_backoff_s. `stream` identifies the job (e.g. a fingerprint
  /// hash) so concurrent jobs don't back off in lockstep.
  double backoff_s(int attempt, std::uint64_t stream = 0) const;

  /// Throws hmpt::Error on nonsensical settings (attempts < 1, negative
  /// times, jitter outside [0, 1)).
  void validate() const;
};

/// One failed attempt, kept for the job's failure report.
struct AttemptRecord {
  int attempt = 0;        ///< 1-based
  std::string error;      ///< what the attempt threw
  double seconds = 0.0;   ///< attempt wall time
};

/// "attempt 1: <err> (0.12s); attempt 2: ..." — the attempt history as
/// one line, for `failed: ...` job reports.
std::string format_attempts(const std::vector<AttemptRecord>& attempts);

/// True for errors that must never be retried: messages carrying a
/// "terminal:" or "canceled:" prefix (anywhere — wrapped errors keep
/// their classification) and outcome-store determinism violations
/// ("conflicting outcome"). Everything else is transient.
bool is_terminal_error(const std::string& what);

/// Cooperative cancellation + deadline. Copies share state: the worker
/// holds one end, the canceller (scheduler stop, a deadline) the other.
/// All operations are thread-safe.
class CancelToken {
 public:
  CancelToken();

  /// Arm (or tighten) the deadline `seconds` from now. The earliest
  /// deadline wins; never loosens an existing one.
  void set_deadline_after(double seconds);

  /// Request cancellation; wakes every sleep_for(). Idempotent.
  void cancel();

  bool canceled() const;          ///< cancel() was called
  bool expired() const;           ///< the deadline has passed
  /// Seconds until the deadline; infinity when none is set, <= 0 when
  /// already expired.
  double remaining_s() const;

  /// Throw hmpt::Error "canceled: ..." / "timeout: ..." when canceled or
  /// past the deadline; return otherwise. Work calls this at its yield
  /// points (loop heads, between phases).
  void check() const;

  /// Sleep up to `seconds`, waking early on cancel() or the deadline.
  /// Returns true when the full sleep elapsed, false when interrupted.
  bool sleep_for(double seconds) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// The outcome of attempt_with_retries: the value on success, and the
/// failure history either way (empty when the first attempt succeeded).
template <typename T>
struct Attempted {
  std::optional<T> value;
  std::vector<AttemptRecord> attempts;  ///< one record per *failed* attempt

  bool ok() const { return value.has_value(); }
  /// Total attempts made (failed + the successful one, if any).
  int attempt_count() const {
    return static_cast<int>(attempts.size()) + (ok() ? 1 : 0);
  }
};

namespace detail {

/// The non-template core of attempt_with_retries: drives the attempt /
/// classify / backoff loop. `body` runs one attempt under its token and
/// returns true on success (the template wrapper stores the value).
Attempted<bool> run_attempts(
    const RetryPolicy& policy, std::uint64_t stream,
    const std::function<bool(const CancelToken&)>& body,
    const CancelToken* parent);

}  // namespace detail

/// Run `fn` under the policy: fresh CancelToken per attempt (armed with
/// the per-attempt deadline and the remaining total budget), exceptions
/// recorded as AttemptRecords, terminal errors and an exhausted budget
/// stop the loop, transient errors back off deterministically and retry.
/// `stream` seeds the jitter (use a per-job id); `parent`, when given, is
/// observed between and during attempts — cancelling it cancels the
/// attempt tokens and stops the loop.
template <typename Fn>
auto attempt_with_retries(const RetryPolicy& policy, std::uint64_t stream,
                          Fn&& fn, const CancelToken* parent = nullptr)
    -> Attempted<decltype(fn(std::declval<const CancelToken&>()))> {
  using T = decltype(fn(std::declval<const CancelToken&>()));
  Attempted<T> result;
  auto core = detail::run_attempts(
      policy, stream,
      [&](const CancelToken& token) {
        result.value = fn(token);
        return true;
      },
      parent);
  result.attempts = std::move(core.attempts);
  if (!core.ok()) result.value.reset();
  return result;
}

/// FNV-1a of a string as a jitter/fault stream id — the same hash the
/// scenario fingerprint uses, so "stream = fingerprint" is one call.
std::uint64_t stream_of(const std::string& text);

}  // namespace hmpt
