#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace hmpt {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  void pad_if_degenerate() {
    if (!valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

std::string format_tick(double v) {
  char buf[32];
  if (std::fabs(v) >= 1000.0 || (std::fabs(v) > 0 && std::fabs(v) < 0.01)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string render_xy_chart(const std::vector<ChartSeries>& series,
                            const ChartOptions& options) {
  const int w = std::max(16, options.width);
  const int h = std::max(6, options.height);

  Range xr, yr;
  for (const auto& s : series) {
    HMPT_REQUIRE(s.x.size() == s.y.size(), "series x/y size mismatch");
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  for (double v : options.hlines) yr.include(v);
  if (options.x_min) xr.lo = *options.x_min;
  if (options.x_max) xr.hi = *options.x_max;
  if (options.y_min) yr.lo = *options.y_min;
  if (options.y_max) yr.hi = *options.y_max;
  xr.pad_if_degenerate();
  yr.pad_if_degenerate();

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    double t = (x - xr.lo) / (xr.hi - xr.lo);
    int c = static_cast<int>(std::lround(t * (w - 1)));
    return std::clamp(c, 0, w - 1);
  };
  auto to_row = [&](double y) {
    double t = (y - yr.lo) / (yr.hi - yr.lo);
    int r = static_cast<int>(std::lround(t * (h - 1)));
    return std::clamp(h - 1 - r, 0, h - 1);
  };

  for (double hl : options.hlines) {
    int r = to_row(hl);
    for (int c = 0; c < w; ++c)
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '-';
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      grid[static_cast<std::size_t>(to_row(s.y[i]))]
          [static_cast<std::size_t>(to_col(s.x[i]))] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const std::string ytick_hi = format_tick(yr.hi);
  const std::string ytick_lo = format_tick(yr.lo);
  const std::size_t margin =
      std::max(ytick_hi.size(), ytick_lo.size()) + 1;

  for (int r = 0; r < h; ++r) {
    std::string prefix(margin, ' ');
    if (r == 0)
      prefix = ytick_hi + std::string(margin - ytick_hi.size(), ' ');
    else if (r == h - 1)
      prefix = ytick_lo + std::string(margin - ytick_lo.size(), ' ');
    os << prefix << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  os << std::string(margin + 1, ' ') << format_tick(xr.lo);
  const std::string xhi = format_tick(xr.hi);
  int gap = w - static_cast<int>(format_tick(xr.lo).size()) -
            static_cast<int>(xhi.size());
  os << std::string(static_cast<std::size_t>(std::max(1, gap)), ' ') << xhi
     << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(margin + 1, ' ') << options.x_label;
    if (!options.y_label.empty()) os << "   (y: " << options.y_label << ")";
    os << '\n';
  }
  for (const auto& s : series)
    os << "  " << s.glyph << " = " << s.name << '\n';
  return os.str();
}

namespace {

/// Fixed-precision SVG coordinate/value spelling — snprintf, never
/// locale-dependent streams, so identical inputs give identical bytes.
std::string svg_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// A small colour-blind-friendly palette, cycled per series/bar.
const char* svg_color(std::size_t index) {
  static const char* kPalette[] = {"#2563eb", "#dc2626", "#059669",
                                   "#d97706", "#7c3aed", "#0891b2"};
  return kPalette[index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

std::string svg_text(double x, double y, const std::string& anchor,
                     const std::string& text, const char* extra = "") {
  return "<text x=\"" + svg_num(x) + "\" y=\"" + svg_num(y) +
         "\" text-anchor=\"" + anchor + "\"" + extra + ">" +
         xml_escape(text) + "</text>\n";
}

}  // namespace

std::string render_xy_chart_svg(const std::vector<ChartSeries>& series,
                                const ChartOptions& options) {
  // The ASCII grid size scaled to pixels, with fixed margins for ticks,
  // title and labels.
  const double plot_w = std::max(16, options.width) * 8.0;
  const double plot_h = std::max(6, options.height) * 14.0;
  const double left = 64.0, top = 28.0, right = 16.0, bottom = 48.0;
  const double width = left + plot_w + right;
  const double height = top + plot_h + bottom;

  Range xr, yr;
  for (const auto& s : series) {
    HMPT_REQUIRE(s.x.size() == s.y.size(), "series x/y size mismatch");
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  for (double v : options.hlines) yr.include(v);
  if (options.x_min) xr.lo = *options.x_min;
  if (options.x_max) xr.hi = *options.x_max;
  if (options.y_min) yr.lo = *options.y_min;
  if (options.y_max) yr.hi = *options.y_max;
  xr.pad_if_degenerate();
  yr.pad_if_degenerate();

  const auto to_x = [&](double x) {
    return left + (x - xr.lo) / (xr.hi - xr.lo) * plot_w;
  };
  const auto to_y = [&](double y) {
    return top + plot_h - (y - yr.lo) / (yr.hi - yr.lo) * plot_h;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 "
     << svg_num(width) << " " << svg_num(height) << "\" width=\""
     << svg_num(width) << "\" height=\"" << svg_num(height)
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  if (!options.title.empty())
    os << svg_text(left + plot_w / 2.0, 16.0, "middle", options.title,
                   " font-size=\"13\" font-weight=\"bold\"");

  // Plot frame and four y gridline ticks.
  os << "<rect x=\"" << svg_num(left) << "\" y=\"" << svg_num(top)
     << "\" width=\"" << svg_num(plot_w) << "\" height=\"" << svg_num(plot_h)
     << "\" fill=\"none\" stroke=\"#94a3b8\"/>\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const double value = yr.lo + (yr.hi - yr.lo) * tick / 4.0;
    const double y = to_y(value);
    if (tick != 0 && tick != 4)
      os << "<line x1=\"" << svg_num(left) << "\" y1=\"" << svg_num(y)
         << "\" x2=\"" << svg_num(left + plot_w) << "\" y2=\"" << svg_num(y)
         << "\" stroke=\"#e2e8f0\"/>\n";
    os << svg_text(left - 6.0, y + 4.0, "end", format_tick(value));
  }
  os << svg_text(left, top + plot_h + 16.0, "start", format_tick(xr.lo));
  os << svg_text(left + plot_w, top + plot_h + 16.0, "end",
                 format_tick(xr.hi));
  if (!options.x_label.empty())
    os << svg_text(left + plot_w / 2.0, top + plot_h + 34.0, "middle",
                   options.x_label);
  if (!options.y_label.empty())
    os << "<text x=\"14\" y=\"" << svg_num(top + plot_h / 2.0)
       << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 "
       << svg_num(top + plot_h / 2.0) << ")\">"
       << xml_escape(options.y_label) << "</text>\n";

  for (const double hline : options.hlines) {
    const double y = to_y(hline);
    os << "<line x1=\"" << svg_num(left) << "\" y1=\"" << svg_num(y)
       << "\" x2=\"" << svg_num(left + plot_w) << "\" y2=\"" << svg_num(y)
       << "\" stroke=\"#64748b\" stroke-dasharray=\"4 3\"/>\n";
  }

  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    const char* color = svg_color(i);
    if (s.x.size() > 1) {
      os << "<polyline fill=\"none\" stroke=\"" << color
         << "\" stroke-width=\"1.5\" points=\"";
      for (std::size_t p = 0; p < s.x.size(); ++p) {
        if (p != 0) os << ' ';
        os << svg_num(to_x(s.x[p])) << ',' << svg_num(to_y(s.y[p]));
      }
      os << "\"/>\n";
    }
    for (std::size_t p = 0; p < s.x.size(); ++p)
      os << "<circle cx=\"" << svg_num(to_x(s.x[p])) << "\" cy=\""
         << svg_num(to_y(s.y[p])) << "\" r=\"2.5\" fill=\"" << color
         << "\"/>\n";
    // Legend row, top-right inside the frame.
    const double ly = top + 14.0 + 14.0 * static_cast<double>(i);
    os << "<circle cx=\"" << svg_num(left + plot_w - 120.0) << "\" cy=\""
       << svg_num(ly - 4.0) << "\" r=\"3\" fill=\"" << color << "\"/>\n";
    os << svg_text(left + plot_w - 112.0, ly, "start", s.name);
  }
  os << "</svg>\n";
  return os.str();
}

std::string render_bar_chart(const std::vector<BarItem>& items,
                             const std::string& title, int width,
                             double baseline) {
  double max_v = baseline;
  std::size_t label_w = 0;
  for (const auto& it : items) {
    max_v = std::max(max_v, it.value);
    if (it.secondary) max_v = std::max(max_v, *it.secondary);
    label_w = std::max(label_w, it.label.size());
  }
  if (max_v <= baseline) max_v = baseline + 1.0;

  auto bar_len = [&](double v) {
    double t = (v - baseline) / (max_v - baseline);
    return static_cast<int>(std::lround(std::clamp(t, 0.0, 1.0) * width));
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (const auto& it : items) {
    os << it.label << std::string(label_w - it.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(bar_len(it.value)), '#') << ' '
       << format_tick(it.value) << '\n';
    if (it.secondary) {
      os << std::string(label_w, ' ') << " |"
         << std::string(static_cast<std::size_t>(bar_len(*it.secondary)), '~')
         << ' ' << format_tick(*it.secondary) << " (est)" << '\n';
    }
  }
  return os.str();
}

std::string render_bar_chart_svg(const std::vector<BarItem>& items,
                                 const std::string& title, double baseline) {
  double max_v = baseline;
  for (const auto& item : items) {
    max_v = std::max(max_v, item.value);
    if (item.secondary) max_v = std::max(max_v, *item.secondary);
  }
  if (max_v <= baseline) max_v = baseline + 1.0;

  const double label_w = 180.0, bar_area = 420.0, value_w = 70.0;
  const double row_h = 18.0, top = title.empty() ? 8.0 : 28.0;
  double height = top + 8.0;
  for (const auto& item : items)
    height += row_h * (item.secondary ? 2.0 : 1.0);
  const double width = label_w + bar_area + value_w;

  const auto bar_len = [&](double v) {
    const double t = (v - baseline) / (max_v - baseline);
    return std::clamp(t, 0.0, 1.0) * bar_area;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 "
     << svg_num(width) << " " << svg_num(height) << "\" width=\""
     << svg_num(width) << "\" height=\"" << svg_num(height)
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  if (!title.empty())
    os << svg_text(width / 2.0, 16.0, "middle", title,
                   " font-size=\"13\" font-weight=\"bold\"");

  double y = top;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    const char* color = svg_color(i);
    os << svg_text(label_w - 6.0, y + 13.0, "end", item.label);
    os << "<rect x=\"" << svg_num(label_w) << "\" y=\"" << svg_num(y + 3.0)
       << "\" width=\"" << svg_num(bar_len(item.value))
       << "\" height=\"12\" fill=\"" << color << "\"/>\n";
    os << svg_text(label_w + bar_len(item.value) + 6.0, y + 13.0, "start",
                   format_tick(item.value));
    y += row_h;
    if (item.secondary) {
      os << "<rect x=\"" << svg_num(label_w) << "\" y=\""
         << svg_num(y + 3.0) << "\" width=\""
         << svg_num(bar_len(*item.secondary))
         << "\" height=\"12\" fill=\"none\" stroke=\"" << color << "\"/>\n";
      os << svg_text(label_w + bar_len(*item.secondary) + 6.0, y + 13.0,
                     "start", format_tick(*item.secondary) + " (est)");
      y += row_h;
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string render_timeline_svg(const std::vector<TimelineItem>& items,
                                const std::string& title,
                                const std::string& unit) {
  // Lanes in first-appearance order; the axis runs from 0 to the latest
  // end so concurrent bars line up across lanes.
  std::vector<std::string> lanes;
  const auto lane_of = [&](const std::string& lane) {
    for (std::size_t i = 0; i < lanes.size(); ++i)
      if (lanes[i] == lane) return i;
    lanes.push_back(lane);
    return lanes.size() - 1;
  };
  double max_t = 0.0;
  std::vector<std::size_t> rows;
  rows.reserve(items.size());
  for (const auto& item : items) {
    rows.push_back(lane_of(item.lane));
    max_t = std::max(max_t, item.end);
  }
  if (max_t <= 0.0) max_t = 1.0;

  const double label_w = 140.0, bar_area = 560.0;
  const double row_h = 22.0, top = title.empty() ? 8.0 : 28.0;
  const double height = top + row_h * static_cast<double>(lanes.size()) +
                        24.0;  // axis labels
  const double width = label_w + bar_area + 12.0;
  const auto to_x = [&](double t) {
    return label_w + std::clamp(t / max_t, 0.0, 1.0) * bar_area;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 "
     << svg_num(width) << " " << svg_num(height) << "\" width=\""
     << svg_num(width) << "\" height=\"" << svg_num(height)
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  if (!title.empty())
    os << svg_text(width / 2.0, 16.0, "middle", title,
                   " font-size=\"13\" font-weight=\"bold\"");

  // Lane labels and separators.
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const double y = top + row_h * static_cast<double>(i);
    os << svg_text(label_w - 6.0, y + 15.0, "end", lanes[i]);
    os << "<line x1=\"" << svg_num(label_w) << "\" y1=\"" << svg_num(y)
       << "\" x2=\"" << svg_num(label_w + bar_area) << "\" y2=\""
       << svg_num(y) << "\" stroke=\"#e5e7eb\"/>\n";
  }
  const double axis_y = top + row_h * static_cast<double>(lanes.size());
  os << "<line x1=\"" << svg_num(label_w) << "\" y1=\"" << svg_num(axis_y)
     << "\" x2=\"" << svg_num(label_w + bar_area) << "\" y2=\""
     << svg_num(axis_y) << "\" stroke=\"#9ca3af\"/>\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const double t = max_t * tick / 4.0;
    os << svg_text(to_x(t), axis_y + 16.0, tick == 0 ? "start" : "end",
                   format_tick(t) + " " + unit);
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    const double y = top + row_h * static_cast<double>(rows[i]) + 4.0;
    const double x0 = to_x(item.start);
    // A sub-pixel span still draws a visible sliver.
    const double w = std::max(to_x(item.end) - x0, 1.0);
    const std::string fill =
        item.color.empty() ? svg_color(rows[i]) : item.color;
    os << "<rect x=\"" << svg_num(x0) << "\" y=\"" << svg_num(y)
       << "\" width=\"" << svg_num(w) << "\" height=\"14\" fill=\"" << fill
       << "\" fill-opacity=\"0.85\"><title>" << xml_escape(item.label)
       << "</title></rect>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace hmpt
