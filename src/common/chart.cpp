#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace hmpt {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  void pad_if_degenerate() {
    if (!valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

std::string format_tick(double v) {
  char buf[32];
  if (std::fabs(v) >= 1000.0 || (std::fabs(v) > 0 && std::fabs(v) < 0.01)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string render_xy_chart(const std::vector<ChartSeries>& series,
                            const ChartOptions& options) {
  const int w = std::max(16, options.width);
  const int h = std::max(6, options.height);

  Range xr, yr;
  for (const auto& s : series) {
    HMPT_REQUIRE(s.x.size() == s.y.size(), "series x/y size mismatch");
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  for (double v : options.hlines) yr.include(v);
  if (options.x_min) xr.lo = *options.x_min;
  if (options.x_max) xr.hi = *options.x_max;
  if (options.y_min) yr.lo = *options.y_min;
  if (options.y_max) yr.hi = *options.y_max;
  xr.pad_if_degenerate();
  yr.pad_if_degenerate();

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    double t = (x - xr.lo) / (xr.hi - xr.lo);
    int c = static_cast<int>(std::lround(t * (w - 1)));
    return std::clamp(c, 0, w - 1);
  };
  auto to_row = [&](double y) {
    double t = (y - yr.lo) / (yr.hi - yr.lo);
    int r = static_cast<int>(std::lround(t * (h - 1)));
    return std::clamp(h - 1 - r, 0, h - 1);
  };

  for (double hl : options.hlines) {
    int r = to_row(hl);
    for (int c = 0; c < w; ++c)
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '-';
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      grid[static_cast<std::size_t>(to_row(s.y[i]))]
          [static_cast<std::size_t>(to_col(s.x[i]))] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const std::string ytick_hi = format_tick(yr.hi);
  const std::string ytick_lo = format_tick(yr.lo);
  const std::size_t margin =
      std::max(ytick_hi.size(), ytick_lo.size()) + 1;

  for (int r = 0; r < h; ++r) {
    std::string prefix(margin, ' ');
    if (r == 0)
      prefix = ytick_hi + std::string(margin - ytick_hi.size(), ' ');
    else if (r == h - 1)
      prefix = ytick_lo + std::string(margin - ytick_lo.size(), ' ');
    os << prefix << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  os << std::string(margin + 1, ' ') << format_tick(xr.lo);
  const std::string xhi = format_tick(xr.hi);
  int gap = w - static_cast<int>(format_tick(xr.lo).size()) -
            static_cast<int>(xhi.size());
  os << std::string(static_cast<std::size_t>(std::max(1, gap)), ' ') << xhi
     << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(margin + 1, ' ') << options.x_label;
    if (!options.y_label.empty()) os << "   (y: " << options.y_label << ")";
    os << '\n';
  }
  for (const auto& s : series)
    os << "  " << s.glyph << " = " << s.name << '\n';
  return os.str();
}

std::string render_bar_chart(const std::vector<BarItem>& items,
                             const std::string& title, int width,
                             double baseline) {
  double max_v = baseline;
  std::size_t label_w = 0;
  for (const auto& it : items) {
    max_v = std::max(max_v, it.value);
    if (it.secondary) max_v = std::max(max_v, *it.secondary);
    label_w = std::max(label_w, it.label.size());
  }
  if (max_v <= baseline) max_v = baseline + 1.0;

  auto bar_len = [&](double v) {
    double t = (v - baseline) / (max_v - baseline);
    return static_cast<int>(std::lround(std::clamp(t, 0.0, 1.0) * width));
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (const auto& it : items) {
    os << it.label << std::string(label_w - it.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(bar_len(it.value)), '#') << ' '
       << format_tick(it.value) << '\n';
    if (it.secondary) {
      os << std::string(label_w, ' ') << " |"
         << std::string(static_cast<std::size_t>(bar_len(*it.secondary)), '~')
         << ' ' << format_tick(*it.secondary) << " (est)" << '\n';
    }
  }
  return os.str();
}

}  // namespace hmpt
