// table.h — tabular output for bench harnesses and reports.
//
// Every figure/table harness emits (a) a CSV block that can be redirected to
// a file and plotted, and (b) an aligned text rendering for the terminal.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hmpt {

/// Column-oriented table with string cells; knows how to render itself as
/// CSV or as an aligned ASCII table.
class Table {
 public:
  /// An empty table (no columns); add_row() on it always throws. Exists so
  /// report structs can default-construct before being filled in.
  Table() = default;
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Aligned monospace rendering with a header rule.
  std::string to_text() const;

  void write_csv(std::ostream& os) const;
  void write_text(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string cell(double value, int precision = 4);

}  // namespace hmpt
