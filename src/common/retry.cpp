#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.h"

namespace hmpt {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void RetryPolicy::validate() const {
  HMPT_REQUIRE(max_attempts >= 1, "retry policy needs >= 1 attempt");
  HMPT_REQUIRE(initial_backoff_s >= 0.0 && max_backoff_s >= 0.0 &&
                   attempt_deadline_s >= 0.0 && total_deadline_s >= 0.0,
               "retry policy times must be >= 0");
  HMPT_REQUIRE(backoff_multiplier >= 1.0,
               "backoff multiplier must be >= 1");
  HMPT_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
}

double RetryPolicy::backoff_s(int attempt, std::uint64_t stream) const {
  if (attempt < 1 || initial_backoff_s <= 0.0) return 0.0;
  double base = initial_backoff_s *
                std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  base = std::min(base, max_backoff_s);
  if (jitter > 0.0) {
    // One uniform draw, a pure function of (seed, stream, attempt):
    // factor in [1 - jitter, 1 + jitter).
    Rng rng(mix_seed(seed, stream, static_cast<std::uint64_t>(attempt)));
    base *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  }
  return std::min(base, max_backoff_s);
}

std::string format_attempts(const std::vector<AttemptRecord>& attempts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i > 0) os << "; ";
    os << "attempt " << attempts[i].attempt << ": " << attempts[i].error;
    os << " (" << std::fixed;
    os.precision(2);
    os << attempts[i].seconds << "s)";
  }
  return os.str();
}

bool is_terminal_error(const std::string& what) {
  return what.find("terminal:") != std::string::npos ||
         what.find("canceled:") != std::string::npos ||
         what.find("conflicting outcome") != std::string::npos;
}

// ------------------------------------------------------------ CancelToken

struct CancelToken::State {
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool canceled = false;
  bool has_deadline = false;
  Clock::time_point deadline{};
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void CancelToken::set_deadline_after(double seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->has_deadline || deadline < state_->deadline) {
    state_->has_deadline = true;
    state_->deadline = deadline;
  }
  state_->cv.notify_all();
}

void CancelToken::cancel() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->canceled = true;
  }
  state_->cv.notify_all();
}

bool CancelToken::canceled() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->canceled;
}

bool CancelToken::expired() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->has_deadline && Clock::now() >= state_->deadline;
}

double CancelToken::remaining_s() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->has_deadline)
    return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(state_->deadline - Clock::now())
      .count();
}

void CancelToken::check() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->canceled) raise("canceled: the job was canceled");
  if (state_->has_deadline && Clock::now() >= state_->deadline)
    raise("timeout: the attempt deadline expired");
}

bool CancelToken::sleep_for(double seconds) const {
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::unique_lock<std::mutex> lock(state_->mutex);
  for (;;) {
    if (state_->canceled) return false;
    if (state_->has_deadline && Clock::now() >= state_->deadline)
      return false;
    const auto now = Clock::now();
    if (now >= until) return true;
    // Wake at the earliest of: requested sleep end, the deadline (so an
    // armed deadline interrupts the sleep), or a cancel notification.
    auto wake = until;
    if (state_->has_deadline && state_->deadline < wake)
      wake = state_->deadline;
    state_->cv.wait_until(lock, wake);
  }
}

// ------------------------------------------------------------ retry loop

namespace detail {

Attempted<bool> run_attempts(
    const RetryPolicy& policy, std::uint64_t stream,
    const std::function<bool(const CancelToken&)>& body,
    const CancelToken* parent) {
  policy.validate();
  Attempted<bool> result;
  const auto start = Clock::now();
  const auto remaining_total = [&]() -> double {
    if (policy.total_deadline_s <= 0.0)
      return std::numeric_limits<double>::infinity();
    return policy.total_deadline_s - seconds_since(start);
  };

  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (parent != nullptr && parent->canceled()) {
      result.attempts.push_back(
          {attempt, "canceled: the job was canceled", 0.0});
      return result;
    }
    const double budget = remaining_total();
    if (budget <= 0.0) {
      result.attempts.push_back(
          {attempt, "timeout: total retry budget exhausted", 0.0});
      return result;
    }

    CancelToken token;
    if (policy.attempt_deadline_s > 0.0)
      token.set_deadline_after(policy.attempt_deadline_s);
    if (std::isfinite(budget)) token.set_deadline_after(budget);
    if (parent != nullptr && parent->canceled()) token.cancel();

    const auto attempt_start = Clock::now();
    try {
      body(token);
      result.value = true;
      return result;
    } catch (const std::exception& e) {
      result.attempts.push_back(
          {attempt, e.what(), seconds_since(attempt_start)});
      if (is_terminal_error(e.what())) return result;
    } catch (...) {
      result.attempts.push_back(
          {attempt, "unknown error", seconds_since(attempt_start)});
    }

    if (attempt == policy.max_attempts) return result;
    const double pause =
        std::min(policy.backoff_s(attempt, stream), remaining_total());
    if (pause > 0.0) {
      // Sleep on the parent when there is one so a stop/cancel wakes the
      // backoff immediately; a plain token never wakes early.
      const CancelToken idle;
      const CancelToken& sleeper = parent != nullptr ? *parent : idle;
      if (!sleeper.sleep_for(pause)) {
        result.attempts.push_back(
            {attempt + 1, "canceled: the job was canceled", 0.0});
        return result;
      }
    }
  }
  return result;
}

}  // namespace detail

std::uint64_t stream_of(const std::string& text) {
  // FNV-1a 64-bit, the same construction the scenario fingerprint uses.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace hmpt
