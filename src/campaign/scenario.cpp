#include "campaign/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "campaign/platforms.h"
#include "common/error.h"
#include "common/parse.h"
#include "core/strategy.h"

namespace hmpt::campaign {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// A "recorded" workload is really the *contents* of its profile file, so
/// the content address must cover them: hashing only the path would let
/// --resume serve stale outcomes after the profile is re-recorded. A
/// missing/unreadable file gets a stable marker — such a scenario fails at
/// execute time anyway, it just must not crash planning. Fingerprints are
/// recomputed per use (dedup, store paths, every aggregate table), so the
/// digest is cached per path and re-read only when mtime/size change.
std::string profile_digest(const WorkloadParams& params) {
  const auto it = params.find("path");
  if (it == params.end()) return "no-path";
  const std::string& path = it->second;

  namespace fs = std::filesystem;
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  const auto size = ec ? 0 : fs::file_size(path, ec);
  if (ec) return "unreadable";

  struct Cached {
    fs::file_time_type mtime;
    std::uintmax_t size = 0;
    std::string digest;
  };
  static std::mutex mutex;
  static std::map<std::string, Cached> cache;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto hit = cache.find(path);
    if (hit != cache.end() && hit->second.mtime == mtime &&
        hit->second.size == size)
      return hit->second.digest;
  }

  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return "unreadable";
  std::stringstream buffer;
  buffer << is.rdbuf();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(buffer.str())));
  std::lock_guard<std::mutex> lock(mutex);
  cache[path] = {mtime, size, buf};
  return buf;
}

/// Render a double compactly but losslessly for canonical()/labels.
std::string number_text(double value) {
  char buf[40];
  if (std::fabs(value) < 9e15 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

}  // namespace

// ---------------------------------------------------------------- Scenario

std::string Scenario::label() const {
  std::string out = workload.to_string() + "/" + platform + "/" + strategy;
  if (tiers != 0) out += "/tiers=" + std::to_string(tiers);
  if (budget_gb > 0.0) out += "/budget=" + number_text(budget_gb) + "GB";
  for (const auto& [tier, gb] : tier_budgets_gb)
    out += "/t" + std::to_string(tier) + "=" + number_text(gb) + "GB";
  return out;
}

std::string Scenario::canonical() const {
  std::string out = "v" + std::to_string(kFingerprintVersion);
  out += "|workload=" + workload.to_string();
  if (workload.name == "recorded")
    out += "|profile_digest=" + profile_digest(workload.params);
  out += "|platform=" + platform;
  out += "|strategy=" + strategy;
  out += "|tiers=" + std::to_string(tiers);
  out += "|budget_gb=" + number_text(budget_gb);
  auto budgets = tier_budgets_gb;
  std::sort(budgets.begin(), budgets.end());
  for (const auto& [tier, gb] : budgets)
    out += "|tier_budget_gb=" + std::to_string(tier) + ":" + number_text(gb);
  out += "|reps=" + std::to_string(repetitions);
  out += "|top_k=" + std::to_string(top_k);
  return out;
}

std::string Scenario::fingerprint() const {
  // FNV-1a 64-bit over the canonical text: stable across platforms and
  // builds (no std::hash, whose value is implementation-defined).
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(canonical())));
  return buf;
}

Json Scenario::to_json() const {
  JsonObject o;
  o["workload"] = Json(workload.to_string());
  o["platform"] = Json(platform);
  o["strategy"] = Json(strategy);
  o["tiers"] = Json(tiers);
  o["budget_gb"] = Json(budget_gb);
  if (!tier_budgets_gb.empty()) {
    JsonArray budgets;
    for (const auto& [tier, gb] : tier_budgets_gb) {
      JsonObject b;
      b["tier"] = Json(tier);
      b["gb"] = Json(gb);
      budgets.push_back(Json(std::move(b)));
    }
    o["tier_budgets_gb"] = Json(std::move(budgets));
  }
  o["repetitions"] = Json(repetitions);
  o["top_k"] = Json(top_k);
  return Json(std::move(o));
}

Scenario Scenario::from_json(const Json& json) {
  Scenario s;
  s.workload = parse_workload_spec(json.at("workload").as_string());
  s.platform = json.at("platform").as_string();
  s.strategy = json.at("strategy").as_string();
  s.tiers = static_cast<int>(json.at("tiers").as_number());
  s.budget_gb = json.at("budget_gb").as_number();
  if (const Json* budgets = json.as_object().find("tier_budgets_gb")) {
    for (const Json& b : budgets->as_array())
      s.tier_budgets_gb.emplace_back(
          static_cast<int>(b.at("tier").as_number()),
          b.at("gb").as_number());
  }
  s.repetitions = static_cast<int>(json.at("repetitions").as_number());
  s.top_k = static_cast<int>(json.at("top_k").as_number());
  return s;
}

// ------------------------------------------------------ campaign / shards

std::string campaign_fingerprint(const std::vector<Scenario>& scenarios) {
  std::vector<std::string> fingerprints;
  fingerprints.reserve(scenarios.size());
  for (const auto& s : scenarios) fingerprints.push_back(s.fingerprint());
  return campaign_fingerprint(fingerprints);
}

std::string campaign_fingerprint(
    const std::vector<std::string>& fingerprints) {
  std::string text = "campaign-v" + std::to_string(kFingerprintVersion);
  for (const auto& fp : fingerprints) text += "|" + fp;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(text)));
  return buf;
}

std::string ShardSpec::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardSpec parse_shard_spec(const std::string& text) {
  const auto slash = text.find('/');
  HMPT_REQUIRE(slash != std::string::npos,
               "shard spec must be i/N (e.g. 2/3), got '" + text + "'");
  // Checked full-consumption parsing (common/parse.h): a malformed spec
  // produces one structured error, never an uncaught std::stoi throw.
  const auto as_int = [&](const std::string& part) {
    const auto v = parse_int_strict(part);
    if (!v)
      raise("shard spec must be i/N (e.g. 2/3), got '" + text + "'");
    return *v;
  };
  ShardSpec shard;
  shard.index = as_int(text.substr(0, slash));
  shard.count = as_int(text.substr(slash + 1));
  HMPT_REQUIRE(shard.count >= 1 && shard.index >= 1 &&
                   shard.index <= shard.count,
               "shard spec needs 1 <= i <= N, got '" + text + "'");
  return shard;
}

void save_scenario_plan(const std::string& path,
                        const std::vector<Scenario>& scenarios) {
  JsonObject o;
  o["format_version"] = Json(kFingerprintVersion);
  JsonArray list;
  for (const auto& s : scenarios) list.push_back(s.to_json());
  o["scenarios"] = Json(std::move(list));
  const std::string bytes = Json(std::move(o)).dump();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os.good()) raise("cannot write " + tmp);
    os << bytes;
    os.flush();
    if (!os.good()) raise("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    raise("cannot finalise " + path + ": " + ec.message());
  }
}

std::vector<Scenario> load_scenario_plan(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) raise("cannot read scenario plan " + path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    HMPT_REQUIRE(static_cast<int>(doc.at("format_version").as_number()) ==
                     kFingerprintVersion,
                 "plan format version mismatch");
    std::vector<Scenario> scenarios;
    for (const Json& s : doc.at("scenarios").as_array())
      scenarios.push_back(Scenario::from_json(s));
    return scenarios;
  } catch (const std::exception& e) {
    raise("corrupt scenario plan " + path + ": " + e.what());
  }
}

std::vector<Scenario> shard_scenarios(const std::vector<Scenario>& scenarios,
                                      const ShardSpec& shard) {
  HMPT_REQUIRE(shard.count >= 1 && shard.index >= 1 &&
                   shard.index <= shard.count,
               "shard needs 1 <= index <= count");
  // Order by fingerprint — a content address, so every process computes
  // the same order whatever the declaration spelled — then deal ranks
  // round-robin: rank r goes to shard (r mod count) + 1.
  std::vector<std::size_t> order(scenarios.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::string> fingerprints(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    fingerprints[i] = scenarios[i].fingerprint();
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return fingerprints[a] < fingerprints[b];
            });

  std::vector<Scenario> out;
  for (std::size_t rank = static_cast<std::size_t>(shard.index - 1);
       rank < order.size(); rank += static_cast<std::size_t>(shard.count))
    out.push_back(scenarios[order[rank]]);
  return out;
}

// ---------------------------------------------------------- ScenarioMatrix

std::vector<Scenario> ScenarioMatrix::expand() const {
  HMPT_REQUIRE(!workloads.empty(), "campaign declares no workloads");
  HMPT_REQUIRE(!platforms.empty(), "campaign declares no platforms");
  HMPT_REQUIRE(!strategies.empty(), "campaign declares no strategies");
  HMPT_REQUIRE(repetitions >= 1, "campaign reps must be >= 1");
  HMPT_REQUIRE(top_k >= 1, "campaign top-k must be >= 1");

  const auto& registry = WorkloadRegistry::instance();
  for (const auto& spec : workloads) {
    if (!registry.contains(spec.name)) {
      std::string known;
      for (const auto& n : registry.names())
        known += (known.empty() ? "" : ", ") + n;
      raise("unknown workload: '" + spec.name + "' (known: " + known + ")");
    }
  }
  for (const auto& strategy : strategies) {
    if (!tuner::StrategyRegistry::instance().contains(strategy))
      raise("unknown strategy: '" + strategy + "'");
  }
  for (const int t : tiers)
    HMPT_REQUIRE(t == 0 || t >= 2,
                 "campaign tiers must be 0 (platform native) or >= 2");
  for (const double gb : budgets_gb)
    HMPT_REQUIRE(gb >= 0.0, "campaign budget-gb must be >= 0");
  auto sorted_tier_budgets = tier_budgets_gb;
  std::sort(sorted_tier_budgets.begin(), sorted_tier_budgets.end());
  for (const auto& [tier, gb] : sorted_tier_budgets)
    HMPT_REQUIRE(tier >= 1 && gb >= 0.0,
                 "campaign tier-budget-gb needs tier >= 1 and budget >= 0");

  const std::vector<int> tier_axis = tiers.empty() ? std::vector<int>{0}
                                                   : tiers;
  const std::vector<double> budget_axis =
      budgets_gb.empty() ? std::vector<double>{0.0} : budgets_gb;

  std::vector<Scenario> out;
  std::set<std::string> seen;
  for (const auto& spec : workloads) {
    for (const auto& platform : platforms) {
      const std::string canonical = canonical_platform(platform);
      for (const auto& strategy : strategies) {
        for (const int tier_count : tier_axis) {
          for (const double budget : budget_axis) {
            Scenario s;
            s.workload = spec;
            s.platform = canonical;
            s.strategy = strategy;
            s.tiers = tier_count;
            s.budget_gb = budget;
            s.tier_budgets_gb = sorted_tier_budgets;
            s.repetitions = repetitions;
            s.top_k = top_k;
            if (seen.insert(s.fingerprint()).second)
              out.push_back(std::move(s));
          }
        }
      }
    }
  }
  return out;
}

ScenarioMatrix ScenarioMatrix::parse(std::istream& is) {
  ScenarioMatrix matrix;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // '#' starts a comment only at line start or after whitespace, so
    // values that contain one (e.g. recorded:path=/data/run#3.profile)
    // survive.
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '#') continue;
      if (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t') {
        line = line.substr(0, i);
        break;
      }
    }
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank/comment line

    std::string value;
    if (!(tokens >> value))
      raise("campaign file line " + std::to_string(line_no) + ": '" +
            directive + "' needs a value");
    std::string extra;
    if (tokens >> extra)
      raise("campaign file line " + std::to_string(line_no) +
            ": trailing text after '" + value + "'");

    // Checked full-consumption parsing (common/parse.h): partial values
    // ("2x"), overflow ("1e999") and non-finite spellings ("inf", "nan")
    // all produce the same structured parse error naming the line —
    // a bad campaign file must never crash or silently misconfigure.
    const auto as_int = [&](const std::string& text) {
      const auto v = parse_int_strict(text);
      if (!v)
        raise("campaign file line " + std::to_string(line_no) +
              ": not an integer: '" + text + "'");
      return *v;
    };
    const auto as_double = [&](const std::string& text) {
      const auto v = parse_double_strict(text);
      if (!v)
        raise("campaign file line " + std::to_string(line_no) +
              ": not a finite number: '" + text + "'");
      return *v;
    };

    if (directive == "workload") {
      matrix.workloads.push_back(parse_workload_spec(value));
    } else if (directive == "platform") {
      matrix.platforms.push_back(value);
    } else if (directive == "strategy") {
      matrix.strategies.push_back(value);
    } else if (directive == "tiers") {
      matrix.tiers.push_back(as_int(value));
    } else if (directive == "budget-gb") {
      matrix.budgets_gb.push_back(as_double(value));
    } else if (directive == "tier-budget-gb") {
      const auto colon = value.find(':');
      if (colon == std::string::npos)
        raise("campaign file line " + std::to_string(line_no) +
              ": tier-budget-gb expects tier:gb");
      matrix.tier_budgets_gb.emplace_back(as_int(value.substr(0, colon)),
                                          as_double(value.substr(colon + 1)));
    } else if (directive == "reps") {
      matrix.repetitions = as_int(value);
    } else if (directive == "top-k") {
      matrix.top_k = as_int(value);
    } else {
      raise("campaign file line " + std::to_string(line_no) +
            ": unknown directive '" + directive + "'");
    }
  }
  return matrix;
}

ScenarioMatrix ScenarioMatrix::parse(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

ScenarioMatrix ScenarioMatrix::load(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) raise("cannot read campaign file: " + path);
  return parse(is);
}

}  // namespace hmpt::campaign
