// campaign.h — the engine that runs a scenario fleet.
//
// Takes the expanded scenario list of a ScenarioMatrix and executes each
// scenario through the Session facade on a freshly-built platform
// simulator, with
//   * scenario-level concurrency (common/ThreadPool; each scenario owns
//     its simulator, so scenarios are independent),
//   * a resumable on-disk OutcomeStore — with `resume` set, scenarios
//     whose fingerprint is already stored load instead of executing,
//   * a dry-run mode that only plans (no execution, no store writes),
//   * keep-going vs fail-fast error policy.
// Results come back in scenario order whatever the concurrency, so
// aggregation (runs.csv, ranked summaries) is deterministic and a resumed
// campaign reproduces its artefacts byte-for-byte.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/outcome_store.h"
#include "campaign/scenario.h"
#include "core/strategy.h"

namespace hmpt::campaign {

struct CampaignOptions {
  std::string output_dir = "campaign-out";  ///< store + aggregate artefacts
  bool resume = false;    ///< skip scenarios already in the store
  bool dry_run = false;   ///< plan only: no execution, no writes
  /// Record failed scenarios and keep running (exit status reports them);
  /// false = fail fast, first error aborts the campaign.
  bool keep_going = false;
  /// Concurrent scenarios (1 = serial, 0 = all hardware threads).
  int scenario_jobs = 1;
  /// Measurement worker threads inside each scenario's Session. The
  /// default keeps one thread per scenario — scenario-level parallelism
  /// composes badly with nested measurement pools.
  int measure_jobs = 1;
};

struct ScenarioRun {
  enum class Status {
    Planned,   ///< dry run: would execute
    Executed,  ///< ran and was stored
    Cached,    ///< loaded from the store (--resume hit)
    Failed,    ///< threw; error holds the message (keep-going only)
  };

  Scenario scenario;
  Status status = Status::Planned;
  tuner::TuningOutcome outcome;  ///< valid for Executed/Cached
  std::string error;             ///< valid for Failed
  double seconds = 0.0;          ///< wall time of the execution (0 otherwise)
};

const char* to_string(ScenarioRun::Status status);

struct CampaignResult {
  std::vector<ScenarioRun> runs;  ///< scenario order
  int executed = 0;
  int cached = 0;
  int failed = 0;
  int planned = 0;
  double seconds = 0.0;  ///< campaign wall time

  bool ok() const { return failed == 0; }
};

/// Progress hook: fired (serialised, from any worker) when a scenario
/// finishes. `index` is the position in the scenario list.
using ScenarioCallback =
    std::function<void(std::size_t index, const ScenarioRun& run)>;

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);

  const CampaignOptions& options() const { return options_; }
  const OutcomeStore& store() const { return store_; }

  /// Execute (or plan, or resume) the scenario list.
  CampaignResult run(const std::vector<Scenario>& scenarios,
                     const ScenarioCallback& on_scenario = {}) const;

  /// Execute one scenario end to end: build the platform, resolve the
  /// workload by name, tune through a Session. Public so single-scenario
  /// callers (tests, tools) share the exact campaign execution path.
  static tuner::TuningOutcome execute(const Scenario& scenario,
                                      int measure_jobs = 1);

 private:
  CampaignOptions options_;
  OutcomeStore store_;
};

}  // namespace hmpt::campaign
