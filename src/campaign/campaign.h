// campaign.h — the engine that runs a scenario fleet.
//
// Takes the expanded scenario list of a ScenarioMatrix and executes each
// scenario through the Session facade on a freshly-built platform
// simulator, with
//   * scenario-level concurrency (common/ThreadPool; each scenario owns
//     its simulator, so scenarios are independent),
//   * a resumable on-disk OutcomeStore — with `resume` set, scenarios
//     whose fingerprint is already stored load instead of executing,
//   * a dry-run mode that only plans (no execution, no store writes),
//   * keep-going vs fail-fast error policy.
// Results come back in scenario order whatever the concurrency, so
// aggregation (runs.csv, ranked summaries) is deterministic and a resumed
// campaign reproduces its artefacts byte-for-byte.
//
// Scaling beyond one process: shard_scenarios (scenario.h) deals the
// campaign into disjoint slices, each run by its own CampaignRunner with
// its own store, and merge.h reassembles the stores losslessly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/outcome_store.h"
#include "campaign/scenario.h"
#include "core/strategy.h"

namespace hmpt::campaign {

struct CampaignOptions {
  std::string output_dir = "campaign-out";  ///< store + aggregate artefacts
  /// On-disk outcome store layout (see outcome_store.h): one file per
  /// scenario (dir, the default) or one append-only packed log for
  /// fleet-scale campaigns. Stored bytes are identical either way, and
  /// hmpt_merge converts between formats losslessly.
  StoreFormat store_format = StoreFormat::Dir;
  bool resume = false;    ///< skip scenarios already in the store
  bool dry_run = false;   ///< plan only: no execution, no writes
  /// Record failed scenarios and keep running (exit status reports them);
  /// false = fail fast, first error aborts the campaign.
  bool keep_going = false;
  /// Concurrent scenarios (1 = serial, 0 = all hardware threads).
  int scenario_jobs = 1;
  /// Measurement worker threads inside each scenario's Session. The
  /// default keeps one thread per scenario — scenario-level parallelism
  /// composes badly with nested measurement pools.
  int measure_jobs = 1;
  /// Execution attempts per scenario (>= 1; 1 = fail fast). Transient
  /// failures are retried with the same deterministic backoff the daemon
  /// scheduler uses (common/retry); terminal errors never retry.
  int attempts = 1;
  /// Per-attempt deadline in seconds; 0 = none. Enforcement is
  /// cooperative (checked at attempt boundaries): an expired deadline
  /// fails the attempt and stops further ones.
  double scenario_timeout_s = 0.0;
};

struct ScenarioRun {
  enum class Status {
    Planned,   ///< dry run: would execute
    Executed,  ///< ran and was stored
    Cached,    ///< loaded from the store (--resume hit)
    Failed,    ///< threw; error holds the message (keep-going only)
  };

  Scenario scenario;             ///< what ran (or would run)
  /// Content address captured when the scenario ran. Aggregation and
  /// manifests use this stored string, never a recomputed hash, so a
  /// recorded-profile file changing on disk after the run cannot re-key
  /// a finished scenario. Empty only for hand-built results (aggregation
  /// then falls back to recomputing).
  std::string fingerprint;
  Status status = Status::Planned;
  tuner::TuningOutcome outcome;  ///< valid for Executed/Cached
  std::string error;             ///< valid for Failed
  double seconds = 0.0;          ///< wall time of the execution (0 otherwise)
  /// Execution attempts made (retries included); 0 for Planned/Cached.
  /// Volatile — lands in status.json, never in runs.csv/summary.json.
  int attempts = 0;
};

/// The status's artefact spelling ("planned"/"executed"/"cached"/"failed").
const char* to_string(ScenarioRun::Status status);

/// Everything a campaign run (or a shard merge) produced, in scenario
/// order whatever the concurrency — aggregation over it is deterministic.
struct CampaignResult {
  std::vector<ScenarioRun> runs;  ///< scenario order
  int executed = 0;               ///< ran fresh and were stored
  int cached = 0;                 ///< served from the outcome store
  int failed = 0;                 ///< recorded failures (keep-going)
  int planned = 0;                ///< dry-run entries
  double seconds = 0.0;           ///< campaign wall time

  /// True when no scenario failed (planned/cached/executed all count as
  /// success).
  bool ok() const { return failed == 0; }
};

/// Progress hook: fired (serialised, from any worker) when a scenario
/// finishes. `index` is the position in the scenario list.
using ScenarioCallback =
    std::function<void(std::size_t index, const ScenarioRun& run)>;

class CampaignRunner {
 public:
  /// Validates the options (job counts); opening the underlying store
  /// writes nothing until the first outcome is saved.
  explicit CampaignRunner(CampaignOptions options);

  /// The options this runner was built with.
  const CampaignOptions& options() const { return options_; }
  /// The outcome store under options().output_dir.
  const OutcomeStore& store() const { return store_; }

  /// Execute (or plan, or resume) the scenario list.
  CampaignResult run(const std::vector<Scenario>& scenarios,
                     const ScenarioCallback& on_scenario = {}) const;

  /// Execute one scenario end to end: build the platform, resolve the
  /// workload by name, tune through a Session. Public so single-scenario
  /// callers (tests, tools) share the exact campaign execution path.
  static tuner::TuningOutcome execute(const Scenario& scenario,
                                      int measure_jobs = 1);

 private:
  CampaignOptions options_;
  OutcomeStore store_;
};

}  // namespace hmpt::campaign
