#include "campaign/platforms.h"

#include "common/error.h"
#include "topo/machine.h"

namespace hmpt::campaign {

const std::vector<PlatformInfo>& platform_catalog() {
  static const std::vector<PlatformInfo> catalog = {
      {"xeon-max",
       {"spr"},
       "dual-socket Xeon Max 9468, flat HBM+DDR (the paper platform)",
       2,
       [] { return sim::MachineSimulator::paper_platform(); }},
      {"xeon-max-1s",
       {"spr1"},
       "one Xeon Max socket (the platform of Figs. 2-5)",
       2,
       [] { return sim::MachineSimulator::paper_platform_single(); }},
      {"spr-cxl",
       {},
       "one Xeon Max socket + CXL memory expander (3 tiers)",
       3,
       [] { return sim::MachineSimulator::cxl_tiered_platform(); }},
      {"knl",
       {},
       "KNL-like flat MCDRAM+DDR in SNC-4",
       2,
       [] {
         return sim::MachineSimulator(topo::knl_like_flat_snc4(),
                                      sim::knl_like_calibration());
       }},
  };
  return catalog;
}

std::vector<std::string> platform_names() {
  std::vector<std::string> names;
  for (const auto& info : platform_catalog()) names.push_back(info.name);
  return names;
}

namespace {

const PlatformInfo* lookup(const std::string& name) {
  for (const auto& info : platform_catalog()) {
    if (info.name == name) return &info;
    for (const auto& alias : info.aliases)
      if (alias == name) return &info;
  }
  return nullptr;
}

}  // namespace

bool is_platform(const std::string& name) { return lookup(name) != nullptr; }

std::string canonical_platform(const std::string& name) {
  const PlatformInfo* info = lookup(name);
  if (info == nullptr) {
    std::string known;
    for (const auto& n : platform_names())
      known += (known.empty() ? "" : ", ") + n;
    raise("unknown platform: '" + name + "' (known: " + known + ")");
  }
  return info->name;
}

sim::MachineSimulator make_platform(const std::string& name) {
  return lookup(canonical_platform(name))->factory();
}

std::string platform_catalog_text() {
  std::string out = "platform catalogue:\n";
  for (const auto& info : platform_catalog()) {
    out += "  " + info.name;
    for (const auto& alias : info.aliases) out += " (alias " + alias + ")";
    out += "  —  " + info.description + " [" +
           std::to_string(info.tiers) + " tiers]\n";
  }
  return out;
}

}  // namespace hmpt::campaign
