#include "campaign/merge.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "core/outcome_io.h"

namespace hmpt::campaign {

namespace fs = std::filesystem;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) raise("cannot read " + path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Atomic write (temp + rename), the same discipline as OutcomeStore.
void spill(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os.good()) raise("cannot write " + tmp);
    os << bytes;
    os.flush();
    if (!os.good()) raise("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    raise("cannot finalise " + path + ": " + ec.message());
  }
}

}  // namespace

// ----------------------------------------------------------- ShardManifest

const char* to_string(ShardEntryStatus status) {
  switch (status) {
    case ShardEntryStatus::Complete: return "complete";
    case ShardEntryStatus::Failed: return "failed";
  }
  return "?";
}

ShardEntryStatus shard_entry_status_from(const std::string& text) {
  if (text == "complete") return ShardEntryStatus::Complete;
  if (text == "failed") return ShardEntryStatus::Failed;
  raise("unknown shard entry status: '" + text + "'");
}

Json ShardManifest::to_json() const {
  JsonObject o;
  o["format_version"] = Json(format_version);
  o["campaign"] = Json(campaign);
  JsonObject spec;
  spec["index"] = Json(shard.index);
  spec["count"] = Json(shard.count);
  o["shard"] = Json(std::move(spec));
  JsonArray order;
  for (const auto& fp : campaign_order) order.push_back(Json(fp));
  o["campaign_order"] = Json(std::move(order));
  JsonArray scenario_array;
  for (const auto& entry : entries) {
    JsonObject e;
    e["fingerprint"] = Json(entry.fingerprint);
    e["scenario"] = entry.scenario.to_json();
    e["status"] = Json(std::string(to_string(entry.status)));
    if (entry.status == ShardEntryStatus::Failed)
      e["error"] = Json(entry.error);
    scenario_array.push_back(Json(std::move(e)));
  }
  o["scenarios"] = Json(std::move(scenario_array));
  return Json(std::move(o));
}

ShardManifest ShardManifest::from_json(const Json& json) {
  ShardManifest manifest;
  manifest.format_version =
      static_cast<int>(json.at("format_version").as_number());
  manifest.campaign = json.at("campaign").as_string();
  const Json& spec = json.at("shard");
  manifest.shard.index = static_cast<int>(spec.at("index").as_number());
  manifest.shard.count = static_cast<int>(spec.at("count").as_number());
  HMPT_REQUIRE(manifest.shard.count >= 1 && manifest.shard.index >= 1 &&
                   manifest.shard.index <= manifest.shard.count,
               "manifest shard spec out of range");
  for (const Json& fp : json.at("campaign_order").as_array())
    manifest.campaign_order.push_back(fp.as_string());
  for (const Json& e : json.at("scenarios").as_array()) {
    Entry entry;
    entry.fingerprint = e.at("fingerprint").as_string();
    entry.scenario = Scenario::from_json(e.at("scenario"));
    entry.status = shard_entry_status_from(e.at("status").as_string());
    if (entry.status == ShardEntryStatus::Failed)
      entry.error = e.at("error").as_string();
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

std::string ShardManifest::path_in(const std::string& store_dir) {
  return (fs::path(store_dir) / kManifestName).string();
}

void ShardManifest::save(const std::string& store_dir) const {
  std::error_code ec;
  fs::create_directories(store_dir, ec);
  if (ec)
    raise("cannot create shard store at " + store_dir + ": " + ec.message());
  spill(path_in(store_dir), to_json().dump());
}

ShardManifest ShardManifest::load(const std::string& store_dir) {
  const std::string path = path_in(store_dir);
  std::ifstream is(path);
  if (!is.good())
    raise("no shard manifest at " + path +
          " (not a shard outcome store, or the shard run never finished)");
  try {
    return from_json(Json::parse(slurp(path)));
  } catch (const std::exception& e) {
    raise("corrupt shard manifest " + path + ": " + e.what());
  }
}

ShardManifest make_manifest(const std::vector<Scenario>& campaign_scenarios,
                            const ShardSpec& shard,
                            const CampaignResult& result) {
  ShardManifest manifest;
  manifest.campaign = campaign_fingerprint(campaign_scenarios);
  manifest.shard = shard;
  for (const auto& s : campaign_scenarios)
    manifest.campaign_order.push_back(s.fingerprint());
  for (const auto& run : result.runs) {
    ShardManifest::Entry entry;
    entry.fingerprint = run.fingerprint.empty() ? run.scenario.fingerprint()
                                                : run.fingerprint;
    entry.scenario = run.scenario;
    switch (run.status) {
      case ScenarioRun::Status::Executed:
      case ScenarioRun::Status::Cached:
        entry.status = ShardEntryStatus::Complete;
        break;
      case ScenarioRun::Status::Failed:
        entry.status = ShardEntryStatus::Failed;
        entry.error = run.error;
        break;
      case ScenarioRun::Status::Planned:
        raise("cannot write a shard manifest for a dry run — plans leave "
              "no outcomes to merge");
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

// ------------------------------------------------------- ManifestProgress

ManifestProgress::ManifestProgress(
    const std::vector<Scenario>& campaign_scenarios, const ShardSpec& shard,
    std::string store_dir)
    : store_dir_(std::move(store_dir)) {
  manifest_.campaign = campaign_fingerprint(campaign_scenarios);
  manifest_.shard = shard;
  for (const auto& s : campaign_scenarios)
    manifest_.campaign_order.push_back(s.fingerprint());

  // Union with an existing manifest for the same campaign and shard: a
  // relaunched worker (or a thief's later generation) appends to what
  // the store already proved finished. Anything else — a stale manifest
  // from another campaign, or unreadable bytes — is discarded: the store
  // contents stay authoritative either way (--resume re-checks them).
  try {
    ShardManifest existing = ShardManifest::load(store_dir_);
    if (existing.campaign == manifest_.campaign &&
        existing.shard.index == shard.index &&
        existing.shard.count == shard.count &&
        existing.campaign_order == manifest_.campaign_order)
      manifest_.entries = std::move(existing.entries);
  } catch (const std::exception&) {
    // No manifest yet, or not one of ours: start fresh.
  }
  for (std::size_t i = 0; i < manifest_.entries.size(); ++i)
    index_[manifest_.entries[i].fingerprint] = i;

  std::lock_guard<std::mutex> lock(mutex_);
  save_locked();
}

void ManifestProgress::record(const ScenarioRun& run) {
  ShardManifest::Entry entry;
  entry.fingerprint = run.fingerprint.empty() ? run.scenario.fingerprint()
                                              : run.fingerprint;
  entry.scenario = run.scenario;
  switch (run.status) {
    case ScenarioRun::Status::Executed:
    case ScenarioRun::Status::Cached:
      entry.status = ShardEntryStatus::Complete;
      break;
    case ScenarioRun::Status::Failed:
      entry.status = ShardEntryStatus::Failed;
      entry.error = run.error;
      break;
    case ScenarioRun::Status::Planned:
      raise("cannot record a dry-run scenario in a shard manifest");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(entry.fingerprint);
  if (it == index_.end()) {
    index_[entry.fingerprint] = manifest_.entries.size();
    manifest_.entries.push_back(std::move(entry));
  } else if (entry.status == ShardEntryStatus::Complete) {
    // Completion supersedes an earlier recorded failure; a repeated
    // completion rewrites the identical entry (harmless).
    manifest_.entries[it->second] = std::move(entry);
  } else {
    return;  // keep the existing terminal record; nothing new to persist
  }
  save_locked();
}

ShardManifest ManifestProgress::manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_;
}

void ManifestProgress::save_locked() { manifest_.save(store_dir_); }

// ------------------------------------------------------------ merge_shards

CampaignResult merge_shards(const std::vector<std::string>& shard_dirs,
                            const std::string& output_dir,
                            MergeStats* stats, StoreFormat output_format) {
  HMPT_REQUIRE(!shard_dirs.empty(), "merge needs at least one shard dir");
  HMPT_REQUIRE(!output_dir.empty(), "merge needs an output dir");

  // 1. Load and cross-validate the manifests: one campaign, one shard
  //    count, one campaign order; indices exactly 1..N.
  std::vector<ShardManifest> manifests;
  for (const auto& dir : shard_dirs)
    manifests.push_back(ShardManifest::load(dir));
  const ShardManifest& ref = manifests.front();
  std::set<int> indices;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const ShardManifest& m = manifests[i];
    HMPT_REQUIRE(m.format_version == kFingerprintVersion,
                 "shard " + shard_dirs[i] + " has manifest format version " +
                     std::to_string(m.format_version) + ", this tool speaks " +
                     std::to_string(kFingerprintVersion));
    if (m.campaign != ref.campaign)
      raise("shard " + shard_dirs[i] + " belongs to campaign " + m.campaign +
            ", but " + shard_dirs[0] + " to campaign " + ref.campaign +
            " — these shards are from different campaigns");
    HMPT_REQUIRE(m.shard.count == ref.shard.count,
                 "shard " + shard_dirs[i] + " declares " +
                     std::to_string(m.shard.count) + " shards, expected " +
                     std::to_string(ref.shard.count));
    HMPT_REQUIRE(m.campaign_order == ref.campaign_order,
                 "shard " + shard_dirs[i] +
                     " disagrees on the campaign scenario order");
    if (!indices.insert(m.shard.index).second)
      raise("shard index " + std::to_string(m.shard.index) +
            " appears twice (" + shard_dirs[i] + ")");
  }
  HMPT_REQUIRE(static_cast<int>(manifests.size()) == ref.shard.count,
               "campaign " + ref.campaign + " has " +
                   std::to_string(ref.shard.count) + " shards, got " +
                   std::to_string(manifests.size()) + " to merge");

  // 2. The slices must cover the campaign. Overlapping claims are legal —
  //    work stealing re-deals a straggler's scenarios to idle workers and
  //    both may finish — but only with identical bytes, which step 3
  //    verifies across every shard's store. Where claims disagree on
  //    status, a Complete record owns the scenario (it finished
  //    somewhere); among equal claims the lowest shard index wins, so the
  //    reconstruction is deterministic whatever order the steals landed.
  struct Owner {
    std::size_t shard;  ///< index into manifests/shard_dirs
    const ShardManifest::Entry* entry;
  };
  std::map<std::string, Owner> owners;
  int overlapping = 0;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    for (const auto& entry : manifests[i].entries) {
      const auto [it, inserted] =
          owners.emplace(entry.fingerprint, Owner{i, &entry});
      if (inserted) continue;
      ++overlapping;
      const bool incumbent_complete =
          it->second.entry->status == ShardEntryStatus::Complete;
      const bool claimant_complete =
          entry.status == ShardEntryStatus::Complete;
      if (claimant_complete != incumbent_complete) {
        if (claimant_complete) it->second = Owner{i, &entry};
      } else if (manifests[i].shard.index <
                 manifests[it->second.shard].shard.index) {
        // Equal status: the lowest shard *index* owns, so reconstruction
        // does not depend on the order the directories were listed in.
        it->second = Owner{i, &entry};
      }
    }
  }
  const std::set<std::string> campaign_set(ref.campaign_order.begin(),
                                           ref.campaign_order.end());
  for (const auto& fp : ref.campaign_order)
    if (owners.find(fp) == owners.end())
      raise("scenario " + fp + " belongs to campaign " + ref.campaign +
            " but no shard ran it — merge needs every shard of the "
            "campaign");
  for (const auto& [fp, owner] : owners)
    if (campaign_set.find(fp) == campaign_set.end())
      raise("shard " + shard_dirs[owner.shard] + " ran scenario " + fp +
            " which is not part of campaign " + ref.campaign);

  // 3. Union the content-addressed outcome stores, restricted to the
  //    campaign's fingerprints (shard directories may be reused stores
  //    holding outcomes of other campaigns — those are left alone). Every
  //    store is bulk-loaded through the payload API — dir or packed
  //    format alike, one sequential pass each — and every shard's copy of
  //    every fingerprint is byte-compared: identical bytes merge silently
  //    (content addressing at work); *different* bytes for the same
  //    fingerprint are a determinism bug or a foreign store and fail the
  //    merge. Raw payload bytes flow straight into the output store, so
  //    the merged records are byte-identical whatever formats are on
  //    either side.
  const OutcomeStore merged_store(output_dir, output_format);
  std::map<std::string, std::string> already_merged;
  for (auto& [fp, bytes] : merged_store.load_all_payloads())
    already_merged.emplace(fp, std::move(bytes));
  std::vector<std::map<std::string, std::string>> shard_payloads;
  for (const auto& dir : shard_dirs) {
    auto all = OutcomeStore::open_existing(dir).load_all_payloads();
    shard_payloads.emplace_back(
        std::make_move_iterator(all.begin()),
        std::make_move_iterator(all.end()));
  }
  int merged_records = 0;
  std::map<std::string, std::string> merged_bytes;  // step 4's working set
  for (const auto& fp : ref.campaign_order) {
    std::string bytes;
    std::string source;
    for (std::size_t i = 0; i < shard_dirs.size(); ++i) {
      const auto it = shard_payloads[i].find(fp);
      if (it == shard_payloads[i].end()) continue;
      if (source.empty()) {
        bytes = it->second;
        source = shard_dirs[i];
      } else if (it->second != bytes) {
        raise("conflicting outcomes for fingerprint " + fp + ": " +
              shard_dirs[i] + " differs from " + source +
              " — same scenario, different results (determinism bug or "
              "stores from different experiments)");
      }
    }
    if (source.empty()) continue;  // failed scenario: no outcome anywhere
    const auto existing = already_merged.find(fp);
    if (existing != already_merged.end()) {
      if (existing->second != bytes)
        raise("conflicting outcomes for fingerprint " + fp + ": " + source +
              " differs from the copy already merged into " + output_dir);
    } else {
      merged_store.save_payload(fp, bytes);
      ++merged_records;
    }
    merged_bytes.emplace(fp, std::move(bytes));
  }

  // 4. Reconstruct the campaign-ordered result from the merged records
  //    (and the manifests, for failures). Loading by the *stored*
  //    fingerprint string keeps the merge exact even when a recorded
  //    profile changed on disk after its shard ran.
  CampaignResult result;
  for (const auto& fp : ref.campaign_order) {
    const Owner& owner = owners.at(fp);
    ScenarioRun run;
    run.scenario = owner.entry->scenario;
    run.fingerprint = fp;  // the stored content address, never re-hashed
    if (owner.entry->status == ShardEntryStatus::Failed) {
      run.status = ScenarioRun::Status::Failed;
      run.error = owner.entry->error;
      ++result.failed;
    } else {
      const auto it = merged_bytes.find(fp);
      if (it == merged_bytes.end())
        raise("shard " + shard_dirs[owner.shard] + " marks scenario " + fp +
              " complete but its outcome record is missing or damaged");
      try {
        const Json doc = Json::parse(it->second);
        HMPT_REQUIRE(static_cast<int>(
                         doc.at("format_version").as_number()) ==
                         kFingerprintVersion,
                     "outcome format version mismatch");
        HMPT_REQUIRE(doc.at("fingerprint").as_string() == fp,
                     "outcome record is keyed by a different fingerprint");
        run.outcome = tuner::outcome_from_json(doc.at("outcome"));
      } catch (const std::exception& e) {
        raise("corrupt outcome record for fingerprint " + fp + " from " +
              shard_dirs[owner.shard] + ": " + e.what());
      }
      run.status = ScenarioRun::Status::Cached;
      ++result.cached;
    }
    result.runs.push_back(std::move(run));
  }

  if (stats) {
    stats->campaign = ref.campaign;
    stats->shards = static_cast<int>(manifests.size());
    stats->scenarios = static_cast<int>(ref.campaign_order.size());
    stats->outcomes_merged = merged_records;
    stats->failed = result.failed;
    stats->overlapping = overlapping;
  }
  return result;
}

}  // namespace hmpt::campaign
