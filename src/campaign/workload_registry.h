// workload_registry.h — every workload constructible by name.
//
// The tuner's workloads were only reachable programmatically (each with
// its own constructor) or via a recorded profile file; campaigns need to
// name them declaratively: "mg", "stream:array_gb=2,iterations=4",
// "recorded:path=run.profile". The registry mirrors the StrategyRegistry
// (string-keyed factories, built-ins registered on first access, add() for
// user workloads) with one twist: factories receive the target simulator,
// because the paper-scale app models calibrate their traffic against the
// platform's reference bandwidths.
//
// A WorkloadSpec is the parsed "name:key=value,key=value" form; its
// canonical rendering (sorted keys) is what scenario fingerprints hash, so
// "stream:iterations=4,array_gb=2" and the sorted spelling dedup.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "simmem/simulator.h"
#include "workloads/workload.h"

namespace hmpt::campaign {

/// String key=value parameters of one workload instantiation.
using WorkloadParams = std::map<std::string, std::string>;

/// A workload resolved against a platform, plus the execution context the
/// model was calibrated for (paper thread/tile counts); campaigns fall
/// back to the simulator's full machine when absent.
struct ResolvedWorkload {
  workloads::WorkloadPtr workload;
  std::optional<sim::ExecutionContext> context;
};

/// Parsed "name" or "name:key=value,key=value" workload reference.
struct WorkloadSpec {
  std::string name;
  WorkloadParams params;

  /// Canonical rendering: name[:k=v,...] with keys in sorted order.
  std::string to_string() const;
};

/// Parse a spec string; throws hmpt::Error on malformed syntax (empty
/// name, parameter without '=', duplicate key).
WorkloadSpec parse_workload_spec(const std::string& text);

class WorkloadRegistry {
 public:
  using Factory = std::function<ResolvedWorkload(
      const sim::MachineSimulator& sim, const WorkloadParams& params)>;

  static WorkloadRegistry& instance();

  /// Register a factory; throws hmpt::Error on a duplicate name.
  void add(const std::string& name, std::string description, Factory factory);
  bool contains(const std::string& name) const;
  /// Instantiate; throws hmpt::Error naming the known workloads when
  /// `name` is not registered, and on unsupported/malformed parameters.
  ResolvedWorkload create(const std::string& name,
                          const sim::MachineSimulator& sim,
                          const WorkloadParams& params = {}) const;
  ResolvedWorkload create(const WorkloadSpec& spec,
                          const sim::MachineSimulator& sim) const {
    return create(spec.name, sim, spec.params);
  }

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// One-line description of a registered workload (for --list-workloads).
  const std::string& description(const std::string& name) const;
  /// Human-readable listing of every registered workload (shared by the
  /// CLIs' --list-workloads).
  std::string list_text() const;

 private:
  WorkloadRegistry();

  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

// Typed parameter readers shared by factories: value of `key`, or the
// fallback when absent. Throw hmpt::Error on non-numeric text.
double param_double(const WorkloadParams& params, const std::string& key,
                    double fallback);
int param_int(const WorkloadParams& params, const std::string& key,
              int fallback);
std::string param_string(const WorkloadParams& params, const std::string& key,
                         std::string fallback);

/// Reject parameters outside `allowed` so a typo ("arraygb=2") fails
/// loudly instead of silently tuning the default workload.
void require_params(const WorkloadParams& params,
                    const std::vector<std::string>& allowed,
                    const std::string& workload_name);

}  // namespace hmpt::campaign
