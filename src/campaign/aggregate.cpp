#include "campaign/aggregate.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/units.h"
#include "core/report.h"

namespace hmpt::campaign {

namespace {

bool has_outcome(const ScenarioRun& run) {
  return run.status == ScenarioRun::Status::Executed ||
         run.status == ScenarioRun::Status::Cached;
}

/// The content address captured when the scenario ran; recomputed only
/// for hand-built results that never went through a runner or merge.
std::string fingerprint_of(const ScenarioRun& run) {
  return run.fingerprint.empty() ? run.scenario.fingerprint()
                                 : run.fingerprint;
}

std::string budget_text(const Scenario& s) {
  std::string out = cell(s.budget_gb, 1);
  for (const auto& [tier, gb] : s.tier_budgets_gb) {
    out.append(";").append(std::to_string(tier));
    out.append(":").append(cell(gb, 1));
  }
  return out;
}

}  // namespace

Table plan_table(const std::vector<Scenario>& scenarios) {
  Table table({"#", "workload", "platform", "strategy", "tiers", "budget_gb",
               "reps", "fingerprint"});
  int index = 0;
  for (const auto& s : scenarios)
    table.add_row({std::to_string(++index), s.workload.to_string(),
                   s.platform, s.strategy, std::to_string(s.tiers),
                   budget_text(s), std::to_string(s.repetitions),
                   s.fingerprint()});
  return table;
}

Table runs_table(const CampaignResult& result) {
  Table table({"fingerprint", "workload", "platform", "strategy", "tiers",
               "budget_gb", "reps", "chosen_config", "speedup",
               "baseline_time_s", "chosen_time_s", "hbm_usage",
               "configs_measured", "measurements"});
  for (const auto& run : result.runs) {
    if (!has_outcome(run)) continue;
    const auto& s = run.scenario;
    const auto& o = run.outcome;
    table.add_row({fingerprint_of(run), s.workload.to_string(), s.platform,
                   s.strategy, std::to_string(s.tiers), budget_text(s),
                   std::to_string(s.repetitions),
                   tuner::mask_label(o.chosen_mask, o.num_groups,
                                     o.num_tiers),
                   cell(o.speedup, 4), cell(o.baseline_time, 6),
                   cell(o.chosen_time, 6), cell(o.hbm_usage, 4),
                   std::to_string(o.configs_measured),
                   std::to_string(o.measurements)});
  }
  return table;
}

std::vector<const ScenarioRun*> ranked_runs(const CampaignResult& result) {
  std::vector<const ScenarioRun*> ranked;
  for (const auto& run : result.runs)
    if (has_outcome(run)) ranked.push_back(&run);
  std::sort(ranked.begin(), ranked.end(),
            [](const ScenarioRun* a, const ScenarioRun* b) {
              if (a->outcome.speedup != b->outcome.speedup)
                return a->outcome.speedup > b->outcome.speedup;
              return a->scenario.label() < b->scenario.label();
            });
  return ranked;
}

Table ranked_table(const CampaignResult& result) {
  const std::vector<const ScenarioRun*> ranked = ranked_runs(result);

  Table table({"rank", "scenario", "speedup", "chosen config", "HBM usage",
               "configs"});
  int rank = 0;
  for (const ScenarioRun* run : ranked) {
    const auto& o = run->outcome;
    table.add_row({std::to_string(++rank), run->scenario.label(),
                   cell(o.speedup, 2) + "x",
                   tuner::mask_label(o.chosen_mask, o.num_groups,
                                     o.num_tiers),
                   format_percent(o.hbm_usage),
                   std::to_string(o.configs_measured)});
  }
  return table;
}

Json summary_json(const CampaignResult& result) {
  int with_outcome = 0;
  int failed = 0;
  std::vector<std::string> fingerprints;
  for (const auto& run : result.runs) {
    fingerprints.push_back(fingerprint_of(run));
    if (has_outcome(run)) ++with_outcome;
    if (run.status == ScenarioRun::Status::Failed) ++failed;
  }

  JsonObject o;
  o["campaign"] = Json(campaign_fingerprint(fingerprints));
  o["scenarios"] = Json(static_cast<int>(result.runs.size()));
  o["with_outcome"] = Json(with_outcome);
  o["failed"] = Json(failed);

  JsonArray runs;
  for (const auto& run : result.runs) {
    JsonObject r;
    r["fingerprint"] = Json(fingerprint_of(run));
    r["scenario"] = run.scenario.to_json();
    if (has_outcome(run)) r["speedup"] = Json(run.outcome.speedup);
    if (run.status == ScenarioRun::Status::Failed)
      r["error"] = Json(run.error);
    runs.push_back(Json(std::move(r)));
  }
  o["runs"] = Json(std::move(runs));
  return Json(std::move(o));
}

Json status_json(const CampaignResult& result) {
  JsonObject o;
  o["scenarios"] = Json(static_cast<int>(result.runs.size()));
  o["executed"] = Json(result.executed);
  o["cached"] = Json(result.cached);
  o["failed"] = Json(result.failed);
  o["planned"] = Json(result.planned);
  o["seconds"] = Json(result.seconds);

  JsonArray runs;
  for (const auto& run : result.runs) {
    JsonObject r;
    r["fingerprint"] = Json(fingerprint_of(run));
    r["status"] = Json(std::string(to_string(run.status)));
    if (run.status == ScenarioRun::Status::Executed)
      r["seconds"] = Json(run.seconds);
    if (run.status == ScenarioRun::Status::Failed)
      r["error"] = Json(run.error);
    // Attempt counts are volatile (retry timing varies run to run) and
    // belong here, never in runs.csv/summary.json — those stay
    // byte-identical across faulty and fault-free runs.
    if (run.attempts > 0) r["attempts"] = Json(run.attempts);
    runs.push_back(Json(std::move(r)));
  }
  o["runs"] = Json(std::move(runs));
  return Json(std::move(o));
}

std::vector<std::string> write_artifacts(const CampaignResult& result,
                                         const std::string& output_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(output_dir, ec);
  if (ec)
    raise("cannot create campaign output dir " + output_dir + ": " +
          ec.message());

  const auto write = [&](const std::string& name, const std::string& text) {
    const std::string path = (fs::path(output_dir) / name).string();
    std::ofstream os(path);
    if (!os.good()) raise("cannot write " + path);
    os << text;
    os.flush();
    if (!os.good()) raise("short write to " + path);
    return path;
  };

  return {write("runs.csv", runs_table(result).to_csv()),
          write("summary.json", summary_json(result).dump()),
          write("status.json", status_json(result).dump())};
}

}  // namespace hmpt::campaign
