#include "campaign/campaign.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "campaign/platforms.h"
#include "common/error.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hmpt::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(ScenarioRun::Status status) {
  switch (status) {
    case ScenarioRun::Status::Planned: return "planned";
    case ScenarioRun::Status::Executed: return "executed";
    case ScenarioRun::Status::Cached: return "cached";
    case ScenarioRun::Status::Failed: return "failed";
  }
  return "?";
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)),
      store_(options_.output_dir, options_.store_format) {
  HMPT_REQUIRE(options_.scenario_jobs >= 0,
               "scenario_jobs must be >= 0 (0 = all hardware threads)");
  HMPT_REQUIRE(options_.measure_jobs >= 0,
               "measure_jobs must be >= 0 (0 = all hardware threads)");
  HMPT_REQUIRE(options_.attempts >= 1, "attempts must be >= 1");
  HMPT_REQUIRE(options_.scenario_timeout_s >= 0.0,
               "scenario_timeout_s must be >= 0 (0 = none)");
}

tuner::TuningOutcome CampaignRunner::execute(const Scenario& scenario,
                                             int measure_jobs) {
  auto simulator = make_platform(scenario.platform);
  const auto resolved = WorkloadRegistry::instance().create(
      scenario.workload, simulator);

  // Tier sanity (tier count within the platform, budgets within the
  // searched tiers) is enforced by Session::run for every entry point.
  auto session = tuner::Session::on(simulator)
                     .workload(resolved.workload)
                     .strategy(scenario.strategy)
                     .tiers(scenario.tiers)
                     .repetitions(scenario.repetitions)
                     .budget_gb(scenario.budget_gb)
                     .top_k(scenario.top_k)
                     .jobs(measure_jobs);
  if (resolved.context.has_value()) session.context(*resolved.context);
  for (const auto& [tier, gb] : scenario.tier_budgets_gb)
    session.tier_budget_gb(tier, gb);
  return session.run();
}

CampaignResult CampaignRunner::run(const std::vector<Scenario>& scenarios,
                                   const ScenarioCallback& on_scenario) const {
  CampaignResult result;
  result.runs.resize(scenarios.size());
  const auto campaign_start = Clock::now();

  std::mutex mutex;  // guards the counters and the progress callback
  const auto finish = [&](std::size_t i, ScenarioRun&& run) {
    std::lock_guard<std::mutex> lock(mutex);
    switch (run.status) {
      case ScenarioRun::Status::Planned: ++result.planned; break;
      case ScenarioRun::Status::Executed: ++result.executed; break;
      case ScenarioRun::Status::Cached: ++result.cached; break;
      case ScenarioRun::Status::Failed: ++result.failed; break;
    }
    result.runs[i] = std::move(run);
    if (on_scenario) on_scenario(i, result.runs[i]);
  };

  const auto run_one = [&](std::size_t i) {
    ScenarioRun run;
    run.scenario = scenarios[i];
    run.fingerprint = run.scenario.fingerprint();

    // The whole scenario — cache probe, attempts, store write — as one
    // span; the closing args record how it ended. Purely observational:
    // disarmed this is four no-op calls, and armed it touches nothing
    // the outcome or the artefacts derive from.
    obs::TraceSpan span("campaign", "scenario");
    span.arg("fingerprint", run.fingerprint);
    span.arg("label", run.scenario.label());
    static obs::Counter& scenarios_finished =
        obs::metrics().counter("campaign.scenarios");
    scenarios_finished.add();

    if (options_.dry_run) {
      run.status = ScenarioRun::Status::Planned;
      span.arg("status", "planned");
      finish(i, std::move(run));
      return;
    }
    try {
      if (options_.resume) {
        if (auto cached = store_.load(run.scenario)) {
          run.status = ScenarioRun::Status::Cached;
          run.outcome = std::move(*cached);
          span.arg("status", "cached");
          finish(i, std::move(run));
          return;
        }
      }
      // The same failure model the daemon scheduler applies: retry
      // transient failures with deterministic backoff (the fingerprint
      // seeds the jitter stream), give each attempt a cooperative
      // deadline, stop on terminal errors.
      RetryPolicy policy;
      policy.max_attempts = options_.attempts;
      policy.attempt_deadline_s = options_.scenario_timeout_s;
      const auto start = Clock::now();
      const auto attempted = attempt_with_retries(
          policy, stream_of(run.fingerprint),
          [&](const CancelToken& token) {
            obs::TraceSpan attempt_span("campaign", "attempt");
            attempt_span.arg("fingerprint", run.fingerprint);
            token.check();
            auto outcome = execute(run.scenario, options_.measure_jobs);
            store_.save(run.scenario, outcome);
            return outcome;
          });
      run.seconds = seconds_since(start);
      run.attempts = attempted.attempt_count();
      span.arg_number("attempts", static_cast<std::uint64_t>(run.attempts));
      if (attempted.ok()) {
        run.outcome = std::move(*attempted.value);
        run.status = ScenarioRun::Status::Executed;
        span.arg("status", "executed");
      } else if (attempted.attempts.size() == 1) {
        raise(attempted.attempts.front().error);
      } else {
        raise("after " + std::to_string(run.attempts) +
              " attempts: " + format_attempts(attempted.attempts));
      }
    } catch (const std::exception& e) {
      if (!options_.keep_going) throw;  // the pool rethrows to the caller
      run.status = ScenarioRun::Status::Failed;
      run.error = e.what();
      span.arg("status", "failed");
    }
    finish(i, std::move(run));
  };

  parallel_for(options_.scenario_jobs, scenarios.size(), run_one);

  result.seconds = seconds_since(campaign_start);
  return result;
}

}  // namespace hmpt::campaign
