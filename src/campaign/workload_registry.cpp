#include "campaign/workload_registry.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/parse.h"
#include "common/units.h"
#include "workloads/app_models.h"
#include "workloads/pointer_chase.h"
#include "workloads/random_access.h"
#include "workloads/stream.h"
#include "workloads/trace_io.h"

namespace hmpt::campaign {

// -------------------------------------------------------------------- spec

std::string WorkloadSpec::to_string() const {
  std::string out = name;
  bool first = true;
  for (const auto& [key, value] : params) {  // std::map: sorted keys
    out += first ? ":" : ",";
    first = false;
    out += key + "=" + value;
  }
  return out;
}

WorkloadSpec parse_workload_spec(const std::string& text) {
  WorkloadSpec spec;
  const auto colon = text.find(':');
  spec.name = text.substr(0, colon);
  HMPT_REQUIRE(!spec.name.empty(),
               "workload spec needs a name: '" + text + "'");
  if (colon == std::string::npos) return spec;

  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    HMPT_REQUIRE(eq != std::string::npos && eq > 0,
                 "workload parameter needs key=value: '" + pair + "' in '" +
                     text + "'");
    const std::string key = pair.substr(0, eq);
    HMPT_REQUIRE(spec.params.find(key) == spec.params.end(),
                 "duplicate workload parameter '" + key + "' in '" + text +
                     "'");
    spec.params[key] = pair.substr(eq + 1);
  }
  return spec;
}

// -------------------------------------------------------- parameter access

double param_double(const WorkloadParams& params, const std::string& key,
                    double fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  // Full consumption + finiteness (common/parse.h): "2x" must not
  // silently truncate to 2, "1e999" must not overflow to infinity, and
  // "inf"/"nan" are not meaningful sizes or scales. The error names the
  // offending key so a campaign of hundreds of scenarios points at the
  // exact field to fix.
  const auto value = parse_double_strict(it->second);
  if (!value)
    raise("workload parameter '" + key + "': not a finite number: '" +
          it->second + "'");
  return *value;
}

int param_int(const WorkloadParams& params, const std::string& key,
              int fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const auto value = parse_int_strict(it->second);
  if (!value)
    raise("workload parameter '" + key + "': not an integer: '" +
          it->second + "'");
  return *value;
}

std::string param_string(const WorkloadParams& params, const std::string& key,
                         std::string fallback) {
  const auto it = params.find(key);
  return it == params.end() ? std::move(fallback) : it->second;
}

void require_params(const WorkloadParams& params,
                    const std::vector<std::string>& allowed,
                    const std::string& workload_name) {
  for (const auto& [key, value] : params) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end())
      continue;
    std::string known;
    for (const auto& k : allowed) known += (known.empty() ? "" : ", ") + k;
    raise("workload '" + workload_name + "' has no parameter '" + key +
          "'" + (known.empty() ? " (takes none)" : " (takes: " + known + ")"));
  }
}

// ---------------------------------------------------------------- registry

namespace {

/// Shared `scale` handling of the paper app models: the analytic traffic
/// descriptors scale linearly, extrapolating a model to longer runs.
ResolvedWorkload from_app(workloads::AppInfo app, const WorkloadParams& params,
                          const std::string& name) {
  require_params(params, {"scale"}, name);
  const double scale = param_double(params, "scale", 1.0);
  HMPT_REQUIRE(scale > 0.0, "workload parameter scale must be > 0");
  if (scale != 1.0) {
    auto recorded = std::make_shared<workloads::RecordedWorkload>(
        app.workload->name(), app.workload->groups(), app.workload->trace());
    recorded->scale(scale);
    app.workload = recorded;
  }
  return {app.workload, app.context};
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  // The seven paper applications (Table I), by their NPB/k-Wave codes.
  const struct {
    const char* name;
    workloads::AppInfo (*make)(const sim::MachineSimulator&);
    const char* description;
  } apps[] = {
      {"mg", workloads::make_mg_model, "NPB Multi-Grid (mg.D model)"},
      {"bt", workloads::make_bt_model, "NPB Block Tri-diagonal (bt.D model)"},
      {"lu", workloads::make_lu_model, "NPB Lower-Upper (lu.D model)"},
      {"sp", workloads::make_sp_model, "NPB Scalar Penta-diagonal (sp.D model)"},
      {"ua", workloads::make_ua_model, "NPB Unstructured Adaptive (ua.D model)"},
      {"is", workloads::make_is_model, "NPB Integer Sort (is.C* model)"},
      {"kwave", workloads::make_kwave_model,
       "k-Wave pseudospectral solver (512^3 model)"},
  };
  for (const auto& app : apps) {
    const auto make = app.make;
    const std::string name = app.name;
    add(name, std::string(app.description) + " [scale]",
        [make, name](const sim::MachineSimulator& sim,
                     const WorkloadParams& params) {
          return from_app(make(sim), params, name);
        });
  }

  add("stream", "STREAM Copy/Scale/Add/Triad [array_gb, iterations]",
      [](const sim::MachineSimulator&, const WorkloadParams& params) {
        require_params(params, {"array_gb", "iterations"}, "stream");
        const double array_gb = param_double(params, "array_gb", 16.0);
        const int iterations = param_int(params, "iterations", 10);
        HMPT_REQUIRE(array_gb > 0.0 && iterations >= 1,
                     "stream needs array_gb > 0 and iterations >= 1");
        return ResolvedWorkload{
            std::make_shared<workloads::StreamWorkload>(array_gb * GB,
                                                        iterations),
            std::nullopt};
      });

  add("pointer-chase", "dependent-load latency chase [window_gb, accesses]",
      [](const sim::MachineSimulator&, const WorkloadParams& params) {
        require_params(params, {"window_gb", "accesses"}, "pointer-chase");
        const double window_gb = param_double(params, "window_gb", 8.0);
        const double accesses = param_double(params, "accesses", 1e9);
        HMPT_REQUIRE(window_gb > 0.0 && accesses > 0.0,
                     "pointer-chase needs window_gb > 0 and accesses > 0");
        return ResolvedWorkload{
            std::make_shared<workloads::PointerChaseWorkload>(window_gb * GB,
                                                              accesses),
            std::nullopt};
      });

  add("random-sum", "random indirect summation [data_gb, accesses]",
      [](const sim::MachineSimulator&, const WorkloadParams& params) {
        require_params(params, {"data_gb", "accesses"}, "random-sum");
        const double data_gb = param_double(params, "data_gb", 8.0);
        const double accesses = param_double(params, "accesses", 1e9);
        HMPT_REQUIRE(data_gb > 0.0 && accesses > 0.0,
                     "random-sum needs data_gb > 0 and accesses > 0");
        return ResolvedWorkload{
            std::make_shared<workloads::RandomSumWorkload>(data_gb * GB,
                                                           accesses),
            std::nullopt};
      });

  add("recorded", "profile file written by trace_io [path, scale]",
      [](const sim::MachineSimulator&, const WorkloadParams& params) {
        require_params(params, {"path", "scale"}, "recorded");
        const std::string path = param_string(params, "path", "");
        HMPT_REQUIRE(!path.empty(),
                     "recorded workload needs a path parameter");
        auto workload = std::make_shared<workloads::RecordedWorkload>(
            workloads::load_workload(path));
        const double scale = param_double(params, "scale", 1.0);
        HMPT_REQUIRE(scale > 0.0, "workload parameter scale must be > 0");
        if (scale != 1.0) workload->scale(scale);
        return ResolvedWorkload{std::move(workload), std::nullopt};
      });
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(const std::string& name, std::string description,
                           Factory factory) {
  HMPT_REQUIRE(!name.empty(), "workload name must not be empty");
  HMPT_REQUIRE(factory != nullptr, "workload factory must not be null");
  HMPT_REQUIRE(!contains(name), "workload already registered: " + name);
  entries_.push_back({name, std::move(description), std::move(factory)});
}

bool WorkloadRegistry::contains(const std::string& name) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return true;
  return false;
}

ResolvedWorkload WorkloadRegistry::create(const std::string& name,
                                          const sim::MachineSimulator& sim,
                                          const WorkloadParams& params) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return entry.factory(sim, params);
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  raise("unknown workload: '" + name + "' (known: " + known + ")");
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& WorkloadRegistry::description(
    const std::string& name) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return entry.description;
  raise("unknown workload: '" + name + "'");
}

std::string WorkloadRegistry::list_text() const {
  std::string out = "registered workloads:\n";
  for (const auto& name : names())
    out += "  " + name + "  —  " + description(name) + "\n";
  return out;
}

}  // namespace hmpt::campaign
