// merge.h — shard manifests and the lossless merge of sharded campaigns.
//
// A campaign sharded with `hmpt_campaign --shard i/N` runs each slice in
// its own process (or host) with its own outcome store; every shard writes
// a `shard.manifest.json` recording which campaign it belongs to (the
// campaign fingerprint), which slice it ran (the ShardSpec), and the
// completion status of every scenario it owned. `merge_shards` is the
// inverse of the partition: it validates the manifests against one
// another (same campaign fingerprint, same shard count, disjoint slices,
// complete coverage), unions the content-addressed outcome stores —
// failing loudly when two stores hold *different* outcome bytes for the
// same fingerprint — and reconstructs the campaign-ordered result, from
// which the standard aggregation emits `runs.csv`/`summary.json` byte
// for byte identical to an unsharded run of the same campaign.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "common/json.h"

namespace hmpt::campaign {

/// The manifest file name inside a shard's outcome-store directory.
inline constexpr const char* kManifestName = "shard.manifest.json";

/// What one shard recorded about one of its scenarios.
struct ShardManifest;

/// Per-scenario completion status inside a manifest. `Complete` covers
/// both freshly-executed and resume-cached scenarios — either way the
/// outcome file exists and is authoritative.
enum class ShardEntryStatus { Complete, Failed };

const char* to_string(ShardEntryStatus status);
/// Parse the manifest spelling of a status; throws hmpt::Error otherwise.
ShardEntryStatus shard_entry_status_from(const std::string& text);

/// The durable record one shard run leaves next to its outcomes.
///
/// Everything a merge needs is captured at run time — in particular the
/// scenario fingerprints are *stored strings*, not recomputed hashes, so
/// a recorded-profile file changing on disk after the run cannot silently
/// re-key a finished scenario.
struct ShardManifest {
  struct Entry {
    std::string fingerprint;  ///< content address captured at run time
    Scenario scenario;        ///< the full scenario, for reconstruction
    ShardEntryStatus status = ShardEntryStatus::Complete;
    std::string error;        ///< Failed only: the recorded message
  };

  int format_version = kFingerprintVersion;
  std::string campaign;  ///< campaign fingerprint of the *full* matrix
  ShardSpec shard;       ///< which slice this store ran
  /// Every scenario fingerprint of the full campaign, matrix order — the
  /// row order of the merged runs.csv/summary.json.
  std::vector<std::string> campaign_order;
  /// This shard's scenarios (shard order), one entry each.
  std::vector<Entry> entries;

  /// Lossless JSON round trip (covered by tests).
  Json to_json() const;
  static ShardManifest from_json(const Json& json);

  /// `<store_dir>/shard.manifest.json`.
  static std::string path_in(const std::string& store_dir);
  /// Atomically write the manifest into a shard's store directory.
  void save(const std::string& store_dir) const;
  /// Load and validate a manifest; throws hmpt::Error when missing or
  /// malformed (a shard directory without a manifest cannot be merged).
  static ShardManifest load(const std::string& store_dir);
};

/// Build the manifest of a finished shard run: `campaign_scenarios` is the
/// *full* expanded matrix (matrix order), `result` the runs of this
/// shard's slice. Throws hmpt::Error when the result contains dry-run
/// (Planned) entries — plans leave no durable state to merge.
ShardManifest make_manifest(const std::vector<Scenario>& campaign_scenarios,
                            const ShardSpec& shard,
                            const CampaignResult& result);

/// Incremental manifest writing for fleet workers (`hmpt_campaign
/// --progress-manifest`): the manifest is (re)written atomically after
/// every completed scenario, so
///   * the fleet dispatcher can tail a worker's shard.manifest.json for
///     per-scenario completion while the worker runs, and
///   * a worker killed at any instant (SIGKILL, host death) leaves a
///     valid manifest holding exactly the scenarios it finished — the
///     dispatcher re-deals the rest to idle workers.
/// Construction unions with any manifest already in the store directory
/// for the *same* campaign and shard (a re-launched worker on its own
/// store, or a thief's second generation, must not drop earlier entries)
/// and saves immediately, so the manifest exists from t=0. A stale
/// manifest from a different campaign is discarded. Thread-safe.
class ManifestProgress {
 public:
  ManifestProgress(const std::vector<Scenario>& campaign_scenarios,
                   const ShardSpec& shard, std::string store_dir);

  /// Record one finished scenario (Executed/Cached → Complete, Failed →
  /// Failed; Planned throws) and atomically rewrite the manifest. A
  /// fingerprint recorded twice keeps the first terminal record unless
  /// the new one is Complete (completion supersedes a recorded failure —
  /// a retried scenario that eventually succeeded).
  void record(const ScenarioRun& run);

  /// The entries recorded so far, as a manifest value.
  ShardManifest manifest() const;

 private:
  void save_locked();

  mutable std::mutex mutex_;
  ShardManifest manifest_;
  std::map<std::string, std::size_t> index_;  ///< fingerprint → entry slot
  std::string store_dir_;
};

/// Counters reported by merge_shards for logging and benchmarks.
struct MergeStats {
  std::string campaign;     ///< validated campaign fingerprint
  int shards = 0;           ///< manifests merged
  int scenarios = 0;        ///< full campaign size
  int outcomes_merged = 0;  ///< outcome files unioned into the output store
  int failed = 0;           ///< scenarios recorded as failed by their shard
  /// Scenarios claimed by more than one shard (work stealing): benign
  /// when every copy holds identical bytes, which the merge verifies.
  int overlapping = 0;
};

/// Merge shard outcome stores into `output_dir`.
///
/// Validates that every directory holds a manifest for the *same* campaign
/// (fingerprint, shard count, campaign order), that the shard indices are
/// exactly 1..N with no duplicates, that the slices together cover the
/// campaign, and that every Complete scenario's outcome record exists.
/// Overlapping coverage — the same fingerprint claimed by several shards,
/// which work stealing produces legitimately (a straggler's scenario
/// re-dealt to an idle worker, both finishing) — is accepted *only* when
/// every copy holds identical outcome bytes; the content-addressed store
/// makes duplicate execution a byte-level no-op, and the merge verifies
/// that rather than assuming it. The stores are unioned content-addressed:
/// identical bytes under the same fingerprint merge silently; *different*
/// bytes under the same fingerprint throw hmpt::Error — that is either a
/// determinism bug or stores from different experiments, and must never
/// be papered over. When a fingerprint is claimed both Complete and
/// Failed (a thief finished what its victim had failed, or vice versa),
/// the Complete record wins — the scenario did complete somewhere, which
/// is exactly what an unsharded run would report.
///
/// Each shard store may be dir- or packed-format (auto-detected per
/// directory) and `output_format` picks the merged store's layout
/// independently, so a merge doubles as a lossless cross-format
/// conversion: outcome records are copied as raw payload bytes, never
/// re-serialised.
///
/// Returns the campaign-ordered CampaignResult (outcomes loaded from the
/// merged store, status Cached; failures reproduced from the manifests),
/// ready for the standard aggregation: `runs.csv` and `summary.json`
/// derived from it are byte-identical to an unsharded run's, whatever
/// mix of store formats the shards used.
CampaignResult merge_shards(const std::vector<std::string>& shard_dirs,
                            const std::string& output_dir,
                            MergeStats* stats = nullptr,
                            StoreFormat output_format = StoreFormat::Dir);

}  // namespace hmpt::campaign
