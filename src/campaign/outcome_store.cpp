#include "campaign/outcome_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/outcome_io.h"

namespace hmpt::campaign {

namespace fs = std::filesystem;

OutcomeStore::OutcomeStore(std::string directory)
    : directory_(std::move(directory)) {
  HMPT_REQUIRE(!directory_.empty(), "outcome store needs a directory");
}

std::string OutcomeStore::path_for(const Scenario& scenario) const {
  return (fs::path(directory_) / "outcomes" /
          (scenario.fingerprint() + ".json"))
      .string();
}

bool OutcomeStore::contains(const Scenario& scenario) const {
  std::error_code ec;
  return fs::exists(path_for(scenario), ec) && !ec;
}

namespace {

/// Parse an outcome file's bytes; false (not a throw) on any damage —
/// invalid JSON (truncation lands here), version or fingerprint
/// mismatch, malformed outcome payload.
bool parse_outcome_payload(const std::string& text,
                           const std::string& fingerprint,
                           std::optional<tuner::TuningOutcome>* out) {
  try {
    const Json doc = Json::parse(text);
    HMPT_REQUIRE(static_cast<int>(doc.at("format_version").as_number()) ==
                     kFingerprintVersion,
                 "outcome format version mismatch");
    HMPT_REQUIRE(doc.at("fingerprint").as_string() == fingerprint,
                 "outcome fingerprint mismatch");
    auto outcome = tuner::outcome_from_json(doc.at("outcome"));
    if (out != nullptr) *out = std::move(outcome);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Move a damaged outcome file aside to `<path>.corrupt` so the
/// fingerprint reads as a miss and the scenario re-executes. A racing
/// quarantine of the same file (ENOENT) already succeeded; any other
/// rename failure throws — silently re-reading a corrupt file forever
/// would be worse than stopping.
void quarantine(const std::string& path) {
  const std::string target = path + ".corrupt";
  if (::rename(path.c_str(), target.c_str()) != 0 && errno != ENOENT)
    raise("cannot quarantine corrupt outcome file " + path + ": " +
          std::strerror(errno));
}

std::optional<tuner::TuningOutcome> load_outcome_file(
    const std::string& path, const std::string& fingerprint) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::optional<tuner::TuningOutcome> outcome;
  if (parse_outcome_payload(buffer.str(), fingerprint, &outcome))
    return outcome;
  // Truncated or otherwise damaged (a crash mid-copy, external
  // interference): quarantine and report a miss — the caller re-executes
  // the scenario instead of the whole campaign aborting.
  quarantine(path);
  return std::nullopt;
}

}  // namespace

std::optional<tuner::TuningOutcome> OutcomeStore::load(
    const Scenario& scenario) const {
  return load_outcome_file(path_for(scenario), scenario.fingerprint());
}

std::optional<tuner::TuningOutcome> OutcomeStore::load_by_fingerprint(
    const std::string& fingerprint) const {
  const std::string path =
      (fs::path(directory_) / "outcomes" / (fingerprint + ".json")).string();
  return load_outcome_file(path, fingerprint);
}

namespace {

/// Write `data` to a fresh file at `path` and fsync it before returning,
/// so the bytes are durable before any rename/link publishes the name.
void write_durable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    raise("cannot write outcome file " + path + ": " +
          std::strerror(errno));
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      raise("short write to outcome file " + path + ": " +
            std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    raise("cannot fsync outcome file " + path + ": " + std::strerror(err));
  }
  if (::close(fd) != 0)
    raise("cannot close outcome file " + path + ": " + std::strerror(errno));
}

std::string slurp_file(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

}  // namespace

void OutcomeStore::save(const Scenario& scenario,
                        const tuner::TuningOutcome& outcome) const {
  // Directories appear on the first write, so opening a store (or planning
  // a dry run) never touches the filesystem.
  std::error_code mkdir_ec;
  fs::create_directories(fs::path(directory_) / "outcomes", mkdir_ec);
  if (mkdir_ec)
    raise("cannot create outcome store at " + directory_ + ": " +
          mkdir_ec.message());

  JsonObject doc;
  doc["format_version"] = Json(kFingerprintVersion);
  doc["fingerprint"] = Json(scenario.fingerprint());
  doc["scenario"] = scenario.to_json();
  doc["outcome"] = tuner::outcome_to_json(outcome);
  const std::string payload = Json(std::move(doc)).dump();

  // The scratch name is unique per writer (pid + process-wide counter), so
  // concurrent savers of the same fingerprint never clobber each other's
  // temp file; the payload is fsynced before the name is published.
  static std::atomic<std::uint64_t> scratch_counter{0};
  const std::string path = path_for(scenario);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(scratch_counter.fetch_add(1));
  write_durable(tmp, payload);

  // Publish with link(2), which atomically fails with EEXIST when another
  // writer got there first: outcomes are content-addressed, so the loser
  // compares bytes — an identical outcome is a silent no-op (the normal
  // same-fingerprint race), a differing *well-formed* one is a
  // determinism violation that must fail loudly rather than silently
  // pick a winner. A differing *damaged* file (truncated by a crash or
  // external interference) is quarantined and the publish retried once.
  for (int tries = 0;; ++tries) {
    if (::link(tmp.c_str(), path.c_str()) == 0) {
      ::unlink(tmp.c_str());
      return;
    }
    const int link_errno = errno;
    if (link_errno != EEXIST) {
      ::unlink(tmp.c_str());
      raise("cannot finalise outcome file " + path + ": " +
            std::strerror(link_errno));
    }
    const std::string existing = slurp_file(path);
    if (existing == payload) {
      ::unlink(tmp.c_str());
      return;
    }
    if (tries == 0 &&
        !parse_outcome_payload(existing, scenario.fingerprint(), nullptr)) {
      quarantine(path);
      continue;
    }
    ::unlink(tmp.c_str());
    raise("conflicting outcome for fingerprint " + scenario.fingerprint() +
          ": " + path +
          " already holds a different result (delete it to re-run)");
  }
}

}  // namespace hmpt::campaign
