#include "campaign/outcome_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/outcome_io.h"

namespace hmpt::campaign {

namespace fs = std::filesystem;

const char* to_string(StoreFormat format) {
  return format == StoreFormat::Packed ? "packed" : "dir";
}

StoreFormat store_format_from(const std::string& text) {
  if (text == "dir") return StoreFormat::Dir;
  if (text == "packed") return StoreFormat::Packed;
  raise("unknown store format '" + text + "' (expected dir or packed)");
}

std::optional<StoreFormat> detect_store_format(const std::string& directory) {
  std::error_code ec;
  if (fs::exists(fs::path(directory) / "outcomes.log", ec) && !ec)
    return StoreFormat::Packed;
  if (fs::is_directory(fs::path(directory) / "outcomes", ec) && !ec)
    return StoreFormat::Dir;
  return std::nullopt;
}

namespace {

/// Parse a stored outcome document's bytes; false (not a throw) on any
/// damage — invalid JSON (truncation lands here), version or fingerprint
/// mismatch, malformed outcome payload.
bool parse_outcome_payload(const std::string& text,
                           const std::string& fingerprint,
                           std::optional<tuner::TuningOutcome>* out) {
  try {
    const Json doc = Json::parse(text);
    HMPT_REQUIRE(static_cast<int>(doc.at("format_version").as_number()) ==
                     kFingerprintVersion,
                 "outcome format version mismatch");
    HMPT_REQUIRE(doc.at("fingerprint").as_string() == fingerprint,
                 "outcome fingerprint mismatch");
    auto outcome = tuner::outcome_from_json(doc.at("outcome"));
    if (out != nullptr) *out = std::move(outcome);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Move a damaged outcome file aside to `<path>.corrupt` so the
/// fingerprint reads as a miss and the scenario re-executes. A racing
/// quarantine of the same file (ENOENT) already succeeded; any other
/// rename failure throws — silently re-reading a corrupt file forever
/// would be worse than stopping.
void quarantine(const std::string& path) {
  const std::string target = path + ".corrupt";
  if (::rename(path.c_str(), target.c_str()) != 0 && errno != ENOENT)
    raise("cannot quarantine corrupt outcome file " + path + ": " +
          std::strerror(errno));
}

/// Write `data` to a fresh file at `path` and fsync it before returning,
/// so the bytes are durable before any rename/link publishes the name.
void write_durable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    raise("cannot write outcome file " + path + ": " +
          std::strerror(errno));
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      raise("short write to outcome file " + path + ": " +
            std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    raise("cannot fsync outcome file " + path + ": " + std::strerror(err));
  }
  if (::close(fd) != 0)
    raise("cannot close outcome file " + path + ": " + std::strerror(errno));
}

std::string slurp_file(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// A unique scratch name beside `path`: pid + process-wide counter, so
/// concurrent writers never clobber each other's temp file.
std::string scratch_name(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

std::string dir_outcome_path(const std::string& directory,
                             const std::string& fingerprint) {
  return (fs::path(directory) / "outcomes" / (fingerprint + ".json"))
      .string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Backend interface

class OutcomeStoreBackend {
 public:
  explicit OutcomeStoreBackend(std::string directory)
      : directory_(std::move(directory)) {}
  virtual ~OutcomeStoreBackend() = default;

  virtual StoreFormat format() const = 0;
  virtual bool contains(const std::string& fingerprint) = 0;
  /// Raw stored payload bytes; nullopt when absent or damaged.
  virtual std::optional<std::string> payload(
      const std::string& fingerprint) = 0;
  /// First-write-wins byte-compare persist; see the header.
  virtual void save_payload(const std::string& fingerprint,
                            const std::string& payload) = 0;
  /// Every well-formed (fingerprint, payload), sorted by fingerprint.
  virtual std::vector<std::pair<std::string, std::string>> load_all() = 0;

  const std::string& directory() const { return directory_; }

 protected:
  const std::string directory_;
};

namespace {

// ---------------------------------------------------------------------------
// Dir backend: one <fingerprint>.json per scenario under <dir>/outcomes/.

class DirBackend : public OutcomeStoreBackend {
 public:
  using OutcomeStoreBackend::OutcomeStoreBackend;

  StoreFormat format() const override { return StoreFormat::Dir; }

  bool contains(const std::string& fingerprint) override {
    std::error_code ec;
    return fs::exists(dir_outcome_path(directory_, fingerprint), ec) && !ec;
  }

  std::optional<std::string> payload(
      const std::string& fingerprint) override {
    const std::string path = dir_outcome_path(directory_, fingerprint);
    std::ifstream is(path);
    if (!is.good()) return std::nullopt;
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string text = buffer.str();
    if (!parse_outcome_payload(text, fingerprint, nullptr)) {
      // Truncated or otherwise damaged (a crash mid-copy, external
      // interference): quarantine and report a miss — the caller
      // re-executes the scenario instead of the whole campaign aborting.
      quarantine(path);
      return std::nullopt;
    }
    return text;
  }

  void save_payload(const std::string& fingerprint,
                    const std::string& payload) override {
    // Directories appear on the first write, so opening a store (or
    // planning a dry run) never touches the filesystem.
    std::error_code mkdir_ec;
    fs::create_directories(fs::path(directory_) / "outcomes", mkdir_ec);
    if (mkdir_ec)
      raise("cannot create outcome store at " + directory_ + ": " +
            mkdir_ec.message());

    // The payload is fsynced into a unique scratch file before the name
    // is published.
    const std::string path = dir_outcome_path(directory_, fingerprint);
    const std::string tmp = scratch_name(path);
    write_durable(tmp, payload);

    // Publish with link(2), which atomically fails with EEXIST when
    // another writer got there first: outcomes are content-addressed, so
    // the loser compares bytes — an identical outcome is a silent no-op
    // (the normal same-fingerprint race), a differing *well-formed* one
    // is a determinism violation that must fail loudly rather than
    // silently pick a winner. A differing *damaged* file (truncated by a
    // crash or external interference) is quarantined and the publish
    // retried once.
    for (int tries = 0;; ++tries) {
      if (::link(tmp.c_str(), path.c_str()) == 0) {
        ::unlink(tmp.c_str());
        return;
      }
      const int link_errno = errno;
      if (link_errno != EEXIST) {
        ::unlink(tmp.c_str());
        raise("cannot finalise outcome file " + path + ": " +
              std::strerror(link_errno));
      }
      const std::string existing = slurp_file(path);
      if (existing == payload) {
        ::unlink(tmp.c_str());
        return;
      }
      if (tries == 0 &&
          !parse_outcome_payload(existing, fingerprint, nullptr)) {
        quarantine(path);
        continue;
      }
      ::unlink(tmp.c_str());
      raise("conflicting outcome for fingerprint " + fingerprint + ": " +
            path + " already holds a different result (delete it to re-run)");
    }
  }

  std::vector<std::pair<std::string, std::string>> load_all() override {
    std::map<std::string, std::string> sorted;
    std::error_code ec;
    fs::directory_iterator it(fs::path(directory_) / "outcomes", ec);
    if (ec) return {};
    for (const fs::directory_iterator end; it != end; it.increment(ec)) {
      if (ec) break;
      const fs::path path = it->path();
      if (path.extension() != ".json") continue;
      const std::string fingerprint = path.stem().string();
      std::string text = slurp_file(path.string());
      // Damaged files are skipped, not quarantined: bulk loads (merge,
      // reports) must not mutate the store they read.
      if (!parse_outcome_payload(text, fingerprint, nullptr)) continue;
      sorted[fingerprint] = std::move(text);
    }
    return {sorted.begin(), sorted.end()};
  }
};

// ---------------------------------------------------------------------------
// Packed backend: <dir>/outcomes.log + <dir>/outcomes.idx.
//
// Log record framing (the log is the authoritative store):
//
//   hmpt1 <fingerprint> <payload-bytes>\n
//   <payload>\n
//
// Records only ever land at the end of the log, under an exclusive
// flock, fsynced before the writer returns. A crash mid-append leaves a
// torn tail: readers scan records sequentially and stop at the first
// frame that does not decode (short header, bad magic, payload running
// past EOF, missing trailing newline), so a torn tail reads as "those
// scenarios are absent" — exactly the job-journal discipline. The next
// save truncates the torn bytes and appends from the clean boundary.
// A record whose frame is intact but whose payload bytes are damaged is
// superseded by appending a fresh record for the same fingerprint; the
// latest decodable record for a fingerprint wins.
//
// outcomes.idx is a disposable cache: one "<fingerprint> <offset>
// <payload-bytes>" line per record, appended in steady state so a
// reopening reader can prime its map with one sequential read instead of
// seeking through every record header. Readers validate it cheaply
// (strictly increasing offsets from 0, deep-check of the final entry
// against the log) and fall back to scanning the log wherever it falls
// short; a lying entry is caught at payload-read time (the record header
// is re-verified) and triggers one full rescan. Writers rebuild it from
// the log and publish by atomic rename whenever appending is unsafe
// (first save of a process, after a tail truncation, concurrent-writer
// drift).

constexpr const char* kRecordMagic = "hmpt1";
constexpr std::uint64_t kMaxHeaderBytes = 128;

/// Strict decimal: digits only, no sign/whitespace, fits in 63 bits.
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

struct RecordHeader {
  std::string fingerprint;
  std::uint64_t payload_size = 0;
  std::uint64_t header_size = 0;  ///< bytes up to and including the '\n'
};

/// Decode the record header at `offset`; nullopt on any framing damage.
std::optional<RecordHeader> read_record_header(std::ifstream& log,
                                               std::uint64_t offset,
                                               std::uint64_t log_size) {
  if (offset >= log_size) return std::nullopt;
  log.clear();
  log.seekg(static_cast<std::streamoff>(offset));
  char buffer[kMaxHeaderBytes];
  const std::uint64_t want =
      std::min<std::uint64_t>(kMaxHeaderBytes, log_size - offset);
  log.read(buffer, static_cast<std::streamsize>(want));
  const std::uint64_t got = static_cast<std::uint64_t>(log.gcount());
  const char* newline =
      static_cast<const char*>(std::memchr(buffer, '\n', got));
  if (newline == nullptr) return std::nullopt;
  const std::string line(buffer, static_cast<std::size_t>(newline - buffer));
  const auto magic_end = line.find(' ');
  if (magic_end == std::string::npos ||
      line.substr(0, magic_end) != kRecordMagic)
    return std::nullopt;
  const auto fingerprint_end = line.find(' ', magic_end + 1);
  if (fingerprint_end == std::string::npos) return std::nullopt;
  RecordHeader header;
  header.fingerprint =
      line.substr(magic_end + 1, fingerprint_end - magic_end - 1);
  if (header.fingerprint.empty() || header.fingerprint.size() > 64)
    return std::nullopt;
  const auto size = parse_u64(line.substr(fingerprint_end + 1));
  if (!size) return std::nullopt;
  header.payload_size = *size;
  header.header_size = static_cast<std::uint64_t>(newline - buffer) + 1;
  return header;
}

int byte_at(std::ifstream& log, std::uint64_t offset) {
  log.clear();
  log.seekg(static_cast<std::streamoff>(offset));
  return log.get();
}

class PackedBackend : public OutcomeStoreBackend {
 public:
  using OutcomeStoreBackend::OutcomeStoreBackend;

  StoreFormat format() const override { return StoreFormat::Packed; }

  bool contains(const std::string& fingerprint) override {
    std::lock_guard<std::mutex> lock(mutex_);
    refresh_locked();
    return records_.count(fingerprint) != 0;
  }

  std::optional<std::string> payload(
      const std::string& fingerprint) override {
    std::lock_guard<std::mutex> lock(mutex_);
    refresh_locked();
    for (int attempt = 0; attempt < 2; ++attempt) {
      const auto it = records_.find(fingerprint);
      if (it == records_.end()) return std::nullopt;
      std::ifstream log(log_path(), std::ios::binary);
      if (log.good()) {
        auto bytes =
            read_record_payload(log, seen_size_, fingerprint, it->second);
        if (bytes) return bytes;
      }
      // The index (or our cache of it) lied about this record: re-derive
      // the map from the log itself — the authority — and retry once.
      rescan_locked();
    }
    return std::nullopt;
  }

  void save_payload(const std::string& fingerprint,
                    const std::string& payload) override {
    HMPT_REQUIRE(fingerprint.find_first_of(" \t\r\n") == std::string::npos,
                 "packed store fingerprint must be a single token");
    std::lock_guard<std::mutex> lock(mutex_);
    // The store appears on the first write, like the dir format.
    std::error_code mkdir_ec;
    fs::create_directories(directory_, mkdir_ec);
    if (mkdir_ec)
      raise("cannot create outcome store at " + directory_ + ": " +
            mkdir_ec.message());

    const std::string log = log_path();
    const int fd = ::open(log.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
      raise("cannot open outcome log " + log + ": " + std::strerror(errno));
    struct LockGuard {
      int fd;
      ~LockGuard() {
        ::flock(fd, LOCK_UN);
        ::close(fd);
      }
    } guard{fd};
    while (::flock(fd, LOCK_EX) != 0) {
      if (errno != EINTR)
        raise("cannot lock outcome log " + log + ": " +
              std::strerror(errno));
    }

    // Under the writer lock the log cannot move: rescan it end to end so
    // the decision below is made against the authoritative state, not a
    // possibly-stale index.
    rescan_locked();
    const auto it = records_.find(fingerprint);
    if (it != records_.end()) {
      std::ifstream in(log, std::ios::binary);
      std::optional<std::string> existing;
      if (in.good())
        existing =
            read_record_payload(in, seen_size_, fingerprint, it->second);
      if (existing && *existing == payload) return;  // same-race no-op
      if (existing && parse_outcome_payload(*existing, fingerprint, nullptr))
        raise("conflicting outcome for fingerprint " + fingerprint + ": " +
              log +
              " already holds a different result (delete it to re-run)");
      // Damaged or unreadable existing record: append a superseding one —
      // the packed analogue of the dir store's quarantine-and-retry.
    }

    bool index_stale = false;
    if (good_end_ < seen_size_) {
      // Torn tail from a crash mid-append: cut the log back to the last
      // clean record boundary before appending.
      if (::ftruncate(fd, static_cast<off_t>(good_end_)) != 0)
        raise("cannot truncate torn tail of " + log + ": " +
              std::strerror(errno));
      index_stale = true;
    }

    const std::uint64_t offset = good_end_;
    const std::string record = std::string(kRecordMagic) + " " +
                               fingerprint + " " +
                               std::to_string(payload.size()) + "\n" +
                               payload + "\n";
    pwrite_all(fd, record, offset, log);
    if (::fsync(fd) != 0)
      raise("cannot fsync outcome log " + log + ": " + std::strerror(errno));
    records_[fingerprint] = Record{offset, payload.size()};
    good_end_ = offset + record.size();
    seen_size_ = good_end_;

    // Index maintenance: append in steady state; rebuild and publish by
    // atomic rename when appending would be unsafe (unknown on-disk
    // state on the first save of this process, drift from a concurrent
    // writer, entries past a truncated tail). The index is a cache — no
    // fsync on the append path.
    const std::string line = fingerprint + " " + std::to_string(offset) +
                             " " + std::to_string(payload.size()) + "\n";
    std::error_code ec;
    const auto index_size = fs::file_size(index_path(), ec);
    if (!index_stale && index_expected_size_ && !ec &&
        index_size == *index_expected_size_) {
      append_file(index_path(), line);
      *index_expected_size_ += line.size();
    } else {
      rebuild_index_locked();
    }
  }

  std::vector<std::pair<std::string, std::string>> load_all() override {
    std::lock_guard<std::mutex> lock(mutex_);
    rescan_locked();  // one authoritative sequential pass
    std::vector<std::pair<std::string, std::string>> out;
    if (records_.empty()) return out;
    std::ifstream log(log_path(), std::ios::binary);
    if (!log.good()) return out;
    for (const auto& [fingerprint, record] : records_) {
      auto bytes = read_record_payload(log, seen_size_, fingerprint, record);
      if (!bytes || !parse_outcome_payload(*bytes, fingerprint, nullptr))
        continue;
      out.emplace_back(fingerprint, std::move(*bytes));
    }
    return out;  // records_ is fingerprint-ordered
  }

 private:
  struct Record {
    std::uint64_t offset = 0;        ///< record (header) start in the log
    std::uint64_t payload_size = 0;  ///< payload bytes (frame adds header+\n)
  };

  std::string log_path() const {
    return (fs::path(directory_) / "outcomes.log").string();
  }
  std::string index_path() const {
    return (fs::path(directory_) / "outcomes.idx").string();
  }

  static void pwrite_all(int fd, const std::string& data,
                         std::uint64_t offset, const std::string& path) {
    std::size_t written = 0;
    while (written < data.size()) {
      const ssize_t n = ::pwrite(fd, data.data() + written,
                                 data.size() - written,
                                 static_cast<off_t>(offset + written));
      if (n < 0) {
        if (errno == EINTR) continue;
        raise("short write to outcome log " + path + ": " +
              std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
  }

  static void append_file(const std::string& path, const std::string& data) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0)
      raise("cannot append to outcome index " + path + ": " +
            std::strerror(errno));
    std::size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        raise("short write to outcome index " + path + ": " +
              std::strerror(err));
      }
      written += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }

  /// Read and verify the payload of `record`: the header at its offset
  /// must re-confirm fingerprint and size, the payload must be fully
  /// present, the trailing newline intact. nullopt on any mismatch.
  static std::optional<std::string> read_record_payload(
      std::ifstream& log, std::uint64_t log_size,
      const std::string& fingerprint, const Record& record) {
    const auto header = read_record_header(log, record.offset, log_size);
    if (!header || header->fingerprint != fingerprint ||
        header->payload_size != record.payload_size)
      return std::nullopt;
    const std::uint64_t payload_offset = record.offset + header->header_size;
    if (payload_offset + header->payload_size + 1 > log_size)
      return std::nullopt;
    std::string bytes(static_cast<std::size_t>(header->payload_size), '\0');
    log.clear();
    log.seekg(static_cast<std::streamoff>(payload_offset));
    log.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (static_cast<std::uint64_t>(log.gcount()) != header->payload_size)
      return std::nullopt;
    if (log.get() != '\n') return std::nullopt;
    return bytes;
  }

  /// Walk records from `from`, recording each decodable frame (the
  /// latest record for a fingerprint wins) and stopping at the first
  /// frame that does not decode. Returns the clean end offset.
  static std::uint64_t scan_records(std::ifstream& log, std::uint64_t from,
                                    std::uint64_t log_size,
                                    std::map<std::string, Record>& records) {
    std::uint64_t at = from;
    while (at < log_size) {
      const auto header = read_record_header(log, at, log_size);
      if (!header) break;
      const std::uint64_t end =
          at + header->header_size + header->payload_size + 1;
      if (end > log_size) break;
      if (byte_at(log, end - 1) != '\n') break;
      records[header->fingerprint] = Record{at, header->payload_size};
      at = end;
    }
    return at;
  }

  /// Authoritative cache rebuild: scan the whole log. Requires mutex_.
  void rescan_locked() {
    std::error_code ec;
    const auto file_size = fs::file_size(log_path(), ec);
    const std::uint64_t size =
        ec ? 0 : static_cast<std::uint64_t>(file_size);
    records_.clear();
    good_end_ = 0;
    seen_size_ = size;
    primed_ = true;
    if (size == 0) return;
    std::ifstream log(log_path(), std::ios::binary);
    if (!log.good()) {
      // Transient open failure: stay unprimed so the next call retries.
      primed_ = false;
      seen_size_ = 0;
      return;
    }
    good_end_ = scan_records(log, 0, size, records_);
  }

  /// Cheap cache refresh for readers: no-op while the log size is
  /// unchanged; otherwise prime from the index where it validates and
  /// scan the log for the rest. Requires mutex_.
  void refresh_locked() {
    std::error_code ec;
    const auto file_size = fs::file_size(log_path(), ec);
    const std::uint64_t size =
        ec ? 0 : static_cast<std::uint64_t>(file_size);
    if (primed_ && size == seen_size_) return;
    records_.clear();
    good_end_ = 0;
    seen_size_ = size;
    primed_ = true;
    if (size == 0) return;
    std::ifstream log(log_path(), std::ios::binary);
    if (!log.good()) {
      primed_ = false;
      seen_size_ = 0;
      return;
    }

    std::uint64_t scan_from = 0;
    std::ifstream index(index_path());
    if (index.good()) {
      // Keep the longest valid prefix of the index: well-formed lines
      // with strictly increasing offsets starting at 0, ending with an
      // entry that deep-checks against the log (header match, payload in
      // bounds, trailing newline). Anything after the prefix — a torn
      // final line, entries past a truncated tail — is re-derived by
      // scanning the log.
      std::vector<std::pair<std::string, Record>> entries;
      std::string line;
      while (std::getline(index, line)) {
        const auto first_space = line.find(' ');
        const auto second_space = first_space == std::string::npos
                                      ? std::string::npos
                                      : line.find(' ', first_space + 1);
        if (second_space == std::string::npos) break;
        const std::string fingerprint = line.substr(0, first_space);
        const auto offset = parse_u64(
            line.substr(first_space + 1, second_space - first_space - 1));
        const auto payload_size = parse_u64(line.substr(second_space + 1));
        if (fingerprint.empty() || fingerprint.size() > 64 || !offset ||
            !payload_size.has_value())
          break;
        if (entries.empty() ? *offset != 0
                            : *offset <= entries.back().second.offset)
          break;
        if (*offset >= size) break;
        entries.emplace_back(fingerprint,
                             Record{*offset, *payload_size});
      }
      while (!entries.empty()) {
        const auto& [last_fingerprint, last_record] = entries.back();
        const auto header =
            read_record_header(log, last_record.offset, size);
        if (header && header->fingerprint == last_fingerprint &&
            header->payload_size == last_record.payload_size) {
          const std::uint64_t end = last_record.offset +
                                    header->header_size +
                                    header->payload_size + 1;
          if (end <= size && byte_at(log, end - 1) == '\n') {
            for (const auto& entry : entries)
              records_[entry.first] = entry.second;
            scan_from = end;
            break;
          }
        }
        // The final entry may describe a record a crash tore off and a
        // later save truncated away; shrink the prefix and retry.
        entries.pop_back();
      }
    }
    good_end_ = scan_records(log, scan_from, size, records_);
  }

  /// Rewrite the index from the in-memory map (offset order) and publish
  /// it by atomic rename. Requires mutex_ and a current cache.
  void rebuild_index_locked() {
    std::vector<std::pair<std::string, Record>> entries(records_.begin(),
                                                        records_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.second.offset < b.second.offset;
              });
    std::string content;
    for (const auto& [fingerprint, record] : entries)
      content += fingerprint + " " + std::to_string(record.offset) + " " +
                 std::to_string(record.payload_size) + "\n";
    const std::string tmp = scratch_name(index_path());
    write_durable(tmp, content);
    if (::rename(tmp.c_str(), index_path().c_str()) != 0) {
      const int err = errno;
      ::unlink(tmp.c_str());
      raise("cannot publish outcome index " + index_path() + ": " +
            std::strerror(err));
    }
    index_expected_size_ = content.size();
  }

  std::mutex mutex_;
  bool primed_ = false;            ///< cache reflects some log state
  std::uint64_t seen_size_ = 0;    ///< log size the cache reflects
  std::uint64_t good_end_ = 0;     ///< end of the last decodable record
  std::map<std::string, Record> records_;
  /// Index size after our last write; appends are only safe while the
  /// on-disk size still matches (otherwise another writer or a
  /// truncation intervened and the index is rebuilt).
  std::optional<std::uint64_t> index_expected_size_;
};

}  // namespace

// ---------------------------------------------------------------------------
// OutcomeStore: thin value-semantics shell over the shared backend.

OutcomeStore::OutcomeStore(std::string directory, StoreFormat format) {
  HMPT_REQUIRE(!directory.empty(), "outcome store needs a directory");
  const auto existing = detect_store_format(directory);
  if (existing && *existing != format)
    raise("outcome store at " + directory + " is " +
          std::string(to_string(*existing)) +
          "-format; pass --store-format " + to_string(*existing) +
          " or point at a fresh directory");
  if (format == StoreFormat::Packed)
    backend_ = std::make_shared<PackedBackend>(std::move(directory));
  else
    backend_ = std::make_shared<DirBackend>(std::move(directory));
}

OutcomeStore OutcomeStore::open_existing(const std::string& directory) {
  return OutcomeStore(
      directory, detect_store_format(directory).value_or(StoreFormat::Dir));
}

const std::string& OutcomeStore::directory() const {
  return backend_->directory();
}

StoreFormat OutcomeStore::format() const { return backend_->format(); }

std::string OutcomeStore::path_for(const Scenario& scenario) const {
  HMPT_REQUIRE(backend_->format() == StoreFormat::Dir,
               "path_for: a packed store has no per-scenario file");
  return dir_outcome_path(backend_->directory(), scenario.fingerprint());
}

bool OutcomeStore::contains(const Scenario& scenario) const {
  return backend_->contains(scenario.fingerprint());
}

std::optional<tuner::TuningOutcome> OutcomeStore::load(
    const Scenario& scenario) const {
  return load_by_fingerprint(scenario.fingerprint());
}

std::optional<tuner::TuningOutcome> OutcomeStore::load_by_fingerprint(
    const std::string& fingerprint) const {
  const auto bytes = backend_->payload(fingerprint);
  if (!bytes) return std::nullopt;
  std::optional<tuner::TuningOutcome> outcome;
  if (!parse_outcome_payload(*bytes, fingerprint, &outcome))
    return std::nullopt;
  return outcome;
}

void OutcomeStore::save(const Scenario& scenario,
                        const tuner::TuningOutcome& outcome) const {
  backend_->save_payload(scenario.fingerprint(),
                         make_payload(scenario, outcome));
}

std::optional<std::string> OutcomeStore::payload(
    const std::string& fingerprint) const {
  return backend_->payload(fingerprint);
}

void OutcomeStore::save_payload(const std::string& fingerprint,
                                const std::string& payload) const {
  HMPT_REQUIRE(!fingerprint.empty(), "outcome fingerprint must be non-empty");
  backend_->save_payload(fingerprint, payload);
}

std::vector<std::pair<std::string, std::string>>
OutcomeStore::load_all_payloads() const {
  return backend_->load_all();
}

std::string OutcomeStore::make_payload(const Scenario& scenario,
                                       const tuner::TuningOutcome& outcome) {
  JsonObject doc;
  doc["format_version"] = Json(kFingerprintVersion);
  doc["fingerprint"] = Json(scenario.fingerprint());
  doc["scenario"] = scenario.to_json();
  doc["outcome"] = tuner::outcome_to_json(outcome);
  return Json(std::move(doc)).dump();
}

}  // namespace hmpt::campaign
