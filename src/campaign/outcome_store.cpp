#include "campaign/outcome_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "core/outcome_io.h"

namespace hmpt::campaign {

namespace fs = std::filesystem;

OutcomeStore::OutcomeStore(std::string directory)
    : directory_(std::move(directory)) {
  HMPT_REQUIRE(!directory_.empty(), "outcome store needs a directory");
}

std::string OutcomeStore::path_for(const Scenario& scenario) const {
  return (fs::path(directory_) / "outcomes" /
          (scenario.fingerprint() + ".json"))
      .string();
}

bool OutcomeStore::contains(const Scenario& scenario) const {
  std::error_code ec;
  return fs::exists(path_for(scenario), ec) && !ec;
}

std::optional<tuner::TuningOutcome> OutcomeStore::load(
    const Scenario& scenario) const {
  const std::string path = path_for(scenario);
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  std::stringstream buffer;
  buffer << is.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    HMPT_REQUIRE(static_cast<int>(doc.at("format_version").as_number()) ==
                     kFingerprintVersion,
                 "outcome format version mismatch");
    HMPT_REQUIRE(doc.at("fingerprint").as_string() == scenario.fingerprint(),
                 "outcome fingerprint mismatch");
    return tuner::outcome_from_json(doc.at("outcome"));
  } catch (const std::exception& e) {
    raise("corrupt outcome file " + path + ": " + e.what() +
          " (delete it to re-run the scenario)");
  }
}

void OutcomeStore::save(const Scenario& scenario,
                        const tuner::TuningOutcome& outcome) const {
  // Directories appear on the first write, so opening a store (or planning
  // a dry run) never touches the filesystem.
  std::error_code mkdir_ec;
  fs::create_directories(fs::path(directory_) / "outcomes", mkdir_ec);
  if (mkdir_ec)
    raise("cannot create outcome store at " + directory_ + ": " +
          mkdir_ec.message());

  JsonObject doc;
  doc["format_version"] = Json(kFingerprintVersion);
  doc["fingerprint"] = Json(scenario.fingerprint());
  doc["scenario"] = scenario.to_json();
  doc["outcome"] = tuner::outcome_to_json(outcome);

  const std::string path = path_for(scenario);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os.good()) raise("cannot write outcome file: " + tmp);
    os << Json(std::move(doc)).dump();
    os.flush();
    if (!os.good()) raise("short write to outcome file: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    raise("cannot finalise outcome file " + path + ": " + ec.message());
  }
}

}  // namespace hmpt::campaign
