// outcome_store.h — the content-addressed cache of finished scenarios.
//
// One logical record per scenario, keyed by the scenario fingerprint and
// holding the scenario that produced it (for human inspection and sanity
// checks) plus the serialised TuningOutcome. The fingerprint is the key:
// --resume asks contains()/load() before executing, and anything that
// changes the experiment (workload parameters, platform, strategy, tier
// count, budgets, repetitions, top-k, the format version) changes the
// fingerprint and so misses the cache.
//
// Two on-disk formats hold the same records byte-for-byte, selected per
// store (`hmpt_campaign --store-format`):
//
//   * Dir (the default): one file per scenario under
//     <dir>/outcomes/<fingerprint>.json. Writes go through an fsynced
//     unique temp file published by an atomic link, so a campaign killed
//     mid-save never leaves a half-written outcome for the next --resume
//     to trust, and concurrent writers of one fingerprint (a daemon
//     worker racing a batch run, two attached clients) are safe: the
//     first complete write wins, identical bytes are a silent no-op,
//     differing bytes fail loudly instead of silently picking a winner.
//
//   * Packed: one append-only <dir>/outcomes.log of length-prefixed
//     records plus a fingerprint → offset index <dir>/outcomes.idx
//     (append-only in steady state, rebuilt and published by atomic
//     rename when stale). One file per scenario stops scaling around
//     10^5 scenarios — the packed log keeps fleet-scale campaigns to two
//     files and gives the aggregator/merger one sequential bulk load.
//     Appends are fsynced under an exclusive flock; a torn tail from a
//     crash mid-append is skipped on load (the same discipline as the
//     service job journal) and truncated away by the next save, so
//     re-execution repairs it.
//
// Both formats store identical payload bytes for identical outcomes, so
// a store can be converted losslessly between formats (hmpt_merge reads
// either and writes either) and merged artefacts stay byte-identical
// whatever mix of formats the shards used. First-write-wins byte-compare
// semantics hold in both: racing identical writes are no-ops, a
// well-formed conflicting write for an existing fingerprint throws.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/scenario.h"
#include "core/strategy.h"

namespace hmpt::campaign {

/// On-disk layout of an OutcomeStore; see the file comment.
enum class StoreFormat { Dir, Packed };

/// The CLI spelling ("dir"/"packed").
const char* to_string(StoreFormat format);
/// Parse the CLI spelling; throws hmpt::Error on anything else.
StoreFormat store_format_from(const std::string& text);

/// Detect the format of an existing store at `directory`: Packed when
/// outcomes.log exists, Dir when outcomes/ exists, nullopt when neither
/// does (no store yet).
std::optional<StoreFormat> detect_store_format(const std::string& directory);

class OutcomeStore {
 public:
  /// Open the store under `directory` in `format`. Purely nominal:
  /// directories/files are created on the first save(), so opening (or
  /// dry-run planning against) a store writes nothing. Throws hmpt::Error
  /// when the directory already holds a store of the *other* format —
  /// silently shadowing existing outcomes would defeat --resume.
  explicit OutcomeStore(std::string directory,
                        StoreFormat format = StoreFormat::Dir);

  /// Open an existing store, auto-detecting its format (Dir when the
  /// directory holds no store yet).
  static OutcomeStore open_existing(const std::string& directory);

  /// The store's root directory.
  const std::string& directory() const;
  /// The on-disk layout this store reads and writes.
  StoreFormat format() const;

  /// Dir format only: the on-disk path of a scenario's outcome file,
  /// <dir>/outcomes/<fingerprint>.json. Throws for a packed store, whose
  /// scenarios have no per-scenario file.
  std::string path_for(const Scenario& scenario) const;

  bool contains(const Scenario& scenario) const;
  /// Load a cached outcome; nullopt when absent or damaged (a damaged
  /// record reads as a miss so the scenario re-executes — dir stores
  /// quarantine the file to <fingerprint>.json.corrupt, packed stores
  /// supersede the record on the repairing save).
  std::optional<tuner::TuningOutcome> load(const Scenario& scenario) const;
  /// Load by content address alone (the daemon's `result <fingerprint>`
  /// path, where no Scenario is in hand); nullopt when absent or damaged
  /// like load().
  std::optional<tuner::TuningOutcome> load_by_fingerprint(
      const std::string& fingerprint) const;
  /// Persist a finished scenario. First complete write of a fingerprint
  /// wins; a racing identical write is a silent no-op, a differing one
  /// throws hmpt::Error (see the file comment).
  void save(const Scenario& scenario,
            const tuner::TuningOutcome& outcome) const;

  // Payload-level access: the raw stored document bytes, identical
  // across formats for identical outcomes. This is the merge/report
  // currency — byte-compares and cross-format conversion never
  // re-serialise, so they cannot silently normalise away a difference.

  /// The stored payload bytes of a fingerprint; nullopt when absent or
  /// structurally damaged.
  std::optional<std::string> payload(const std::string& fingerprint) const;
  /// Store raw payload bytes under a fingerprint with the same
  /// first-write-wins byte-compare semantics as save(). The caller owns
  /// payload/fingerprint consistency (merge copies validated records).
  void save_payload(const std::string& fingerprint,
                    const std::string& payload) const;
  /// Bulk load of every (fingerprint, payload) in the store, sorted by
  /// fingerprint — one sequential pass for packed stores, one directory
  /// walk for dir stores. Damaged records are skipped.
  std::vector<std::pair<std::string, std::string>> load_all_payloads() const;

  /// The document bytes save() would store for this (scenario, outcome):
  /// format_version + fingerprint + scenario + outcome as pretty JSON.
  static std::string make_payload(const Scenario& scenario,
                                  const tuner::TuningOutcome& outcome);

 private:
  // Copyable value semantics over a shared backend (Scheduler and tests
  // pass stores by value); the backend is internally synchronised.
  std::shared_ptr<class OutcomeStoreBackend> backend_;
};

}  // namespace hmpt::campaign
