// outcome_store.h — the content-addressed cache of finished scenarios.
//
// One file per scenario under <dir>/outcomes/<fingerprint>.json, holding
// the scenario that produced it (for human inspection and sanity checks)
// and the serialised TuningOutcome. The fingerprint is the key: --resume
// asks contains()/load() before executing, and anything that changes the
// experiment (workload parameters, platform, strategy, tier count,
// budgets, repetitions, top-k, the format version) changes the
// fingerprint and so misses the cache. Writes go through an fsynced
// unique temp file published by an atomic link, so a campaign killed
// mid-save never leaves a half-written outcome for the next --resume to
// trust, and concurrent writers of one fingerprint (a daemon worker
// racing a batch run, two attached clients) are safe: the first complete
// write wins, identical bytes are a silent no-op, differing bytes fail
// loudly instead of silently picking a winner.
#pragma once

#include <optional>
#include <string>

#include "campaign/scenario.h"
#include "core/strategy.h"

namespace hmpt::campaign {

class OutcomeStore {
 public:
  /// Open the store under `directory`. Purely nominal: directories are
  /// created on the first save(), so opening (or dry-run planning against)
  /// a store writes nothing.
  explicit OutcomeStore(std::string directory);

  /// The store's root directory (outcomes live under <dir>/outcomes/).
  const std::string& directory() const { return directory_; }
  /// The on-disk path of a scenario's outcome file:
  /// <dir>/outcomes/<fingerprint>.json.
  std::string path_for(const Scenario& scenario) const;

  bool contains(const Scenario& scenario) const;
  /// Load a cached outcome; nullopt when absent. Throws hmpt::Error on a
  /// present-but-corrupt file (a silent miss would silently re-run).
  std::optional<tuner::TuningOutcome> load(const Scenario& scenario) const;
  /// Load by content address alone (the daemon's `result <fingerprint>`
  /// path, where no Scenario is in hand); nullopt when absent, throws on
  /// a corrupt or mis-keyed file like load().
  std::optional<tuner::TuningOutcome> load_by_fingerprint(
      const std::string& fingerprint) const;
  /// Persist a finished scenario. First complete write of a fingerprint
  /// wins; a racing identical write is a silent no-op, a differing one
  /// throws hmpt::Error (see the file comment).
  void save(const Scenario& scenario,
            const tuner::TuningOutcome& outcome) const;

 private:
  std::string directory_;
};

}  // namespace hmpt::campaign
