// scenario.h — declarative scenarios and the matrix that expands them.
//
// A Scenario is one fully-specified tuning run: (workload, platform,
// strategy, tier count, capacity budgets, repetitions). Its canonical()
// rendering — alias-free platform name, sorted workload parameters,
// sorted tier budgets — is hashed into a content-addressed fingerprint
// that keys the on-disk outcome store: two scenarios with the same
// fingerprint are the same experiment, whatever order or spelling they
// were declared in. Fields that cannot change the result (worker-thread
// counts — outcomes are bit-identical at any job count) are deliberately
// excluded, so re-running a campaign with different parallelism still
// hits the cache.
//
// A ScenarioMatrix is the declarative cross product the campaign file and
// the CLI flags build up: workloads × platforms × strategies × tiers ×
// budgets, expanded to a validated, deduplicated scenario list.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "campaign/workload_registry.h"

namespace hmpt::campaign {

struct Scenario {
  WorkloadSpec workload;
  std::string platform;  ///< canonical name (see canonical_platform)
  std::string strategy;
  int tiers = 0;          ///< 0 = the platform's native tier count
  double budget_gb = 0.0; ///< HBM budget; 0 = full machine HBM
  /// Per-tier budgets (tier, GB), kept sorted by tier.
  std::vector<std::pair<int, double>> tier_budgets_gb;
  int repetitions = 3;
  int top_k = 3;

  /// Human-readable id, e.g. "mg/spr-cxl/estimator".
  std::string label() const;
  /// The exact text the fingerprint hashes (stable across versions of the
  /// runner; bump kFingerprintVersion on any semantic change).
  std::string canonical() const;
  /// 16-hex-digit FNV-1a hash of canonical().
  std::string fingerprint() const;

  Json to_json() const;
  static Scenario from_json(const Json& json);
};

/// Bumped whenever canonical() or the outcome format changes meaning, so
/// stale caches invalidate instead of replaying wrong results.
inline constexpr int kFingerprintVersion = 1;

struct ScenarioMatrix {
  std::vector<WorkloadSpec> workloads;
  std::vector<std::string> platforms;   ///< any alias; canonicalised on expand
  std::vector<std::string> strategies;
  std::vector<int> tiers;               ///< empty = {0}
  std::vector<double> budgets_gb;       ///< empty = {0}
  std::vector<std::pair<int, double>> tier_budgets_gb;  ///< applied to all
  int repetitions = 3;
  int top_k = 3;

  /// Cross product in declaration order, deduplicated by fingerprint.
  /// Validates every axis (known workloads/platforms/strategies, sane
  /// numerics) and throws hmpt::Error on the first violation.
  std::vector<Scenario> expand() const;

  /// Parse the campaign-file format (one directive per line, '#' comments):
  ///   workload <name[:k=v,...]>
  ///   platform <name>
  ///   strategy <name>
  ///   tiers <k>
  ///   budget-gb <n>
  ///   tier-budget-gb <tier>:<n>
  ///   reps <n>
  ///   top-k <n>
  /// Repeatable directives (workload/platform/strategy/tiers/budget-gb)
  /// append to their axis; reps and top-k are single-valued.
  static ScenarioMatrix parse(std::istream& is);
  static ScenarioMatrix parse(const std::string& text);
  static ScenarioMatrix load(const std::string& path);
};

}  // namespace hmpt::campaign
