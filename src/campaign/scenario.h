// scenario.h — declarative scenarios and the matrix that expands them.
//
// A Scenario is one fully-specified tuning run: (workload, platform,
// strategy, tier count, capacity budgets, repetitions). Its canonical()
// rendering — alias-free platform name, sorted workload parameters,
// sorted tier budgets — is hashed into a content-addressed fingerprint
// that keys the on-disk outcome store: two scenarios with the same
// fingerprint are the same experiment, whatever order or spelling they
// were declared in. Fields that cannot change the result (worker-thread
// counts — outcomes are bit-identical at any job count) are deliberately
// excluded, so re-running a campaign with different parallelism still
// hits the cache.
//
// A ScenarioMatrix is the declarative cross product the campaign file and
// the CLI flags build up: workloads × platforms × strategies × tiers ×
// budgets, expanded to a validated, deduplicated scenario list.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "campaign/workload_registry.h"

namespace hmpt::campaign {

/// One fully-specified tuning run. Every field below is part of the
/// content address (fingerprint) except where noted; see canonical().
struct Scenario {
  WorkloadSpec workload;  ///< registry name + sorted parameters
  std::string platform;   ///< canonical name (see canonical_platform)
  std::string strategy;   ///< StrategyRegistry name (e.g. "estimator")
  int tiers = 0;          ///< 0 = the platform's native tier count
  double budget_gb = 0.0; ///< HBM budget; 0 = full machine HBM
  /// Per-tier budgets (tier, GB), kept sorted by tier.
  std::vector<std::pair<int, double>> tier_budgets_gb;
  int repetitions = 3;    ///< measurement repetitions per configuration
  int top_k = 3;          ///< estimator strategy: configs to measure

  /// Human-readable id, e.g. "mg/spr-cxl/estimator".
  std::string label() const;
  /// The exact text the fingerprint hashes (stable across versions of the
  /// runner; bump kFingerprintVersion on any semantic change).
  std::string canonical() const;
  /// 16-hex-digit FNV-1a hash of canonical().
  std::string fingerprint() const;

  /// Lossless serialisation: from_json(to_json()) preserves canonical()
  /// and so the fingerprint (covered by tests).
  Json to_json() const;
  static Scenario from_json(const Json& json);
};

/// Bumped whenever canonical() or the outcome format changes meaning, so
/// stale caches invalidate instead of replaying wrong results.
inline constexpr int kFingerprintVersion = 1;

/// Fingerprint of a whole campaign: the FNV-1a hash (16 hex digits) of the
/// matrix-ordered scenario fingerprints. Two campaign invocations share a
/// campaign fingerprint iff they would produce the same scenario list in
/// the same order — which is exactly when their shards may be merged into
/// one set of artefacts (`runs.csv`/`summary.json` are matrix-ordered, so
/// order is part of the identity).
std::string campaign_fingerprint(const std::vector<Scenario>& scenarios);
/// Same hash over already-computed scenario fingerprints — for callers
/// holding the content addresses captured at run time (aggregation,
/// merge), which must not re-hash scenarios whose recorded-profile files
/// may have changed since.
std::string campaign_fingerprint(const std::vector<std::string>& fingerprints);

/// Which slice of a campaign one process runs: shard `index` of `count`,
/// 1-based ("2/3" = the second of three shards). The default 1/1 is the
/// whole campaign.
struct ShardSpec {
  int index = 1;
  int count = 1;

  /// True for the trivial 1/1 shard (an unsharded run).
  bool is_whole() const { return count == 1; }
  /// "index/count", the spelling `parse_shard_spec` accepts.
  std::string to_string() const;
};

/// Parse "i/N" (1 <= i <= N); throws hmpt::Error on anything else.
ShardSpec parse_shard_spec(const std::string& text);

/// Serialise the expanded scenario list (matrix order) to a plan file —
/// how the fleet dispatcher hands its workers the full campaign, so every
/// process derives the same campaign fingerprint and artefact order
/// without re-expanding a matrix (whose recorded-profile digests could
/// have drifted between hosts). Atomic write (temp + rename).
void save_scenario_plan(const std::string& path,
                        const std::vector<Scenario>& scenarios);
/// Load a plan file; throws hmpt::Error when missing, malformed, or of a
/// different fingerprint version.
std::vector<Scenario> load_scenario_plan(const std::string& path);

/// Deterministically partition a campaign across `shard.count` processes:
/// the scenario list is ordered by fingerprint and rank r (0-based) goes
/// to shard (r mod count) + 1. Shards are pairwise disjoint, their union
/// is exactly `scenarios`, and — because fingerprints are content
/// addresses — the partition is stable across processes, declaration
/// order, alias spellings and --resume. The returned subset is in
/// fingerprint order.
std::vector<Scenario> shard_scenarios(const std::vector<Scenario>& scenarios,
                                      const ShardSpec& shard);

/// The declarative cross product a campaign file and/or CLI flags build
/// up; expand() turns it into the validated, deduplicated scenario list.
struct ScenarioMatrix {
  std::vector<WorkloadSpec> workloads;  ///< axis: registry workload specs
  std::vector<std::string> platforms;   ///< any alias; canonicalised on expand
  std::vector<std::string> strategies;  ///< axis: StrategyRegistry names
  std::vector<int> tiers;               ///< empty = {0}
  std::vector<double> budgets_gb;       ///< empty = {0}
  std::vector<std::pair<int, double>> tier_budgets_gb;  ///< applied to all
  int repetitions = 3;                  ///< single-valued, all scenarios
  int top_k = 3;                        ///< single-valued, all scenarios

  /// Cross product in declaration order, deduplicated by fingerprint.
  /// Validates every axis (known workloads/platforms/strategies, sane
  /// numerics) and throws hmpt::Error on the first violation.
  std::vector<Scenario> expand() const;

  /// Parse the campaign-file format (one directive per line, '#' comments):
  ///   workload <name[:k=v,...]>
  ///   platform <name>
  ///   strategy <name>
  ///   tiers <k>
  ///   budget-gb <n>
  ///   tier-budget-gb <tier>:<n>
  ///   reps <n>
  ///   top-k <n>
  /// Repeatable directives (workload/platform/strategy/tiers/budget-gb)
  /// append to their axis; reps and top-k are single-valued.
  static ScenarioMatrix parse(std::istream& is);
  static ScenarioMatrix parse(const std::string& text);
  static ScenarioMatrix load(const std::string& path);
};

}  // namespace hmpt::campaign
