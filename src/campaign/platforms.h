// platforms.h — the string-keyed catalogue of simulated platforms.
//
// Scenarios name their platform ("a campaign is workloads × platforms ×
// strategies"), so the simulator presets scattered across simmem get one
// canonical name each plus the historical CLI aliases. hmpt_analyze and
// hmpt_campaign resolve --platform through this catalogue; scenario
// fingerprints always store the canonical name so "spr" and "xeon-max"
// dedup to the same cached outcome.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simmem/simulator.h"

namespace hmpt::campaign {

struct PlatformInfo {
  std::string name;                  ///< canonical name
  std::vector<std::string> aliases;  ///< accepted synonyms
  std::string description;
  int tiers = 2;  ///< memory tiers the platform exposes
  /// Builds the simulator — part of the catalogue entry, so a platform
  /// cannot be listed without being constructible.
  std::function<sim::MachineSimulator()> factory;
};

/// All platforms in catalogue order.
const std::vector<PlatformInfo>& platform_catalog();

/// Canonical names, catalogue order.
std::vector<std::string> platform_names();

/// True when `name` is a canonical name or alias.
bool is_platform(const std::string& name);

/// Resolve an alias to its canonical name; throws hmpt::Error naming the
/// known platforms when `name` is unknown.
std::string canonical_platform(const std::string& name);

/// Construct the simulator for a (canonical or alias) platform name.
sim::MachineSimulator make_platform(const std::string& name);

/// Human-readable catalogue listing (shared by the CLIs' --list-platforms).
std::string platform_catalog_text();

}  // namespace hmpt::campaign
