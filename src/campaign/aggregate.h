// aggregate.h — campaign-wide views of a finished CampaignResult.
//
// Three artefacts per campaign, all derived deterministically from the
// per-scenario outcomes so a resumed campaign reproduces them
// byte-for-byte:
//   * runs.csv      one row per scenario with the headline numbers
//                   (machine-readable; stable across --resume, so status
//                   columns live in summary.json instead),
//   * summary.json  campaign totals + per-scenario records including run
//                   status and errors,
//   * a ranked text table (common/table) for the terminal, best speedup
//                   first.
#pragma once

#include <string>

#include "campaign/campaign.h"
#include "common/json.h"
#include "common/table.h"

namespace hmpt::campaign {

/// The planned-scenario listing shared by --dry-run and the pre-run plan
/// printout (one row per scenario, matrix order).
Table plan_table(const std::vector<Scenario>& scenarios);

/// One row per scenario with an outcome (Executed/Cached), matrix order.
/// Deliberately excludes run status and timings: those vary between a
/// cold and a resumed campaign, and runs.csv must not.
Table runs_table(const CampaignResult& result);

/// Scenarios with outcomes ranked by speedup, best first (ties broken by
/// label for determinism).
Table ranked_table(const CampaignResult& result);

/// Campaign totals + per-scenario status records (including failures).
Json summary_json(const CampaignResult& result);

/// Write runs.csv and summary.json under `output_dir`; returns the paths
/// written. Per-scenario outcome JSONs are already in the store.
std::vector<std::string> write_artifacts(const CampaignResult& result,
                                         const std::string& output_dir);

}  // namespace hmpt::campaign
