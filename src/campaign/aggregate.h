// aggregate.h — campaign-wide views of a finished CampaignResult.
//
// Artefacts per campaign, split by stability. runs.csv and summary.json
// are derived *deterministically* from the per-scenario outcomes — the
// same bytes whether the campaign ran cold, resumed, or as N merged
// shards — while everything execution-dependent (statuses, wall times)
// lives in status.json, which is expected to differ between runs:
//   * runs.csv      one row per scenario with the headline numbers
//                   (machine-readable, matrix order),
//   * summary.json  campaign fingerprint + totals + per-scenario records
//                   (scenario, speedup, recorded error) — deterministic,
//   * status.json   executed/cached counts, per-run status and wall
//                   times — the volatile run log,
//   * a ranked text table (common/table) for the terminal, best speedup
//                   first.
#pragma once

#include <string>

#include "campaign/campaign.h"
#include "common/json.h"
#include "common/table.h"

namespace hmpt::campaign {

/// The planned-scenario listing shared by --dry-run and the pre-run plan
/// printout (one row per scenario, matrix order).
Table plan_table(const std::vector<Scenario>& scenarios);

/// One row per scenario with an outcome (Executed/Cached), matrix order.
/// Deliberately excludes run status and timings: those vary between a
/// cold and a resumed campaign, and runs.csv must not.
Table runs_table(const CampaignResult& result);

/// Scenarios with outcomes (Executed/Cached) ranked by speedup, best
/// first, ties broken by label for determinism — the ordering shared by
/// the terminal ranking and the HTML report. Pointers into `result`.
std::vector<const ScenarioRun*> ranked_runs(const CampaignResult& result);

/// Scenarios with outcomes ranked by speedup, best first (ties broken by
/// label for determinism).
Table ranked_table(const CampaignResult& result);

/// Campaign fingerprint + totals + per-scenario records. Deterministic:
/// contains nothing that depends on *how* the outcomes were obtained
/// (cold, resumed or merged from shards), so a merged campaign's
/// summary.json is byte-identical to the unsharded run's. Failures appear
/// with their recorded error message.
Json summary_json(const CampaignResult& result);

/// The volatile run log: executed/cached/failed/planned counts, campaign
/// wall time, and per-run status + seconds. Deliberately separate from
/// summary.json so the deterministic artefacts stay comparable across
/// resume and shard merges.
Json status_json(const CampaignResult& result);

/// Write runs.csv, summary.json and status.json under `output_dir`;
/// returns the paths written. Per-scenario outcome JSONs are already in
/// the store.
std::vector<std::string> write_artifacts(const CampaignResult& result,
                                         const std::string& output_dir);

}  // namespace hmpt::campaign
