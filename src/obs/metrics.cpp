#include "obs/metrics.h"

namespace hmpt::obs {

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracker_.add(v);
}

ConcurrentQuantileTracker::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ConcurrentQuantileTracker::Snapshot snap;
  snap.count = tracker_.count();
  snap.mean = tracker_.mean();
  snap.min = tracker_.min();
  snap.max = tracker_.max();
  snap.p50 = tracker_.p50();
  snap.p95 = tracker_.p95();
  snap.p99 = tracker_.p99();
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  tracker_ = QuantileTracker();
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky, like the trace recorder: metrics may be recorded from worker
  // threads during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject out;
  JsonObject counters;
  for (const auto& [name, value] : counters_)
    counters[name] = Json(value->value());
  out["counters"] = Json(std::move(counters));
  JsonObject gauges;
  for (const auto& [name, value] : gauges_)
    gauges[name] = Json(value->value());
  out["gauges"] = Json(std::move(gauges));
  JsonObject histograms;
  for (const auto& [name, value] : histograms_)
    histograms[name] = Json(snapshot_to_json(value->snapshot()));
  out["histograms"] = Json(std::move(histograms));
  return Json(std::move(out));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, value] : counters_) {
    (void)name;
    value->reset();
  }
  for (auto& [name, value] : gauges_) {
    (void)name;
    value->reset();
  }
  for (auto& [name, value] : histograms_) {
    (void)name;
    value->reset();
  }
}

JsonObject snapshot_to_json(const ConcurrentQuantileTracker::Snapshot& snap,
                            const std::string& suffix) {
  JsonObject fields;
  fields["count"] = Json(static_cast<std::uint64_t>(snap.count));
  // Empty distributions stop here: printing zero quantiles would read as
  // "the p99 is 0 seconds", which no sample supports.
  if (snap.count == 0) return fields;
  fields["mean" + suffix] = Json(snap.mean);
  fields["p50" + suffix] = Json(snap.p50);
  fields["p95" + suffix] = Json(snap.p95);
  fields["p99" + suffix] = Json(snap.p99);
  return fields;
}

}  // namespace hmpt::obs
