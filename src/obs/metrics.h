// metrics.h — a process-wide registry of named counters/gauges/histograms.
//
// The daemon's `stats` verb, hmptd's --metrics-file snapshots and the
// instrumented subsystems (scheduler, thread pool, CachedTraceTimer)
// all meet here: code increments cheap atomics unconditionally, readers
// pull a consistent JSON snapshot on demand. Recording is zero-cost in
// the sense that matters — a relaxed fetch_add with no lock, no
// allocation and no syscall — whether or not anything ever reads the
// registry, so instrumentation never needs a "metrics enabled" switch
// the way tracing does.
//
// Like the trace recorder, metrics live strictly outside the
// content-addressed artefact set: nothing here may influence tuner
// results, and runs.csv/summary.json/outcome stores are byte-identical
// with or without readers.
//
// Metric names are dotted paths ("scheduler.retries", "timer.hits");
// lookups are mutex-guarded and return references stable for the
// process life, so hot paths resolve a metric once and hold the
// reference:
//
//   static obs::Counter& hits = obs::metrics().counter("timer.hits");
//   hits.add(n);
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/stats.h"

namespace hmpt::obs {

/// Monotonic event count (relaxed atomics; wraps only after 2^64).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-writer-wins instantaneous value (queue depth, worker count).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// A streaming distribution: count/mean/min/max plus P² p50/p95/p99 in
/// O(1) memory (common/stats QuantileTracker under a mutex — histogram
/// observation is rarer than counter increments, so a lock is fine).
class Histogram {
 public:
  void observe(double v);
  ConcurrentQuantileTracker::Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  QuantileTracker tracker_;
};

class MetricsRegistry {
 public:
  /// The process-wide registry (leaky singleton, like the recorder).
  static MetricsRegistry& instance();

  /// Get-or-create by name. References are stable for the process life
  /// (values live behind unique_ptr), so callers may cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A consistent point-in-time view, name-sorted so snapshots of the
  /// same state are byte-identical:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  /// Histograms with zero samples report only {"count":0} — no
  /// misleading zero quantiles.
  Json snapshot() const;

  /// Zero every metric (tests). References stay valid.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

/// Render a latency/histogram snapshot as stats-style JSON fields:
/// always "count"; mean/p50/p95/p99 only when count > 0, so an empty
/// distribution never prints misleading zeros. `suffix` is appended to
/// the value keys ("_s" for seconds fields, matching the daemon wire
/// shape).
JsonObject snapshot_to_json(const ConcurrentQuantileTracker::Snapshot& snap,
                            const std::string& suffix = "");

}  // namespace hmpt::obs
