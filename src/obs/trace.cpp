#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/thread_name.h"

namespace hmpt::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// JSON string escaping, matching common/json's writer (RFC 8259, ASCII
/// control escapes only) — the trace file is hand-written here because
/// building a Json tree for hundreds of thousands of events would double
/// the memory the recorder holds at stop time.
void escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

struct Event {
  char ph = 'i';
  std::uint64_t ts_us = 0;
  const char* cat = "";
  std::string name;
  std::string args;  ///< pre-rendered args body; "" = none
};

/// One thread's lane: its own lock (uncontended except against the
/// stop-time drain) and a small integer tid stable for the process life.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  int tid = 0;
  std::string thread_name;  ///< captured at registration
};

void write_event(std::string& out, const Event& e, int pid, int tid) {
  out += "{\"name\":\"";
  escape_into(out, e.name);
  out += "\",\"cat\":\"";
  escape_into(out, e.cat);
  out += "\",\"ph\":\"";
  out += e.ph;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\",\"ts\":%" PRIu64 ",\"pid\":%d,\"tid\":%d",
                e.ts_us, pid, tid);
  out += buf;
  if (e.ph == 'i') out += ",\"s\":\"t\"";
  if (!e.args.empty()) {
    out += ",\"args\":{";
    out += e.args;
    out += '}';
  }
  out += '}';
}

void write_metadata(std::string& out, const char* name,
                    const std::string& value, int pid, int tid) {
  Event e;
  e.ph = 'M';
  e.cat = "__metadata";
  e.name = name;
  e.args = "\"name\":\"";
  escape_into(e.args, value);
  e.args += '"';
  write_event(out, e, pid, tid);
}

}  // namespace

TraceArg TraceArg::number(std::string key, double value) {
  TraceArg arg(std::move(key), format_number(value));
  arg.is_number = true;
  return arg;
}

TraceArg TraceArg::number(std::string key, std::uint64_t value) {
  TraceArg arg(std::move(key), std::to_string(value));
  arg.is_number = true;
  return arg;
}

struct TraceRecorder::Impl {
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::int64_t> origin_ns{0};

  ThreadBuffer& buffer_for_this_thread() {
    thread_local ThreadBuffer* mine = nullptr;
    if (mine == nullptr) {
      std::lock_guard<std::mutex> lock(registry_mutex);
      auto buffer = std::make_unique<ThreadBuffer>();
      buffer->tid = static_cast<int>(buffers.size()) + 1;
      buffer->thread_name = current_thread_name();
      mine = buffer.get();
      buffers.push_back(std::move(buffer));
    }
    return *mine;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::instance() {
  // Leaky: worker threads of long-lived pools may record while other
  // statics destruct, so the recorder must never die.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::uint64_t TraceRecorder::now_us() const {
  const std::int64_t origin = impl_->origin_ns.load(std::memory_order_relaxed);
  const std::int64_t now = Clock::now().time_since_epoch().count();
  const std::int64_t ns = now - origin;
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns) / 1000;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  // Drop any straggler events from a previous session (a racing record
  // may land between a stop's disarm and its drain).
  for (auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  impl_->origin_ns.store(Clock::now().time_since_epoch().count(),
                         std::memory_order_relaxed);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::record(char ph, const char* cat, const std::string& name,
                           std::string args_json) {
  if (!trace_enabled()) return;
  Event e;
  e.ph = ph;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args_json);
  e.ts_us = now_us();
  ThreadBuffer& buffer = impl_->buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(e));
}

std::string TraceRecorder::render_args(
    std::initializer_list<TraceArg> args) {
  std::string out;
  for (const TraceArg& a : args) {
    if (!out.empty()) out += ',';
    out += '"';
    escape_into(out, a.key);
    out += "\":";
    if (a.is_number) {
      out += a.value;
    } else {
      out += '"';
      escape_into(out, a.value);
      out += '"';
    }
  }
  return out;
}

std::string TraceRecorder::stop_and_render() {
  detail::g_trace_enabled.store(false, std::memory_order_release);

  // Drain every lane under its own lock; the registry lock holds the
  // buffer list stable while threads may still be registering.
  struct Lane {
    int tid;
    std::string thread_name;
    std::vector<Event> events;
  };
  std::vector<Lane> lanes;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    lanes.reserve(impl_->buffers.size());
    for (auto& buffer : impl_->buffers) {
      Lane lane;
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      lane.tid = buffer->tid;
      lane.thread_name = buffer->thread_name;
      lane.events = std::move(buffer->events);
      buffer->events.clear();
      lanes.push_back(std::move(lane));
    }
  }

  const int pid = static_cast<int>(::getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const Event& e, int tid) {
    if (!first) out += ",\n";
    first = false;
    write_event(out, e, pid, tid);
  };

  write_metadata(out, "process_name", "hmpt", pid, 0);
  first = false;
  for (const Lane& lane : lanes) {
    if (lane.events.empty()) continue;
    if (!lane.thread_name.empty()) {
      if (!first) out += ",\n";
      first = false;
      write_metadata(out, "thread_name", lane.thread_name, pid, lane.tid);
    }
    // Per-lane events are already in timestamp order (one writer, a
    // monotonic clock). Track the B/E stack so a span still open at stop
    // time (disarmed mid-span: its "E" was dropped) is closed
    // synthetically and the stream stays balanced.
    std::size_t open = 0;
    std::uint64_t last_ts = 0;
    for (const Event& e : lane.events) {
      if (e.ph == 'E' && open == 0) continue;  // orphan close: drop
      if (e.ph == 'B') ++open;
      if (e.ph == 'E') --open;
      last_ts = e.ts_us;
      emit(e, lane.tid);
    }
    for (; open > 0; --open) {
      Event close;
      close.ph = 'E';
      close.cat = "trace";
      close.name = "unclosed";
      close.ts_us = last_ts;
      emit(close, lane.tid);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceRecorder::stop_and_write(const std::string& path) {
  const std::string document = stop_and_render();
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) raise("cannot write trace to " + path);
  os << document;
  os.flush();
  if (!os.good()) raise("short write to trace file " + path);
}

TraceSpan::TraceSpan(const char* cat, std::string name)
    : TraceSpan(cat, std::move(name), {}) {}

TraceSpan::TraceSpan(const char* cat, std::string name,
                     std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  armed_ = true;
  cat_ = cat;
  name_ = std::move(name);
  TraceRecorder::instance().record('B', cat_, name_,
                                   TraceRecorder::render_args(args));
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  // The E carries the args accumulated while the span ran; viewers merge
  // them with the B's. Recorded even if tracing was disarmed mid-span —
  // the renderer balances either way.
  TraceRecorder::instance().record('E', cat_, name_, std::move(args_));
}

void TraceSpan::append(const TraceArg& a) {
  if (!armed_) return;
  std::string rendered = TraceRecorder::render_args({a});
  if (!args_.empty()) args_ += ',';
  args_ += rendered;
}

void TraceSpan::arg(const std::string& key, const std::string& value) {
  if (armed_) append(TraceArg(key, value));
}

void TraceSpan::arg(const std::string& key, const char* value) {
  if (armed_) append(TraceArg(key, value));
}

void TraceSpan::arg_number(const std::string& key, double value) {
  if (armed_) append(TraceArg::number(key, value));
}

void TraceSpan::arg_number(const std::string& key, std::uint64_t value) {
  if (armed_) append(TraceArg::number(key, value));
}

void trace_instant(const char* cat, const std::string& name,
                   std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  TraceRecorder::instance().record('i', cat, name,
                                   TraceRecorder::render_args(args));
}

void trace_counter(const char* cat, const std::string& name, double value) {
  if (!trace_enabled()) return;
  TraceRecorder::instance().record(
      'C', cat, name,
      TraceRecorder::render_args({TraceArg::number(name, value)}));
}

}  // namespace hmpt::obs
