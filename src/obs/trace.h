// trace.h — a lock-cheap, thread-safe Chrome trace-event recorder.
//
// One process-wide recorder collects spans (ph "B"/"E"), instant events
// (ph "i") and counter samples (ph "C") into per-thread buffers and
// renders them as Chrome trace-event JSON — the `{"traceEvents":[...]}`
// format chrome://tracing, Perfetto and speedscope all load directly.
//
// Design constraints, in order:
//   * Inert by default. Tracing is armed explicitly (--trace on the
//     tools); when disarmed, every record call is a single relaxed
//     atomic load and an untaken branch. Nothing the recorder does may
//     change tuner results: traced and untraced runs must produce
//     byte-identical runs.csv/summary.json/outcome stores (asserted by
//     tests and CI), so the trace file lives strictly outside the
//     content-addressed artefact set.
//   * Lock-cheap when armed. Each thread appends to its own buffer; the
//     only shared lock is taken once per thread (registration) and the
//     per-buffer mutex is uncontended except against the stop-time
//     drain.
//   * Timestamps are steady_clock microseconds since arm time, so they
//     are monotonic per thread and comparable across threads.
//
// Usage:
//   TraceRecorder::instance().start();
//   { TraceSpan span("campaign", "scenario");
//     span.arg("fingerprint", fp); ... }      // B at ctor, E at dtor
//   trace_instant("scheduler", "dispatch", {{"fingerprint", fp}});
//   trace_counter("scheduler", "queue_depth", depth);
//   TraceRecorder::instance().stop_and_write("trace.json");
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

namespace hmpt::obs {

namespace detail {
/// The global arm flag; relaxed loads keep the disarmed fast path to one
/// atomic read. Owned by TraceRecorder.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Is tracing armed? Inline so instrumented hot paths pay one relaxed
/// atomic load when tracing is off.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One key/value argument of an event. Values are strings; numeric()
/// builds one that renders as a bare JSON number.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;

  TraceArg(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  TraceArg(std::string k, const char* v) : key(std::move(k)), value(v) {}
  static TraceArg number(std::string key, double value);
  static TraceArg number(std::string key, std::uint64_t value);
};

class TraceRecorder {
 public:
  /// The process-wide recorder (leaky singleton: worker threads may
  /// record during static destruction of other objects).
  static TraceRecorder& instance();

  /// Arm recording: clear any previous session's events and reset the
  /// timestamp origin. Idempotent while armed.
  void start();

  bool enabled() const { return trace_enabled(); }

  /// Disarm and render everything collected as one Chrome trace JSON
  /// document. Unclosed spans get a synthetic "E" at the thread's last
  /// timestamp, so the event stream is always balanced.
  std::string stop_and_render();

  /// stop_and_render() to a file; throws hmpt::Error when unwritable.
  void stop_and_write(const std::string& path);

  /// Record one event into the calling thread's buffer (no-op when
  /// disarmed). `ph` is the Chrome phase letter; args_json is the
  /// pre-rendered body of the "args" object ("" = no args).
  void record(char ph, const char* cat, const std::string& name,
              std::string args_json);

  /// Render an initializer list of args to the JSON body record() takes.
  static std::string render_args(std::initializer_list<TraceArg> args);

  /// Current timestamp in microseconds since the recorder was armed.
  std::uint64_t now_us() const;

 private:
  TraceRecorder();
  struct Impl;
  Impl* impl_;  // leaky (never freed): see instance()
};

/// RAII span: "B" on construction, "E" on destruction, both into the
/// constructing thread's lane. Args added via arg() ride on the "E"
/// event, so a span can record what it learned while running (status,
/// cache hits). All calls are no-ops when tracing is disarmed.
class TraceSpan {
 public:
  TraceSpan(const char* cat, std::string name);
  TraceSpan(const char* cat, std::string name,
            std::initializer_list<TraceArg> args);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is actually recording.
  bool armed() const { return armed_; }

  void arg(const std::string& key, const std::string& value);
  void arg(const std::string& key, const char* value);
  void arg_number(const std::string& key, double value);
  void arg_number(const std::string& key, std::uint64_t value);

 private:
  void append(const TraceArg& a);

  bool armed_ = false;
  const char* cat_ = "";
  std::string name_;
  std::string args_;  ///< accumulated body for the closing "E" event
};

/// A zero-duration event on the calling thread's lane (ph "i", thread
/// scope).
void trace_instant(const char* cat, const std::string& name,
                   std::initializer_list<TraceArg> args = {});

/// A counter sample (ph "C"): Perfetto draws these as a stepped series.
void trace_counter(const char* cat, const std::string& name, double value);

}  // namespace hmpt::obs
