#include "simmem/pool_model.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::sim {

PoolPerfModel::PoolPerfModel(const topo::Machine& machine,
                             MemSystemConfig config)
    : machine_(&machine), config_(config) {
  // Validate exactly the pool kinds the machine exposes: two-tier
  // calibrations leave the CXL slot zeroed, and no query ever reaches a
  // kind the machine does not have.
  for (int k = 0; k < topo::kNumPoolKinds; ++k) {
    if (!machine.has_kind(static_cast<topo::PoolKind>(k))) continue;
    HMPT_REQUIRE(config_.pool[k].sat_bandwidth_per_tile > 0,
                 "pool saturation bandwidth must be positive");
    HMPT_REQUIRE(config_.pool[k].idle_latency > 0,
                 "pool latency must be positive");
  }
}

double PoolPerfModel::idle_latency(topo::PoolKind kind) const {
  return config_.of(kind).idle_latency;
}

double PoolPerfModel::smooth_min(double linear, double saturation) const {
  // p-norm smooth minimum: reproduces the gradual knee of Fig. 2 without a
  // discontinuous slope change.
  const double p = config_.saturation_sharpness;
  const double a = std::pow(linear, -p);
  const double b = std::pow(saturation, -p);
  return std::pow(a + b, -1.0 / p);
}

double PoolPerfModel::per_core_stream_bandwidth(topo::PoolKind kind) const {
  return config_.mlp_stream * kCacheLine / config_.of(kind).idle_latency;
}

double PoolPerfModel::per_core_random_bandwidth(topo::PoolKind kind) const {
  return config_.mlp_random * kCacheLine / config_.of(kind).idle_latency;
}

double PoolPerfModel::stream_bandwidth(topo::PoolKind kind, int threads,
                                       int tiles) const {
  HMPT_REQUIRE(threads >= 1, "stream_bandwidth needs >= 1 thread");
  HMPT_REQUIRE(tiles >= 1 && tiles <= machine_->num_tiles(),
               "tile count out of range");
  const double linear = threads * per_core_stream_bandwidth(kind);
  const double saturation =
      tiles * config_.of(kind).sat_bandwidth_per_tile;
  return smooth_min(linear, saturation);
}

double PoolPerfModel::random_bandwidth(topo::PoolKind kind, int threads,
                                       int tiles) const {
  HMPT_REQUIRE(threads >= 1, "random_bandwidth needs >= 1 thread");
  HMPT_REQUIRE(tiles >= 1 && tiles <= machine_->num_tiles(),
               "tile count out of range");
  const double linear = threads * per_core_random_bandwidth(kind);
  const double saturation =
      tiles * config_.of(kind).rand_bandwidth_per_tile;
  return smooth_min(linear, saturation);
}

double PoolPerfModel::chase_bandwidth(topo::PoolKind kind, int threads,
                                      double effective_latency) const {
  HMPT_REQUIRE(threads >= 1, "chase_bandwidth needs >= 1 thread");
  HMPT_REQUIRE(effective_latency > 0, "latency must be positive");
  // One outstanding line per thread; the paper observes this never
  // saturates either pool up to 48 cores (Sec. I-A).
  return threads * config_.mlp_chase * kCacheLine / effective_latency;
}

double PoolPerfModel::chase_bandwidth(topo::PoolKind kind,
                                      int threads) const {
  return chase_bandwidth(kind, threads, idle_latency(kind));
}

double PoolPerfModel::compute_rate(int threads, bool vectorized) const {
  const double per_core = vectorized ? config_.vector_flops_per_core
                                     : config_.scalar_flops_per_core;
  return threads * per_core * config_.compute_efficiency;
}

}  // namespace hmpt::sim
