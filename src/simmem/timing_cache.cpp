#include "simmem/timing_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace hmpt::sim {

CachedTraceTimer::CachedTraceTimer(const StreamBottleneckSolver& solver,
                                   const PhaseTrace& trace,
                                   ExecutionContext ctx)
    : solver_(&solver), trace_(&trace), ctx_(ctx) {
  phases_.reserve(trace.phases.size());
  for (const auto& phase : trace.phases) {
    PhaseCache cache;
    for (const auto& s : phase.streams) cache.groups.push_back(s.group);
    std::sort(cache.groups.begin(), cache.groups.end());
    cache.groups.erase(
        std::unique(cache.groups.begin(), cache.groups.end()),
        cache.groups.end());

    std::size_t table = 1;
    for (std::size_t i = 0; i < cache.groups.size() && table <= kDenseLimit;
         ++i)
      table *= static_cast<std::size_t>(topo::kNumPoolKinds);
    cache.use_dense = table <= kDenseLimit;
    if (cache.use_dense)
      cache.dense.assign(table, std::numeric_limits<double>::quiet_NaN());
    phases_.push_back(std::move(cache));
  }
}

double CachedTraceTimer::time(const Placement& placement) {
  double total = 0.0;
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    PhaseCache& cache = phases_[p];
    // Key = the placement restricted to the groups this phase touches.
    std::uint64_t key = 0;
    for (const int group : cache.groups)
      key = key * static_cast<std::uint64_t>(topo::kNumPoolKinds) +
            static_cast<std::uint64_t>(placement.of(group));

    double t;
    if (cache.use_dense) {
      double& slot = cache.dense[key];
      if (std::isnan(slot)) {
        slot = solver_->time_phase(trace_->phases[p], placement.fn(), ctx_)
                   .total;
        ++misses_;
      } else {
        ++hits_;
      }
      t = slot;
    } else {
      const auto it = cache.sparse.find(key);
      if (it != cache.sparse.end()) {
        ++hits_;
        t = it->second;
      } else {
        t = solver_->time_phase(trace_->phases[p], placement.fn(), ctx_)
                .total;
        cache.sparse.emplace(key, t);
        ++misses_;
      }
    }
    total += t;
  }
  return total;
}

}  // namespace hmpt::sim
