// solver.h — multi-stream bottleneck timing of kernel phases.
//
// Given a phase's concurrent streams, their placements and a thread count,
// the solver computes the phase's execution time as the maximum over
//   * per-pool transfer time (sequential + random + chase demand share the
//     pool's respective bandwidth curves; writes may be inflated by
//     write-allocate and by the cross-pool write-coupling penalty that
//     reproduces the HBM->DDR ~65 % copy anomaly of Fig. 5a), and
//   * the compute floor flops / compute_rate.
// Phases are serial; a trace's runtime is the sum over phases.
#pragma once

#include <functional>
#include <vector>

#include "simmem/cache.h"
#include "simmem/phase.h"
#include "simmem/pool_model.h"

namespace hmpt::sim {

/// Maps an allocation-group id to the pool it is placed in.
using PlacementFn = std::function<topo::PoolKind(int group)>;

/// Placement stored as a dense vector indexed by group id.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::vector<topo::PoolKind> pools)
      : pools_(std::move(pools)) {}
  /// All groups in a single pool.
  static Placement uniform(int num_groups, topo::PoolKind kind);

  topo::PoolKind of(int group) const;
  void set(int group, topo::PoolKind kind);
  int size() const { return static_cast<int>(pools_.size()); }
  const std::vector<topo::PoolKind>& pools() const { return pools_; }

  PlacementFn fn() const {
    return [this](int group) { return of(group); };
  }

 private:
  std::vector<topo::PoolKind> pools_;
};

/// Per-phase timing breakdown, useful for reports and tests.
struct PhaseTiming {
  double total = 0.0;
  double pool_time[topo::kNumPoolKinds] = {};
  double compute_time = 0.0;
  /// Which component won the max (index into pool kinds, or -1 = compute).
  int bottleneck = -1;
};

/// Execution context: how many threads over how many tiles run the phase.
struct ExecutionContext {
  int threads = 48;
  int tiles = 4;
};

/// The solver: stateless over (machine, calibration, cache hierarchy).
class StreamBottleneckSolver {
 public:
  StreamBottleneckSolver(const PoolPerfModel& model,
                         const CacheHierarchy& cache);

  /// Time one phase under `placement` with `ctx` threads/tiles.
  PhaseTiming time_phase(const KernelPhase& phase, const PlacementFn& placement,
                         const ExecutionContext& ctx) const;

  /// Sum of phase times over a full trace.
  double time_trace(const PhaseTrace& trace, const PlacementFn& placement,
                    const ExecutionContext& ctx) const;
  double time_trace(const PhaseTrace& trace, const Placement& placement,
                    const ExecutionContext& ctx) const;

  /// Phase-level achieved bandwidth (total bytes / phase time); this is the
  /// quantity STREAM reports.
  double phase_bandwidth(const KernelPhase& phase, const PlacementFn& placement,
                         const ExecutionContext& ctx) const;

  const PoolPerfModel& model() const { return *model_; }
  const CacheHierarchy& cache() const { return *cache_; }

 private:
  const PoolPerfModel* model_;
  const CacheHierarchy* cache_;
};

}  // namespace hmpt::sim
