#include "simmem/cache.h"

#include "common/error.h"

namespace hmpt::sim {

CacheHierarchy::CacheHierarchy(std::vector<CacheLevel> levels)
    : levels_(std::move(levels)) {
  HMPT_REQUIRE(!levels_.empty(), "cache hierarchy needs >= 1 level");
  double prev = 0.0;
  for (const auto& level : levels_) {
    HMPT_REQUIRE(level.capacity_bytes > prev,
                 "cache level capacities must be strictly increasing");
    HMPT_REQUIRE(level.latency > 0, "cache latency must be positive");
    prev = level.capacity_bytes;
  }
}

std::vector<double> CacheHierarchy::hit_fractions(double window_bytes) const {
  HMPT_REQUIRE(window_bytes > 0, "window must be positive");
  std::vector<double> fractions(levels_.size(), 0.0);
  double covered = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const double cap = levels_[i].capacity_bytes;
    if (window_bytes <= covered) break;
    const double served =
        std::min(window_bytes, cap) - std::min(window_bytes, covered);
    fractions[i] = served > 0 ? served / window_bytes : 0.0;
    covered = std::max(covered, cap);
  }
  return fractions;
}

double CacheHierarchy::memory_fraction(double window_bytes) const {
  const double llc = last_level_capacity();
  if (window_bytes <= llc) return 0.0;
  return (window_bytes - llc) / window_bytes;
}

double CacheHierarchy::effective_latency(double window_bytes,
                                         double memory_latency) const {
  HMPT_REQUIRE(memory_latency > 0, "memory latency must be positive");
  const auto fractions = hit_fractions(window_bytes);
  double latency = memory_fraction(window_bytes) * memory_latency;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    latency += fractions[i] * levels_[i].latency;
  return latency;
}

double CacheHierarchy::total_capacity() const {
  return last_level_capacity();
}

double CacheHierarchy::last_level_capacity() const {
  return levels_.back().capacity_bytes;
}

CacheHierarchy spr_single_core_hierarchy() {
  return CacheHierarchy({
      {"L1", 48.0 * KiB, 1.9 * ns},
      {"L2", 2.0 * MiB, 10.0 * ns},
      {"L3", 28.125 * MiB, 33.0 * ns},
  });
}

CacheHierarchy spr_socket_hierarchy() {
  return CacheHierarchy({
      {"L1", 48.0 * 48 * KiB, 1.9 * ns},
      {"L2", 48 * 2.0 * MiB, 10.0 * ns},
      {"L3", 112.5 * MiB, 33.0 * ns},
  });
}

}  // namespace hmpt::sim
