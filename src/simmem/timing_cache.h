// timing_cache.h — incremental memoization of per-phase trace timing.
//
// A phase's time depends only on the placement of the allocation groups it
// actually touches: with |AG| groups total but k << |AG| touched per phase,
// a phase has at most kNumPoolKinds^k distinct timings while the sweep
// visits 2^|AG| configurations. CachedTraceTimer memoizes each phase's
// total keyed by its restricted sub-placement, so a Gray-order sweep —
// where adjacent configurations differ in exactly one group — only
// re-times the phases whose group flipped, turning the per-configuration
// cost from O(phases) into O(touched phases).
//
// The memoized values are the exact doubles StreamBottleneckSolver
// produces, and time() sums them in phase order like time_trace does, so
// cached and uncached timings are bit-identical.
//
// One timer serves one (trace, context) pair and is NOT thread-safe; a
// parallel sweep gives each worker its own timer over its contiguous
// Gray-order chunk.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "simmem/phase.h"
#include "simmem/solver.h"

namespace hmpt::sim {

class CachedTraceTimer {
 public:
  /// `trace` is kept by reference and must outlive the timer.
  CachedTraceTimer(const StreamBottleneckSolver& solver,
                   const PhaseTrace& trace, ExecutionContext ctx);

  /// Runtime of the trace under `placement`; bit-identical to
  /// solver.time_trace(trace, placement, ctx).
  double time(const Placement& placement);

  /// Cache effectiveness counters (per-phase lookups).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  /// Dense tables are used while kNumPoolKinds^k stays small; phases
  /// touching more groups fall back to a hash map.
  static constexpr std::size_t kDenseLimit = 4096;

  struct PhaseCache {
    std::vector<int> groups;    ///< sorted distinct groups the phase touches
    std::vector<double> dense;  ///< sub-placement key -> total (NaN = empty)
    std::unordered_map<std::uint64_t, double> sparse;
    bool use_dense = true;
  };

  const StreamBottleneckSolver* solver_;
  const PhaseTrace* trace_;
  ExecutionContext ctx_;
  std::vector<PhaseCache> phases_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hmpt::sim
