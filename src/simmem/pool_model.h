// pool_model.h — per-pool bandwidth/latency curves of the simulated system.
//
// Encodes the three throughput regimes the paper's platform analysis
// distinguishes (Sec. I-A, Figs. 2-4):
//   * streaming: prefetch-driven, per-core ceiling mlp_stream*64/latency,
//     saturating at the pool's achieved bandwidth;
//   * random: demand misses with limited MLP, saturating at a lower plateau;
//   * pointer chase: exactly one outstanding access per thread, latency
//     bound at any core count.
#pragma once

#include "simmem/config.h"
#include "topo/machine.h"

namespace hmpt::sim {

/// Bandwidth/latency oracle over one machine + calibration.
class PoolPerfModel {
 public:
  PoolPerfModel(const topo::Machine& machine, MemSystemConfig config);

  const MemSystemConfig& config() const { return config_; }
  const topo::Machine& machine() const { return *machine_; }

  /// Idle load-to-use latency of `kind` memory (seconds).
  double idle_latency(topo::PoolKind kind) const;

  /// Aggregate achieved streaming bandwidth when `threads` cores (spread
  /// uniformly over `tiles` tiles) access `kind` memory interleaved over
  /// the tile-local nodes. Smooth-min of the linear per-core ramp and the
  /// pool saturation plateau (Fig. 2 shape).
  double stream_bandwidth(topo::PoolKind kind, int threads, int tiles) const;

  /// Aggregate achieved bandwidth for independent random 64 B accesses
  /// (Fig. 4 "random indirect sum" regime).
  double random_bandwidth(topo::PoolKind kind, int threads, int tiles) const;

  /// Aggregate traversal throughput of dependent pointer chases: one
  /// outstanding access per thread, never saturates in practice.
  double chase_bandwidth(topo::PoolKind kind, int threads,
                         double effective_latency) const;
  double chase_bandwidth(topo::PoolKind kind, int threads) const;

  /// Compute throughput of `threads` cores (flops/s).
  double compute_rate(int threads, bool vectorized) const;

  /// Per-core streaming bandwidth ceiling for `kind`.
  double per_core_stream_bandwidth(topo::PoolKind kind) const;
  /// Per-core random-access bandwidth ceiling for `kind`.
  double per_core_random_bandwidth(topo::PoolKind kind) const;

 private:
  double smooth_min(double linear, double saturation) const;

  const topo::Machine* machine_;
  MemSystemConfig config_;
};

}  // namespace hmpt::sim
