#include "simmem/roofline.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace hmpt::sim {

RooflineModel::RooflineModel(std::vector<RooflineCeiling> ceilings)
    : ceilings_(std::move(ceilings)) {
  HMPT_REQUIRE(!ceilings_.empty(), "roofline needs ceilings");
  bool has_bw = false, has_compute = false;
  for (const auto& c : ceilings_) {
    HMPT_REQUIRE(c.value > 0, "ceiling must be positive");
    (c.is_bandwidth ? has_bw : has_compute) = true;
  }
  HMPT_REQUIRE(has_bw && has_compute,
               "roofline needs at least one bandwidth and one compute roof");
}

double RooflineModel::bandwidth_of(const std::string& roof) const {
  for (const auto& c : ceilings_)
    if (c.is_bandwidth && c.name == roof) return c.value;
  raise("unknown bandwidth roof: " + roof);
}

double RooflineModel::peak_compute() const {
  double peak = 0.0;
  for (const auto& c : ceilings_)
    if (!c.is_bandwidth) peak = std::max(peak, c.value);
  return peak;
}

double RooflineModel::attainable(double ai, const std::string& bw_roof) const {
  HMPT_REQUIRE(ai > 0, "arithmetic intensity must be positive");
  return std::min(peak_compute(), ai * bandwidth_of(bw_roof));
}

double RooflineModel::ridge_point(const std::string& bw_roof) const {
  return peak_compute() / bandwidth_of(bw_roof);
}

RooflineModel spr_hbm_roofline() {
  return RooflineModel({
      {"L1", 12902.4 * GB, true},
      {"L2", 6451.2 * GB, true},
      {"HBM", 700.0 * GB, true},
      {"DDR", 200.0 * GB, true},
      {"DP Vector FMA", 3225.6e9, false},
      {"DP Scalar FMA", 403.2e9, false},
  });
}

}  // namespace hmpt::sim
