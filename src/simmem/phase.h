// phase.h — intermediate representation of a workload's memory behaviour.
//
// Every workload (an executable mini-kernel running through the shim, or a
// paper-scale analytical descriptor) lowers to a PhaseTrace: an ordered list
// of kernel phases, each accessing a set of allocation groups with known
// byte volumes and access patterns. The StreamBottleneckSolver turns a
// PhaseTrace plus a placement (group -> pool) into a runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hmpt::sim {

/// Memory access pattern of one stream within a phase.
enum class AccessPattern : std::uint8_t {
  Sequential,    ///< unit-stride/prefetchable (STREAM-like)
  Random,        ///< independent random 64 B accesses (gather, histogram)
  PointerChase,  ///< dependent loads, one outstanding access per thread
};

const char* to_string(AccessPattern pattern);

/// Traffic of one allocation group inside one kernel phase.
struct StreamAccess {
  /// Allocation-group id the traffic goes to (index into the placement).
  int group = -1;
  /// Bytes read from / written to the group during one execution of the
  /// phase (already multiplied by any per-phase iteration counts).
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  AccessPattern pattern = AccessPattern::Sequential;
  /// Writes use non-temporal stores (no read-for-ownership traffic).
  bool nontemporal_writes = true;
  /// Working-set size for latency blending of PointerChase streams; when
  /// zero the chase is assumed cache-resident-free (pure memory latency).
  double working_set_bytes = 0.0;
};

/// One kernel phase: streams execute concurrently; phases run serially.
struct KernelPhase {
  std::string name;
  std::vector<StreamAccess> streams;
  /// Floating-point work of the phase (flops); forms the compute floor.
  double flops = 0.0;
  /// Whether the compute uses vector FMA pipes (roofline ceiling choice).
  bool vectorized = true;
};

/// A full run of the workload.
struct PhaseTrace {
  std::vector<KernelPhase> phases;

  double total_bytes() const;
  double total_bytes_of_group(int group) const;
  double total_flops() const;
  /// Highest group id referenced (+1), i.e. the placement arity required.
  int num_groups() const;
  /// Fraction of all accessed bytes belonging to `group` (the model-side
  /// analogue of the paper's IBS access-density metric).
  double access_fraction(int group) const;

  /// Concatenate another trace after this one.
  void append(const PhaseTrace& other);
  /// Scale all byte/flop volumes (e.g. to adjust iteration counts).
  void scale(double factor);
};

}  // namespace hmpt::sim
