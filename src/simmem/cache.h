// cache.h — on-chip cache hierarchy model for latency-window sweeps.
//
// Reproduces Fig. 3: single-core pointer-chase latency as a function of the
// chase window size, with plateaus at L1/L2/L3 and the DDR/HBM memory
// latencies. The hit-fraction model assumes a uniformly random chase over
// the window with inclusive, LRU-like caches: level i serves the bytes of
// the window that fit in it and were not already served by a faster level.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace hmpt::sim {

/// One cache level's static parameters.
struct CacheLevel {
  std::string name;
  double capacity_bytes = 0.0;
  double latency = 0.0;  // load-to-use, seconds
};

/// Inclusive cache hierarchy shared latency model.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheLevel> levels);

  const std::vector<CacheLevel>& levels() const { return levels_; }

  /// Fraction of random accesses into a `window_bytes`-sized working set
  /// served by level `i` (levels ordered fastest-first); the remainder
  /// goes to memory.
  std::vector<double> hit_fractions(double window_bytes) const;

  /// Expected chase-load latency over the window, blending cache levels
  /// with the given memory latency (Fig. 3 curve generator).
  double effective_latency(double window_bytes, double memory_latency) const;

  /// Fraction of accesses that miss all cache levels.
  double memory_fraction(double window_bytes) const;

  /// Total last-level capacity (used by the tuner's "ignore allocations
  /// smaller than L2/L3" filter, Sec. III-A).
  double total_capacity() const;
  double last_level_capacity() const;

 private:
  std::vector<CacheLevel> levels_;
};

/// Per-core view of the Sapphire Rapids cache hierarchy used for the
/// single-core latency sweep of Fig. 3: 48 kB L1D (~1.9 ns at 2.1 GHz),
/// 2 MB private L2 (~10 ns) and a 28.125 MB SNC4-local L3 slice (~33 ns).
CacheHierarchy spr_single_core_hierarchy();

/// Socket-level hierarchy (aggregated L3) used for allocation filtering.
CacheHierarchy spr_socket_hierarchy();

}  // namespace hmpt::sim
