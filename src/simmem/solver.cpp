#include "simmem/solver.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::sim {

Placement Placement::uniform(int num_groups, topo::PoolKind kind) {
  HMPT_REQUIRE(num_groups >= 0, "negative group count");
  return Placement(std::vector<topo::PoolKind>(
      static_cast<std::size_t>(num_groups), kind));
}

topo::PoolKind Placement::of(int group) const {
  HMPT_REQUIRE(group >= 0 && group < size(), "placement group out of range");
  return pools_[static_cast<std::size_t>(group)];
}

void Placement::set(int group, topo::PoolKind kind) {
  HMPT_REQUIRE(group >= 0 && group < size(), "placement group out of range");
  pools_[static_cast<std::size_t>(group)] = kind;
}

StreamBottleneckSolver::StreamBottleneckSolver(const PoolPerfModel& model,
                                               const CacheHierarchy& cache)
    : model_(&model), cache_(&cache) {}

PhaseTiming StreamBottleneckSolver::time_phase(
    const KernelPhase& phase, const PlacementFn& placement,
    const ExecutionContext& ctx) const {
  HMPT_REQUIRE(ctx.threads >= 1, "phase needs >= 1 thread");
  const MemSystemConfig& cfg = model_->config();

  // Pass 1: which pools does the phase read from? The cross-pool write
  // coupling penalises writes into a pool while reading from a faster one
  // (Fig. 5a's HBM->DDR anomaly).
  bool reads_from[topo::kNumPoolKinds] = {};
  for (const auto& s : phase.streams) {
    if (s.bytes_read > 0.0)
      reads_from[static_cast<int>(placement(s.group))] = true;
  }
  auto write_penalized = [&](topo::PoolKind target) {
    const double target_sat = cfg.of(target).sat_bandwidth_per_tile;
    for (int k = 0; k < topo::kNumPoolKinds; ++k) {
      if (!reads_from[k] || k == static_cast<int>(target)) continue;
      if (cfg.pool[k].sat_bandwidth_per_tile > target_sat) return true;
    }
    return false;
  };

  // Pass 2: accumulate demand per pool and pattern.
  double seq_bytes[topo::kNumPoolKinds] = {};
  double rand_bytes[topo::kNumPoolKinds] = {};
  double chase_time[topo::kNumPoolKinds] = {};

  for (const auto& s : phase.streams) {
    HMPT_REQUIRE(s.bytes_read >= 0.0 && s.bytes_written >= 0.0,
                 "negative stream bytes");
    const topo::PoolKind pool = placement(s.group);
    const int k = static_cast<int>(pool);

    double write_bytes = s.bytes_written;
    if (!s.nontemporal_writes)
      write_bytes += s.bytes_written * cfg.write_allocate_read_factor;
    if (s.bytes_written > 0.0 && write_penalized(pool))
      write_bytes /= cfg.cross_pool_write_penalty;

    switch (s.pattern) {
      case AccessPattern::Sequential:
        seq_bytes[k] += s.bytes_read + write_bytes;
        break;
      case AccessPattern::Random:
        rand_bytes[k] += s.bytes_read + write_bytes;
        break;
      case AccessPattern::PointerChase: {
        const double mem_lat = model_->idle_latency(pool);
        const double eff_lat =
            s.working_set_bytes > 0.0
                ? cache_->effective_latency(s.working_set_bytes, mem_lat)
                : mem_lat;
        const double bw =
            model_->chase_bandwidth(pool, ctx.threads, eff_lat);
        chase_time[k] += (s.bytes_read + write_bytes) / bw;
        break;
      }
    }
  }

  PhaseTiming timing;
  for (int k = 0; k < topo::kNumPoolKinds; ++k) {
    const auto kind = static_cast<topo::PoolKind>(k);
    double t = chase_time[k];
    if (seq_bytes[k] > 0.0)
      t += seq_bytes[k] / model_->stream_bandwidth(kind, ctx.threads, ctx.tiles);
    if (rand_bytes[k] > 0.0)
      t += rand_bytes[k] / model_->random_bandwidth(kind, ctx.threads, ctx.tiles);
    timing.pool_time[k] = t;
  }
  timing.compute_time =
      phase.flops > 0.0
          ? phase.flops / model_->compute_rate(ctx.threads, phase.vectorized)
          : 0.0;

  timing.total = timing.compute_time;
  timing.bottleneck = -1;
  for (int k = 0; k < topo::kNumPoolKinds; ++k) {
    if (timing.pool_time[k] > timing.total) {
      timing.total = timing.pool_time[k];
      timing.bottleneck = k;
    }
  }
  return timing;
}

double StreamBottleneckSolver::time_trace(const PhaseTrace& trace,
                                          const PlacementFn& placement,
                                          const ExecutionContext& ctx) const {
  double total = 0.0;
  for (const auto& phase : trace.phases)
    total += time_phase(phase, placement, ctx).total;
  return total;
}

double StreamBottleneckSolver::time_trace(const PhaseTrace& trace,
                                          const Placement& placement,
                                          const ExecutionContext& ctx) const {
  return time_trace(trace, placement.fn(), ctx);
}

double StreamBottleneckSolver::phase_bandwidth(
    const KernelPhase& phase, const PlacementFn& placement,
    const ExecutionContext& ctx) const {
  double bytes = 0.0;
  for (const auto& s : phase.streams) bytes += s.bytes_read + s.bytes_written;
  const PhaseTiming timing = time_phase(phase, placement, ctx);
  HMPT_REQUIRE(timing.total > 0.0, "phase has zero duration");
  return bytes / timing.total;
}

}  // namespace hmpt::sim
