#include "simmem/config.h"

namespace hmpt::sim {

MemSystemConfig default_spr_hbm_calibration() {
  MemSystemConfig cfg;
  auto& ddr = cfg.of(topo::PoolKind::DDR);
  ddr.sat_bandwidth_per_tile = 50.0 * GB;
  ddr.rand_bandwidth_per_tile = 47.5 * GB;
  ddr.idle_latency = 107.0 * ns;

  auto& hbm = cfg.of(topo::PoolKind::HBM);
  hbm.sat_bandwidth_per_tile = 175.0 * GB;
  hbm.rand_bandwidth_per_tile = 87.5 * GB;
  hbm.idle_latency = 128.0 * ns;  // ~20 % above DDR (Fig. 3)
  return cfg;
}

MemSystemConfig cxl_tiered_calibration() {
  MemSystemConfig cfg = default_spr_hbm_calibration();
  // The solver scales saturation per tile sharing the traffic; a socket-
  // level expander therefore calibrates as socket bandwidth divided by the
  // tiles_per_socket of the SPR presets (4).
  auto& cxl = cfg.of(topo::PoolKind::CXL);
  cxl.sat_bandwidth_per_tile = 6.0 * GB;   // ~24 GB/s per socket
  cxl.rand_bandwidth_per_tile = 3.0 * GB;  // ~12 GB/s per socket
  cxl.idle_latency = 250.0 * ns;           // device + controller hop
  return cfg;
}

MemSystemConfig knl_like_calibration() {
  MemSystemConfig cfg;
  auto& ddr = cfg.of(topo::PoolKind::DDR);
  ddr.sat_bandwidth_per_tile = 22.5 * GB;   // ~90 GB/s per socket
  ddr.rand_bandwidth_per_tile = 20.0 * GB;
  ddr.idle_latency = 125.0 * ns;

  auto& mcdram = cfg.of(topo::PoolKind::HBM);
  mcdram.sat_bandwidth_per_tile = 112.5 * GB;  // ~450 GB/s per socket
  mcdram.rand_bandwidth_per_tile = 55.0 * GB;
  mcdram.idle_latency = 156.0 * ns;  // ~25 % above DDR4

  // KNL's Silvermont-derived cores sustain less memory parallelism than
  // Sapphire Rapids' (but all 64 of them together still saturate MCDRAM).
  cfg.mlp_stream = 20.0;
  cfg.mlp_random = 4.0;
  cfg.vector_flops_per_core = 44.8e9;  // 2 x AVX-512 FMA at 1.4 GHz
  cfg.scalar_flops_per_core = 2.8e9;
  return cfg;
}

}  // namespace hmpt::sim
