#include "simmem/phase.h"

#include <algorithm>

#include "common/error.h"

namespace hmpt::sim {

const char* to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::Sequential:
      return "sequential";
    case AccessPattern::Random:
      return "random";
    case AccessPattern::PointerChase:
      return "chase";
  }
  return "?";
}

double PhaseTrace::total_bytes() const {
  double total = 0.0;
  for (const auto& phase : phases)
    for (const auto& s : phase.streams) total += s.bytes_read + s.bytes_written;
  return total;
}

double PhaseTrace::total_bytes_of_group(int group) const {
  double total = 0.0;
  for (const auto& phase : phases)
    for (const auto& s : phase.streams)
      if (s.group == group) total += s.bytes_read + s.bytes_written;
  return total;
}

double PhaseTrace::total_flops() const {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.flops;
  return total;
}

int PhaseTrace::num_groups() const {
  int max_group = -1;
  for (const auto& phase : phases)
    for (const auto& s : phase.streams) max_group = std::max(max_group, s.group);
  return max_group + 1;
}

double PhaseTrace::access_fraction(int group) const {
  const double total = total_bytes();
  if (total <= 0.0) return 0.0;
  return total_bytes_of_group(group) / total;
}

void PhaseTrace::append(const PhaseTrace& other) {
  phases.insert(phases.end(), other.phases.begin(), other.phases.end());
}

void PhaseTrace::scale(double factor) {
  HMPT_REQUIRE(factor > 0, "trace scale factor must be positive");
  for (auto& phase : phases) {
    phase.flops *= factor;
    for (auto& s : phase.streams) {
      s.bytes_read *= factor;
      s.bytes_written *= factor;
    }
  }
}

}  // namespace hmpt::sim
