// roofline.h — roofline model of the simulated platform (Fig. 8).
//
// Performance ceilings: min(compute peak, AI * bandwidth ceiling), with one
// bandwidth roof per memory level (L1, L2, DDR, HBM) and the paper's DP
// vector/scalar FMA peaks for a single Xeon Max 9468 at 2.1 GHz base clock.
#pragma once

#include <string>
#include <vector>

namespace hmpt::sim {

/// One bandwidth roof (bytes/s) or compute roof (flops/s).
struct RooflineCeiling {
  std::string name;
  double value = 0.0;  // GB/s roofs store bytes/s; flat roofs store flops/s
  bool is_bandwidth = false;
};

/// A measured/estimated application point on the roofline.
struct RooflinePoint {
  std::string name;
  double arithmetic_intensity = 0.0;  // flops per DRAM byte
  double performance = 0.0;           // flops/s
};

class RooflineModel {
 public:
  RooflineModel(std::vector<RooflineCeiling> ceilings);

  const std::vector<RooflineCeiling>& ceilings() const { return ceilings_; }

  /// Attainable performance at arithmetic intensity `ai` when data lives in
  /// the memory level whose bandwidth roof is named `bw_roof`.
  double attainable(double ai, const std::string& bw_roof) const;

  /// The AI at which the `bw_roof` bandwidth roof meets the highest
  /// compute roof (machine balance / ridge point).
  double ridge_point(const std::string& bw_roof) const;

  double bandwidth_of(const std::string& roof) const;
  double peak_compute() const;

 private:
  std::vector<RooflineCeiling> ceilings_;
};

/// Fig. 8 ceilings for one Xeon Max 9468 at 2.1 GHz:
/// L1 12902.4 GB/s, L2 6451.2 GB/s, HBM 700 GB/s, DDR 200 GB/s;
/// DP vector FMA 3225.6 GFLOP/s, DP scalar FMA 403.2 GFLOP/s.
RooflineModel spr_hbm_roofline();

}  // namespace hmpt::sim
