#include "simmem/simulator.h"

#include <cmath>

#include "common/error.h"

namespace hmpt::sim {

MachineSimulator::MachineSimulator(topo::Machine machine,
                                   MemSystemConfig config, NoiseModel noise)
    : machine_(std::move(machine)),
      cache_(spr_single_core_hierarchy()),
      pool_model_(machine_, config),
      solver_(pool_model_, cache_),
      noise_(noise) {}

MachineSimulator MachineSimulator::paper_platform() {
  return MachineSimulator(topo::xeon_max_9468_duo_flat_snc4(),
                          default_spr_hbm_calibration());
}

MachineSimulator MachineSimulator::paper_platform_single() {
  return MachineSimulator(topo::xeon_max_9468_single_flat_snc4(),
                          default_spr_hbm_calibration());
}

MachineSimulator MachineSimulator::cxl_tiered_platform() {
  return MachineSimulator(topo::cxl_tiered_xeon_max(),
                          cxl_tiered_calibration());
}

double MachineSimulator::time_trace(const PhaseTrace& trace,
                                    const Placement& placement,
                                    const ExecutionContext& ctx) const {
  return solver_.time_trace(trace, placement, ctx);
}

double MachineSimulator::measure_trace(const PhaseTrace& trace,
                                       const Placement& placement,
                                       const ExecutionContext& ctx,
                                       MeasurementKey key) const {
  return time_trace(trace, placement, ctx) * noise_factor(key);
}

double MachineSimulator::noise_factor(MeasurementKey key) const {
  if (noise_.relative_sigma <= 0.0) return 1.0;
  // Log-normal multiplicative noise keeps measured times positive and
  // roughly symmetric in relative terms. Each (stream, repetition) key
  // seeds its own counter-based stream, so the factor is independent of
  // measurement order (see the header's determinism guarantee).
  Rng rng(mix_seed(noise_.seed, key.stream, key.repetition));
  const double z = rng.next_gaussian(0.0, noise_.relative_sigma);
  return std::exp(z);
}

double MachineSimulator::phase_bandwidth(const KernelPhase& phase,
                                         const Placement& placement,
                                         const ExecutionContext& ctx) const {
  return solver_.phase_bandwidth(phase, placement.fn(), ctx);
}

double MachineSimulator::chase_latency(double window_bytes,
                                       topo::PoolKind kind) const {
  return cache_.effective_latency(window_bytes,
                                  pool_model_.idle_latency(kind));
}

double MachineSimulator::random_access_bandwidth(topo::PoolKind kind,
                                                 int threads,
                                                 int tiles) const {
  return pool_model_.random_bandwidth(kind, threads, tiles);
}

ExecutionContext MachineSimulator::full_machine() const {
  return {machine_.num_cores(), machine_.num_tiles()};
}

ExecutionContext MachineSimulator::socket_context(int threads_per_tile) const {
  HMPT_REQUIRE(threads_per_tile >= 1 &&
                   threads_per_tile <= machine_.cores_per_tile(),
               "threads per tile out of range");
  const int tiles = machine_.tiles_per_socket();
  return {threads_per_tile * tiles, tiles};
}

}  // namespace hmpt::sim
