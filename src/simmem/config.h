// config.h — calibration constants of the simulated memory system.
//
// The paper measures a dual Intel Xeon Max 9468 (Sapphire Rapids + HBM).
// Since that hardware is not available here, hmpt::sim provides an
// analytical model whose constants are calibrated against the numbers the
// paper reports (Sec. I-A):
//   * HBM: 409.6 GB/s peak per tile, ~700 GB/s achieved per socket,
//     ~20 % higher idle latency than DDR;
//   * DDR: 76.8 GB/s peak per tile, ~200 GB/s achieved per socket;
//   * HBM->DDR copy achieves only ~65 % of the expected bandwidth (Fig. 5a);
//   * pointer-chase parallelism is one outstanding miss per core, while
//     streaming prefetch sustains tens of outstanding lines (Figs. 3-4).
// All downstream figure shapes derive from these mechanisms.
#pragma once

#include "common/units.h"
#include "topo/machine.h"

namespace hmpt::sim {

/// Per-pool-kind calibration of the memory subsystem model.
struct PoolCalibration {
  /// Achieved (not theoretical) saturation bandwidth per tile for streaming
  /// access (bytes/s). Socket-level saturation is tiles_per_socket times
  /// this when traffic is spread over all tile-local nodes.
  double sat_bandwidth_per_tile = 0.0;
  /// Achieved saturation bandwidth per tile for random 64 B-granule access.
  double rand_bandwidth_per_tile = 0.0;
  /// Idle (unloaded) memory latency for a demand load miss (seconds).
  double idle_latency = 0.0;
};

/// Whole memory-system calibration. One PoolCalibration slot exists per
/// PoolKind; only the kinds present on the simulated machine need positive
/// values (PoolPerfModel validates exactly those), so two-tier calibrations
/// simply leave the CXL slot zeroed.
struct MemSystemConfig {
  PoolCalibration pool[topo::kNumPoolKinds];

  /// Outstanding cache lines a single core sustains with hardware
  /// prefetching on streaming access. Sets the per-core bandwidth ceiling
  /// bw_core = mlp_stream * 64 B / latency.
  double mlp_stream = 30.0;
  /// Outstanding demand misses per core on data-dependent random access
  /// (independent random reads, e.g. gather / indirect sum).
  double mlp_random = 8.0;
  /// Pointer chasing has exactly one outstanding access per chain.
  double mlp_chase = 1.0;

  /// Smooth-min exponent blending the linear per-core ramp into the pool
  /// saturation plateau (p-norm; higher = crisper knee, Fig. 2 shape).
  double saturation_sharpness = 8.0;

  /// Cross-pool write-coupling penalty: effective write bandwidth into a
  /// pool is multiplied by this factor when the same phase reads from a
  /// different pool with higher saturated bandwidth. Calibrated so that an
  /// HBM->DDR STREAM copy achieves ~65 % of its expected bandwidth
  /// (Fig. 5a) while DDR->HBM is unpenalized.
  double cross_pool_write_penalty = 0.65;

  /// Cost multiplier for write-allocate (RFO) stores: each written byte
  /// additionally consumes this many read bytes from the target pool.
  /// STREAM-style kernels use non-temporal stores and bypass this.
  double write_allocate_read_factor = 1.0;

  /// Double-precision FMA peak per core at base clock (flops/s) for the
  /// compute-bound floor and the roofline (Fig. 8): 2.1 GHz * 8 lanes *
  /// 2 FMA ports * 2 flops = 67.2 GFLOP/s vectorized, 4.2 * 2 scalar.
  double vector_flops_per_core = 67.2e9;
  double scalar_flops_per_core = 8.4e9;

  /// Fraction of peak flops a real (non-hand-tuned) kernel achieves.
  double compute_efficiency = 0.85;

  const PoolCalibration& of(topo::PoolKind kind) const {
    return pool[static_cast<int>(kind)];
  }
  PoolCalibration& of(topo::PoolKind kind) {
    return pool[static_cast<int>(kind)];
  }
};

/// Calibration for the paper's Sapphire Rapids + HBM platform.
///   DDR: 50 GB/s per tile (200 GB/s per socket) streaming, 107 ns idle;
///   HBM: 175 GB/s per tile (700 GB/s per socket) streaming, 128 ns idle
///   (+20 % vs DDR, Fig. 3); random-access plateaus of ~190 / ~350 GB/s per
///   socket reproduce the Fig. 4 crossover.
MemSystemConfig default_spr_hbm_calibration();

/// Calibration for the KNL-like preset (topo::knl_like_flat_snc4):
/// MCDRAM ~450 GB/s achieved per socket with a ~25 % latency penalty over
/// DDR4 (~90 GB/s) — the published Knights Landing characteristics the
/// related-work tools (ADAMANT, Laghari et al.) tuned against.
MemSystemConfig knl_like_calibration();

/// Calibration for the three-tier preset (topo::cxl_tiered_xeon_max): the
/// SPR + HBM constants above plus a CXL-attached DRAM expander — ~24 GB/s
/// achieved streaming per socket behind a PCIe 5.0 x8-class link, ~12 GB/s
/// random, and ~250 ns idle latency (device + controller hop).
MemSystemConfig cxl_tiered_calibration();

}  // namespace hmpt::sim
