// simulator.h — convenience front-end bundling machine, calibration, cache
// hierarchy, pool model and solver into a single timing oracle.
//
// This is the "platform" the rest of hmpt runs against: the ExperimentRunner
// asks it for workload runtimes under a placement; the platform-analysis
// benches (Figs. 2-5) ask it for STREAM bandwidths, chase latencies and
// random-access throughput; optional measurement noise emulates run-to-run
// variance of a real machine so the n-repetition averaging in the tuner is
// exercised meaningfully.
//
// k-tier memory model: a Placement assigns every allocation group one
// memory tier — a topo::PoolKind, whose enum value is the tier index (0 =
// DDR baseline, 1 = HBM, 2 = CXL-class expansion memory). Each tier has
// its own bandwidth/latency calibration (PoolCalibration in config.h); the
// solver times every pool the phase touches and takes the bottleneck, so
// adding a tier never changes the timing of placements that do not use it.
// Two-tier machines are a strict special case of the k-tier model: a
// DDR/HBM machine produces bit-identical times, noise streams, chosen
// placements and report bytes to the original two-pool implementation
// (tests/tier_equivalence_test.cpp locks this down).
//
// Determinism guarantee: the simulator is fully const after construction —
// no shared RNG, no mutable state — so every timing query is thread-safe.
// Measurement noise is drawn from counter-based streams keyed by
// MeasurementKey{stream, repetition}: the noisy time of a given
// (configuration-id, repetition) pair is a pure function of the noise seed
// and that key, independent of how many other measurements ran before it,
// from which thread, or in which order. The configuration id is the
// mixed-radix code of the placement (digit g, base num_tiers, = group g's
// tier), which for two tiers is exactly the legacy placement bitmask — so
// two-tier noise streams are unchanged. A parallel sweep, a serial sweep,
// and a cheaper strategy (estimator, online) that touch the same keys
// therefore observe bit-identical measured times.
#pragma once

#include <optional>

#include "common/rng.h"
#include "simmem/cache.h"
#include "simmem/config.h"
#include "simmem/phase.h"
#include "simmem/pool_model.h"
#include "simmem/roofline.h"
#include "simmem/solver.h"
#include "topo/machine.h"

namespace hmpt::sim {

/// Multiplicative log-normal-ish measurement noise applied per run.
struct NoiseModel {
  double relative_sigma = 0.0;  ///< 0 disables noise
  std::uint64_t seed = 42;
};

/// Identity of one simulated measurement, used to seed its noise stream.
/// `stream` names the configuration being measured (the tuner passes the
/// placement ConfigMask); `repetition` counts repeated runs of the same
/// configuration (the runner's n repetitions, or the online tuner's
/// revisits of a mask).
struct MeasurementKey {
  std::uint64_t stream = 0;
  std::uint64_t repetition = 0;
};

class MachineSimulator {
 public:
  /// Builds the simulator for `machine` with `config` calibration; the
  /// cache hierarchy defaults to the SPR single-core one (Fig. 3).
  MachineSimulator(topo::Machine machine, MemSystemConfig config,
                   NoiseModel noise = {});

  static MachineSimulator paper_platform();         // dual socket
  static MachineSimulator paper_platform_single();  // one socket (Figs. 2-5)
  /// Three-tier platform: the single-socket paper machine plus a CXL
  /// memory-expander node (topo::cxl_tiered_xeon_max with
  /// cxl_tiered_calibration). The tuner enumerates 3^n placements on it.
  static MachineSimulator cxl_tiered_platform();

  const topo::Machine& machine() const { return machine_; }
  const PoolPerfModel& pool_model() const { return pool_model_; }
  const CacheHierarchy& cache() const { return cache_; }
  const StreamBottleneckSolver& solver() const { return solver_; }
  const MemSystemConfig& config() const { return pool_model_.config(); }

  /// Deterministic (noise-free) runtime of a trace under a placement.
  double time_trace(const PhaseTrace& trace, const Placement& placement,
                    const ExecutionContext& ctx) const;

  /// One "measured" run: deterministic time perturbed by the noise model.
  /// The perturbation is drawn from the counter-based stream named by
  /// `key` (see the determinism guarantee above), so repeated repetitions
  /// of one configuration pass increasing `key.repetition` values.
  double measure_trace(const PhaseTrace& trace, const Placement& placement,
                       const ExecutionContext& ctx,
                       MeasurementKey key) const;

  /// Multiplicative noise factor of the measurement named by `key`
  /// (1.0 when noise is disabled). measure_trace == time_trace * this;
  /// exposed so callers that already know the deterministic time (e.g. a
  /// memoized sweep) can apply repetition noise without re-timing.
  double noise_factor(MeasurementKey key) const;

  /// Achieved STREAM-style bandwidth of a single phase (Figs. 2, 5).
  double phase_bandwidth(const KernelPhase& phase, const Placement& placement,
                         const ExecutionContext& ctx) const;

  /// Single-core pointer-chase latency for a working-set window (Fig. 3).
  double chase_latency(double window_bytes, topo::PoolKind kind) const;

  /// Aggregate random-access throughput (Fig. 4 numerator/denominator).
  double random_access_bandwidth(topo::PoolKind kind, int threads,
                                 int tiles) const;

  /// Default execution context: all cores of the machine.
  ExecutionContext full_machine() const;
  /// Context restricted to one socket with `threads_per_tile` threads/tile.
  ExecutionContext socket_context(int threads_per_tile) const;

 private:
  topo::Machine machine_;
  CacheHierarchy cache_;
  PoolPerfModel pool_model_;
  StreamBottleneckSolver solver_;
  NoiseModel noise_;
};

}  // namespace hmpt::sim
