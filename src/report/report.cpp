#include "report/report.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "campaign/aggregate.h"
#include "campaign/outcome_store.h"
#include "common/chart.h"
#include "common/error.h"
#include "common/table.h"
#include "common/units.h"
#include "core/outcome_io.h"
#include "core/report.h"

namespace hmpt::report {

namespace fs = std::filesystem;
using campaign::CampaignResult;
using campaign::Scenario;
using campaign::ScenarioRun;

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// The content address captured when the scenario ran (recomputed only
/// for hand-built results), matching the aggregation layer.
std::string fingerprint_of(const ScenarioRun& run) {
  return run.fingerprint.empty() ? run.scenario.fingerprint()
                                 : run.fingerprint;
}

std::string budget_text(const Scenario& s) {
  std::string out = cell(s.budget_gb, 1);
  for (const auto& [tier, gb] : s.tier_budgets_gb) {
    out.append(";").append(std::to_string(tier));
    out.append(":").append(cell(gb, 1));
  }
  return out;
}

/// Top-scenarios speedup bars (at most `limit` rows so a fleet-scale
/// campaign keeps a readable chart; the table below holds everything).
std::string speedup_bar_svg(const std::vector<const ScenarioRun*>& ranked,
                            std::size_t limit) {
  std::vector<BarItem> items;
  for (std::size_t i = 0; i < ranked.size() && i < limit; ++i)
    items.push_back(BarItem{ranked[i]->scenario.label(),
                            ranked[i]->outcome.speedup, std::nullopt});
  return render_bar_chart_svg(items, "Top scenarios by tuned speedup");
}

/// Speedup vs chosen-config HBM usage, one series per strategy — the
/// report twin of the paper's summary-view scatters.
std::string summary_scatter_svg(
    const std::vector<const ScenarioRun*>& ranked) {
  std::map<std::string, ChartSeries> by_strategy;
  for (const ScenarioRun* run : ranked) {
    ChartSeries& series = by_strategy[run->scenario.strategy];
    series.name = run->scenario.strategy;
    series.x.push_back(run->outcome.hbm_usage * 100.0);
    series.y.push_back(run->outcome.speedup);
  }
  std::vector<ChartSeries> series;
  for (auto& [name, s] : by_strategy) series.push_back(std::move(s));
  ChartOptions options;
  options.title = "Speedup vs chosen-config HBM usage";
  options.x_label = "HBM usage of the chosen placement (%)";
  options.y_label = "speedup";
  options.x_min = 0.0;
  options.hlines = {1.0};
  return render_xy_chart_svg(series, options);
}

void append_kv_row(std::ostringstream& os, const std::string& key,
                   const std::string& value) {
  os << "<tr><th>" << html_escape(key) << "</th><td>" << html_escape(value)
     << "</td></tr>\n";
}

/// Span colour by terminal status, matching the palette the rest of the
/// report uses; unknown statuses fall back to the per-lane palette.
std::string status_color(const std::string& status) {
  if (status == "executed") return "#059669";
  if (status == "cached") return "#2563eb";
  if (status == "failed") return "#dc2626";
  if (status == "planned") return "#9ca3af";
  return "";
}

/// The per-job timeline section: one Gantt strip of scenario spans per
/// recording lane, coloured by how each scenario ended.
std::string timeline_section(const TraceTimeline& timeline) {
  std::vector<TimelineItem> items;
  items.reserve(timeline.spans.size());
  for (const auto& span : timeline.spans) {
    TimelineItem item;
    item.label = span.label.empty() ? span.fingerprint : span.label;
    if (!span.status.empty()) item.label += " [" + span.status + "]";
    item.lane = span.lane;
    item.start = span.start_ms;
    item.end = span.end_ms;
    item.color = status_color(span.status);
    items.push_back(std::move(item));
  }
  std::ostringstream os;
  os << "<h2>Per-job timeline</h2>\n"
     << "<p class=\"meta\">Scenario execution windows from the run's "
        "trace, one row per worker lane; green executed, blue cached, "
        "red failed. Hover a bar for the scenario.</p>\n"
     << "<div class=\"charts\">\n"
     << render_timeline_svg(items, "Scenario spans by worker lane", "ms")
     << "</div>\n";
  return os.str();
}

// Styling and behaviour are embedded so the document is one file. The
// script is plain DOM-API JavaScript: column sort on header click
// (numeric when both cells parse, lexicographic otherwise) and
// auto-opening the drill-down <details> a #fp-… link points at.
constexpr const char* kStyle = R"css(
body { font-family: sans-serif; margin: 2em auto; max-width: 72em;
       padding: 0 1em; color: #0f172a; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; }
.meta { color: #475569; }
table.sortable, table.failures { border-collapse: collapse; width: 100%;
       font-size: 0.9em; }
table.sortable th, table.failures th { cursor: pointer; text-align: left;
       border-bottom: 2px solid #94a3b8; padding: 0.3em 0.6em;
       white-space: nowrap; }
table.failures th { cursor: default; }
table.sortable td, table.failures td { border-bottom: 1px solid #e2e8f0;
       padding: 0.25em 0.6em; }
table.kv th { text-align: left; padding-right: 1em; color: #475569;
       font-weight: normal; }
details { margin: 0.4em 0; }
details > summary { cursor: pointer; }
details[open] { background: #f8fafc; padding: 0.4em;
       border: 1px solid #e2e8f0; border-radius: 4px; }
pre { background: #f1f5f9; padding: 0.6em; overflow-x: auto;
      font-size: 0.85em; }
code { font-family: monospace; }
.charts svg { max-width: 100%; height: auto; margin: 0.5em 0; }
)css";

constexpr const char* kScript = R"js(
document.querySelectorAll("table.sortable").forEach(function (table) {
  var headers = table.tHead.rows[0].cells;
  for (var i = 0; i < headers.length; i++) (function (idx, th) {
    th.addEventListener("click", function () {
      var body = table.tBodies[0];
      var rows = Array.prototype.slice.call(body.rows);
      var dir = th.dataset.dir === "asc" ? -1 : 1;
      for (var j = 0; j < headers.length; j++) delete headers[j].dataset.dir;
      th.dataset.dir = dir === 1 ? "asc" : "desc";
      rows.sort(function (a, b) {
        var x = a.cells[idx].textContent.trim();
        var y = b.cells[idx].textContent.trim();
        var nx = parseFloat(x), ny = parseFloat(y);
        if (!isNaN(nx) && !isNaN(ny)) return dir * (nx - ny);
        return dir * x.localeCompare(y);
      });
      rows.forEach(function (row) { body.appendChild(row); });
    });
  })(i, headers[i]);
});
function openTarget() {
  if (!location.hash) return;
  var target = document.getElementById(location.hash.slice(1));
  if (target && target.tagName === "DETAILS") target.open = true;
}
window.addEventListener("hashchange", openTarget);
openTarget();
)js";

}  // namespace

TraceTimeline load_trace_timeline(const std::string& trace_path) {
  std::ifstream is(trace_path, std::ios::binary);
  if (!is.good()) raise("cannot read trace file " + trace_path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const Json doc = Json::parse(buffer.str());

  // Thread-name metadata first, so spans can carry human lane names.
  std::map<double, std::string> lane_names;  // tid -> name
  const JsonArray& events = doc.at("traceEvents").as_array();
  for (const Json& event : events) {
    if (event.string_or("ph", "") != "M") continue;
    if (event.string_or("name", "") != "thread_name") continue;
    if (const Json* args = event.as_object().find("args"))
      lane_names[event.number_or("tid", 0.0)] =
          args->string_or("name", "");
  }

  // One open-B stack per lane: per-lane events are contiguous and
  // timestamp-ordered in the recorder's output, so matching E events by
  // stack discipline recovers exactly the spans that ran.
  struct Open {
    double ts_us = 0.0;
  };
  std::map<double, std::vector<Open>> open_by_tid;
  TraceTimeline timeline;
  for (const Json& event : events) {
    const std::string ph = event.string_or("ph", "");
    if (event.string_or("cat", "") != "campaign" ||
        event.string_or("name", "") != "scenario")
      continue;
    const double tid = event.number_or("tid", 0.0);
    if (ph == "B") {
      open_by_tid[tid].push_back({event.number_or("ts", 0.0)});
    } else if (ph == "E") {
      auto& stack = open_by_tid[tid];
      if (stack.empty()) continue;  // orphan close: ignore
      TimelineSpan span;
      span.start_ms = stack.back().ts_us / 1000.0;
      span.end_ms = event.number_or("ts", 0.0) / 1000.0;
      stack.pop_back();
      if (const Json* args = event.as_object().find("args")) {
        span.label = args->string_or("label", "");
        span.fingerprint = args->string_or("fingerprint", "");
        span.status = args->string_or("status", "");
      }
      const auto named = lane_names.find(tid);
      span.lane = (named != lane_names.end() && !named->second.empty())
                      ? named->second
                      : "tid " + std::to_string(static_cast<int>(tid));
      timeline.spans.push_back(std::move(span));
    }
  }
  return timeline;
}

CampaignResult load_store_result(const std::string& store_dir) {
  const auto format = campaign::detect_store_format(store_dir);
  if (!format)
    raise("no outcome store at " + store_dir +
          " (expected outcomes/ or outcomes.log)");
  const campaign::OutcomeStore store(store_dir, *format);

  CampaignResult result;
  for (const auto& [fingerprint, bytes] : store.load_all_payloads()) {
    ScenarioRun run;
    try {
      const Json doc = Json::parse(bytes);
      run.scenario = Scenario::from_json(doc.at("scenario"));
      run.outcome = tuner::outcome_from_json(doc.at("outcome"));
    } catch (const std::exception& e) {
      raise("corrupt outcome record " + fingerprint + " in " + store_dir +
            ": " + e.what());
    }
    run.fingerprint = fingerprint;
    run.status = ScenarioRun::Status::Cached;
    ++result.cached;
    result.runs.push_back(std::move(run));
  }
  return result;
}

std::string render_report_html(const CampaignResult& result,
                               const std::string& title,
                               const TraceTimeline* timeline) {
  const std::vector<const ScenarioRun*> ranked = campaign::ranked_runs(result);
  std::vector<std::string> fingerprints;
  for (const auto& run : result.runs)
    fingerprints.push_back(fingerprint_of(run));
  const std::string campaign_fp = campaign::campaign_fingerprint(fingerprints);
  const std::string heading = title.empty() ? "hmpt campaign report" : title;

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">\n"
     << "<title>" << html_escape(heading) << "</title>\n"
     << "<style>" << kStyle << "</style>\n</head>\n<body>\n";

  // ------------------------------------------------------------ headline
  os << "<h1>" << html_escape(heading) << "</h1>\n";
  os << "<p class=\"meta\">campaign <code>" << html_escape(campaign_fp)
     << "</code> &middot; " << result.runs.size() << " scenario"
     << (result.runs.size() == 1 ? "" : "s") << " &middot; "
     << ranked.size() << " with outcome &middot; " << result.failed
     << " failed";
  if (!ranked.empty())
    os << " &middot; best speedup " << cell(ranked[0]->outcome.speedup, 2)
       << "x (<code>" << html_escape(fingerprint_of(*ranked[0]))
       << "</code>)";
  os << "</p>\n";

  // -------------------------------------------------------------- charts
  if (!ranked.empty()) {
    os << "<div class=\"charts\">\n"
       << speedup_bar_svg(ranked, 12) << "\n"
       << summary_scatter_svg(ranked) << "</div>\n";
  }

  // ------------------------------------------------------------ timeline
  // Only when the caller ran with --trace and the trace recorded spans;
  // reports without a trace render the exact pre-timeline document.
  if (timeline != nullptr && !timeline->spans.empty())
    os << timeline_section(*timeline);

  // -------------------------------------------------- ranked (sortable)
  os << "<h2>Ranked scenarios</h2>\n"
     << "<p class=\"meta\">Click a column header to sort; the fingerprint "
        "links to the scenario drill-down.</p>\n"
     << "<table class=\"sortable\">\n<thead><tr>"
     << "<th>rank</th><th>scenario</th><th>workload</th><th>platform</th>"
     << "<th>strategy</th><th>tiers</th><th>budget_gb</th><th>speedup</th>"
     << "<th>chosen config</th><th>HBM usage</th><th>configs</th>"
     << "<th>fingerprint</th></tr></thead>\n<tbody>\n";
  int rank = 0;
  for (const ScenarioRun* run : ranked) {
    const auto& s = run->scenario;
    const auto& o = run->outcome;
    const std::string fp = fingerprint_of(*run);
    os << "<tr><td>" << ++rank << "</td><td>" << html_escape(s.label())
       << "</td><td>" << html_escape(s.workload.to_string()) << "</td><td>"
       << html_escape(s.platform) << "</td><td>" << html_escape(s.strategy)
       << "</td><td>" << s.tiers << "</td><td>"
       << html_escape(budget_text(s)) << "</td><td>" << cell(o.speedup, 2)
       << "x</td><td><code>"
       << html_escape(
              tuner::mask_label(o.chosen_mask, o.num_groups, o.num_tiers))
       << "</code></td><td>" << html_escape(format_percent(o.hbm_usage))
       << "</td><td>" << o.configs_measured << "</td><td><a href=\"#fp-"
       << html_escape(fp) << "\"><code>" << html_escape(fp)
       << "</code></a></td></tr>\n";
  }
  os << "</tbody>\n</table>\n";

  // ------------------------------------------------------------ failures
  if (result.failed > 0) {
    os << "<h2>Failures</h2>\n<table class=\"failures\">\n"
       << "<thead><tr><th>scenario</th><th>fingerprint</th><th>error</th>"
       << "</tr></thead>\n<tbody>\n";
    for (const auto& run : result.runs) {
      if (run.status != ScenarioRun::Status::Failed) continue;
      os << "<tr><td>" << html_escape(run.scenario.label())
         << "</td><td><code>" << html_escape(fingerprint_of(run))
         << "</code></td><td>" << html_escape(run.error) << "</td></tr>\n";
    }
    os << "</tbody>\n</table>\n";
  }

  // ----------------------------------------------------------- drill-down
  os << "<h2>Scenario drill-down</h2>\n";
  for (const ScenarioRun* run : ranked) {
    const auto& s = run->scenario;
    const auto& o = run->outcome;
    const std::string fp = fingerprint_of(*run);
    os << "<details id=\"fp-" << html_escape(fp) << "\"><summary><code>"
       << html_escape(fp) << "</code> &mdash; " << html_escape(s.label())
       << " &mdash; " << cell(o.speedup, 2) << "x</summary>\n"
       << "<table class=\"kv\">\n";
    append_kv_row(os, "workload", s.workload.to_string());
    append_kv_row(os, "platform", s.platform);
    append_kv_row(os, "strategy", s.strategy);
    append_kv_row(os, "tiers", std::to_string(o.num_tiers));
    append_kv_row(os, "budget_gb", budget_text(s));
    append_kv_row(os, "repetitions", std::to_string(s.repetitions));
    append_kv_row(os, "chosen config",
                  tuner::mask_label(o.chosen_mask, o.num_groups,
                                    o.num_tiers));
    append_kv_row(os, "baseline time (s)", cell(o.baseline_time, 6));
    append_kv_row(os, "chosen time (s)", cell(o.chosen_time, 6));
    append_kv_row(os, "speedup", cell(o.speedup, 4));
    append_kv_row(os, "HBM usage", format_percent(o.hbm_usage));
    append_kv_row(os, "configs measured",
                  std::to_string(o.configs_measured));
    append_kv_row(os, "measurements", std::to_string(o.measurements));
    os << "</table>\n<pre>" << html_escape(s.to_json().dump())
       << "</pre>\n</details>\n";
  }

  os << "<script>" << kScript << "</script>\n</body>\n</html>\n";
  return os.str();
}

std::string write_report(const CampaignResult& result,
                         const std::string& output_dir,
                         const std::string& title,
                         const TraceTimeline* timeline) {
  const fs::path dir = fs::path(output_dir) / "report";
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    raise("cannot create report dir " + dir.string() + ": " + ec.message());
  const std::string path = (dir / "index.html").string();
  const std::string html = render_report_html(result, title, timeline);
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) raise("cannot write " + path);
  os << html;
  os.flush();
  if (!os.good()) raise("short write to " + path);
  return path;
}

}  // namespace hmpt::report
