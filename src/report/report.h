// report.h — static HTML campaign reports.
//
// Renders a finished CampaignResult into one self-contained
// `report/index.html`: no external assets, stylesheets, fonts or script
// files — the document works from a file:// URL, an artifact download,
// or an air-gapped machine. It holds
//   * the campaign headline (fingerprint, scenario/failure counts, best
//     speedup),
//   * inline-SVG charts built from the common/chart series types (a
//     top-scenarios speedup bar chart and a speedup-vs-HBM-usage scatter
//     with one series per strategy),
//   * the ranked scenario table (best speedup first, the same ordering
//     as the terminal ranking), sortable by any column with a few lines
//     of vanilla JS,
//   * a per-scenario drill-down keyed by fingerprint (each table row
//     links to `#fp-<fingerprint>`) with the outcome numbers and the
//     full scenario document,
//   * a failure table when the campaign recorded failures.
//
// Like runs.csv/summary.json the report is derived deterministically
// from the outcomes alone — identical bytes whether the campaign ran
// cold, resumed, or was merged from shards.
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace hmpt::report {

/// One scenario's execution window, lifted from a Chrome trace-event
/// file (obs/trace.h): the "campaign"/"scenario" span, with the label,
/// fingerprint and terminal status its closing event carries.
struct TimelineSpan {
  std::string label;        ///< scenario label (workload/platform/...)
  std::string fingerprint;
  std::string status;       ///< "executed"/"cached"/"failed"/"planned"/""
  std::string lane;         ///< recording thread's name, or "tid N"
  double start_ms = 0.0;    ///< since trace arm time
  double end_ms = 0.0;
};

/// Per-scenario spans recovered from one trace file, in lane order then
/// start order (the order the trace stores them).
struct TraceTimeline {
  std::vector<TimelineSpan> spans;
};

/// Parse a --trace output file and extract the per-scenario timeline.
/// Unbalanced or foreign events are ignored; an unreadable or malformed
/// file throws hmpt::Error. An armed-but-idle trace yields no spans.
TraceTimeline load_trace_timeline(const std::string& trace_path);

/// Reconstruct a campaign result from an outcome store directory alone
/// (dir or packed format, auto-detected): every stored record carries its
/// full scenario, so no manifest or campaign file is needed. Runs come
/// back fingerprint-ordered with status Cached; failures are not
/// represented (a store only holds successes). Throws hmpt::Error when
/// the directory holds no outcome store.
campaign::CampaignResult load_store_result(const std::string& store_dir);

/// Render the full report document. `title` is the page heading; empty
/// picks a default. A non-null `timeline` adds a per-job timeline
/// section (span bars per worker lane); null renders the exact document
/// earlier revisions produced, so untraced reports stay byte-stable.
std::string render_report_html(const campaign::CampaignResult& result,
                               const std::string& title = "",
                               const TraceTimeline* timeline = nullptr);

/// Write `<output_dir>/report/index.html` (directories created as
/// needed); returns the path written.
std::string write_report(const campaign::CampaignResult& result,
                         const std::string& output_dir,
                         const std::string& title = "",
                         const TraceTimeline* timeline = nullptr);

}  // namespace hmpt::report
