#include "core/summary.h"

#include "common/error.h"

namespace hmpt::tuner {

SummaryAnalysis summarize(const SweepResult& sweep, double fraction) {
  HMPT_REQUIRE(!sweep.configs.empty(), "empty sweep");
  HMPT_REQUIRE(fraction > 0.0 && fraction <= 1.0, "bad threshold fraction");

  SummaryAnalysis out;
  out.num_groups = sweep.num_groups;
  out.num_tiers = sweep.num_tiers;
  const LinearEstimator estimator(sweep);

  for (const auto& cfg : sweep.configs) {
    SummaryPoint p;
    p.mask = cfg.mask;
    p.hbm_usage = cfg.hbm_usage;
    p.speedup = cfg.speedup;
    p.estimate = estimator.estimate(cfg.mask);
    p.single_group = cfg.groups_in_hbm == 1;
    out.points.push_back(p);

    if (cfg.speedup > out.max_speedup) {
      out.max_speedup = cfg.speedup;
      out.max_mask = cfg.mask;
      out.max_usage = cfg.hbm_usage;
    }
  }
  out.hbm_only_speedup = sweep.all_hbm().speedup;
  out.threshold90 = 1.0 + fraction * (out.max_speedup - 1.0);

  // Smallest HBM footprint reaching the threshold; speedup breaks ties.
  bool found = false;
  for (const auto& cfg : sweep.configs) {
    if (cfg.speedup + 1e-12 < out.threshold90) continue;
    if (!found || cfg.hbm_usage < out.usage90 ||
        (cfg.hbm_usage == out.usage90 &&
         cfg.speedup > out.usage90_speedup)) {
      found = true;
      out.usage90_mask = cfg.mask;
      out.usage90 = cfg.hbm_usage;
      out.usage90_speedup = cfg.speedup;
    }
  }
  HMPT_REQUIRE(found, "no configuration reaches the threshold");
  return out;
}

}  // namespace hmpt::tuner
