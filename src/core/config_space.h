// config_space.h — enumeration of the placement configuration space.
//
// A configuration assigns every allocation group one memory tier of the
// machine (tier index = topo::PoolKind value; tier 0 = DDR baseline).
// With k tiers and n groups there are k^n configurations; the paper's
// platform has k = 2, where a configuration degenerates to the subset of
// groups placed in HBM — 2^|AG| configurations (Sec. III-A).
//
// Configurations are indexed by a ConfigMask: the mixed-radix code of the
// placement with digit g (base k) equal to group g's tier. For k = 2 this
// is bit-for-bit the original HBM bitmask (bit g set = group g in HBM), so
// two-tier enumeration orders, noise-stream keys and reports are unchanged
// by the k-tier generalisation. This module enumerates configuration ids
// (natural and k-ary reflected Gray order), converts them to Placements,
// and computes per-configuration footprint statistics per tier.
#pragma once

#include <cstdint>
#include <vector>

#include "simmem/solver.h"

namespace hmpt::tuner {

/// Configuration id: mixed-radix code over groups, digit g (base
/// num_tiers) = tier of group g. For two tiers: bit g set = group g in HBM.
using ConfigMask = std::uint64_t;

/// Place value of group `group`'s digit in the mixed-radix id: num_tiers^g.
constexpr ConfigMask config_place_value(int group, int num_tiers) {
  ConfigMask place = 1;
  for (int g = 0; g < group; ++g)
    place *= static_cast<ConfigMask>(num_tiers);
  return place;
}

/// Number of configurations of an n-group, k-tier space: k^n.
constexpr std::size_t config_count(int num_groups, int num_tiers) {
  return static_cast<std::size_t>(config_place_value(num_groups, num_tiers));
}

/// Id of the uniform placement with every group in `tier`.
constexpr ConfigMask config_uniform_id(int num_groups, int tier,
                                       int num_tiers) {
  ConfigMask id = 0;
  for (int g = 0; g < num_groups; ++g)
    id += static_cast<ConfigMask>(tier) * config_place_value(g, num_tiers);
  return id;
}

class ConfigSpace {
 public:
  /// `group_bytes[i]` is group i's footprint (for per-tier usage
  /// fractions); `num_tiers` the machine's memory tier count (>= 2).
  explicit ConfigSpace(std::vector<double> group_bytes, int num_tiers = 2);

  int num_groups() const { return static_cast<int>(bytes_.size()); }
  int num_tiers() const { return num_tiers_; }
  std::size_t size() const { return size_; }

  /// All configuration ids in natural order (0 = all-DDR first, baseline).
  std::vector<ConfigMask> all_masks() const;
  /// All ids in k-ary reflected Gray order: consecutive configurations
  /// move exactly one group by exactly one tier, minimising replacement
  /// work between measurements. For two tiers this is the binary reflected
  /// Gray code i ^ (i >> 1) of the original sweep.
  std::vector<ConfigMask> gray_masks() const;
  /// Ids with exactly `k` groups placed outside DDR.
  std::vector<ConfigMask> masks_of_rank(int k) const;

  sim::Placement placement(ConfigMask mask) const;
  /// Inverse of placement(): the mixed-radix id of a placement.
  ConfigMask config_id(const sim::Placement& placement) const;
  /// Tier of group `g` under `mask` (the mixed-radix digit).
  topo::PoolKind tier_of(ConfigMask mask, int group) const;

  /// Bytes placed in `tier` under `mask`, and the footprint fraction.
  double tier_bytes(ConfigMask mask, topo::PoolKind tier) const;
  double tier_usage(ConfigMask mask, topo::PoolKind tier) const;
  /// Fraction of total footprint in HBM under `mask` (tier 1).
  double hbm_usage(ConfigMask mask) const;
  /// Bytes in HBM under `mask`.
  double hbm_bytes(ConfigMask mask) const;
  /// Number of groups placed outside the DDR baseline tier (for two tiers:
  /// the popcount of the HBM bitmask).
  int popcount(ConfigMask mask) const;

  const std::vector<double>& group_bytes() const { return bytes_; }
  double total_bytes() const { return total_; }

  static constexpr int kMaxGroups = 20;  ///< 2^20 configs upper guard
  /// Enumeration guard over k^n (equals 2^kMaxGroups, so two-tier spaces
  /// keep their original limit).
  static constexpr std::size_t kMaxConfigs = std::size_t{1} << kMaxGroups;

 private:
  std::vector<double> bytes_;
  int num_tiers_ = 2;
  std::size_t size_ = 0;
  double total_ = 0.0;
};

}  // namespace hmpt::tuner
