// config_space.h — enumeration of the placement configuration space.
//
// With two pools, a configuration is a subset of allocation groups placed
// in HBM (the rest stays in DDR): 2^|AG| configurations (Sec. III-A). The
// paper measures all of them n times each; this module enumerates masks,
// converts them to Placements, and computes per-configuration footprint
// statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "simmem/solver.h"

namespace hmpt::tuner {

/// Bitmask over groups: bit i set = group i in HBM.
using ConfigMask = std::uint32_t;

class ConfigSpace {
 public:
  /// `group_bytes[i]` is group i's footprint (for HBM-usage fractions).
  explicit ConfigSpace(std::vector<double> group_bytes);

  int num_groups() const { return static_cast<int>(bytes_.size()); }
  std::size_t size() const { return std::size_t{1} << num_groups(); }

  /// All masks in natural order (0 = all-DDR first, baseline).
  std::vector<ConfigMask> all_masks() const;
  /// All masks in Gray-code order: consecutive configurations differ by a
  /// single group move, minimising replacement work between measurements.
  std::vector<ConfigMask> gray_masks() const;
  /// Masks with exactly `k` groups in HBM.
  std::vector<ConfigMask> masks_of_rank(int k) const;

  sim::Placement placement(ConfigMask mask) const;
  /// Fraction of total footprint in HBM under `mask`.
  double hbm_usage(ConfigMask mask) const;
  /// Bytes in HBM under `mask`.
  double hbm_bytes(ConfigMask mask) const;
  int popcount(ConfigMask mask) const;

  const std::vector<double>& group_bytes() const { return bytes_; }
  double total_bytes() const { return total_; }

  static constexpr int kMaxGroups = 20;  ///< 2^20 configs upper guard

 private:
  std::vector<double> bytes_;
  double total_ = 0.0;
};

}  // namespace hmpt::tuner
