#include "core/config_space.h"

#include "common/error.h"

namespace hmpt::tuner {

ConfigSpace::ConfigSpace(std::vector<double> group_bytes, int num_tiers)
    : bytes_(std::move(group_bytes)), num_tiers_(num_tiers) {
  HMPT_REQUIRE(!bytes_.empty(), "config space needs >= 1 group");
  HMPT_REQUIRE(static_cast<int>(bytes_.size()) <= kMaxGroups,
               "too many groups to enumerate exhaustively");
  HMPT_REQUIRE(num_tiers_ >= 2 && num_tiers_ <= topo::kNumPoolKinds,
               "config space needs 2 <= num_tiers <= kNumPoolKinds");
  size_ = 1;
  for (std::size_t g = 0; g < bytes_.size(); ++g) {
    size_ *= static_cast<std::size_t>(num_tiers_);
    HMPT_REQUIRE(size_ <= kMaxConfigs,
                 "too many configurations to enumerate exhaustively");
  }
  for (double b : bytes_) {
    HMPT_REQUIRE(b >= 0.0, "negative group bytes");
    total_ += b;
  }
  HMPT_REQUIRE(total_ > 0.0, "config space with zero total footprint");
}

std::vector<ConfigMask> ConfigSpace::all_masks() const {
  std::vector<ConfigMask> masks(size());
  for (std::size_t i = 0; i < masks.size(); ++i)
    masks[i] = static_cast<ConfigMask>(i);
  return masks;
}

std::vector<ConfigMask> ConfigSpace::gray_masks() const {
  // k-ary reflected Gray enumeration (boustrophedon digits): each step
  // moves the lowest digit that can advance in its current direction and
  // reverses the direction of every digit below it. For k = 2 this
  // produces exactly the binary reflected Gray code i ^ (i >> 1).
  const int n = num_groups();
  const ConfigMask k = static_cast<ConfigMask>(num_tiers_);
  std::vector<ConfigMask> masks;
  masks.reserve(size());

  std::vector<ConfigMask> digits(static_cast<std::size_t>(n), 0);
  std::vector<int> dirs(static_cast<std::size_t>(n), 1);
  // Digit g's place value k^g: id updates are incremental, one digit move
  // per step.
  std::vector<ConfigMask> place(static_cast<std::size_t>(n), 1);
  for (int g = 1; g < n; ++g)
    place[static_cast<std::size_t>(g)] =
        place[static_cast<std::size_t>(g - 1)] * k;

  ConfigMask id = 0;
  masks.push_back(id);
  while (true) {
    int g = 0;
    while (g < n) {
      const auto gi = static_cast<std::size_t>(g);
      const ConfigMask next = digits[gi] + static_cast<ConfigMask>(dirs[gi]);
      if (next < k) break;  // unsigned wrap catches the -1 underflow too
      dirs[gi] = -dirs[gi];
      ++g;
    }
    if (g == n) break;  // every digit exhausted: k^n ids emitted
    const auto gi = static_cast<std::size_t>(g);
    if (dirs[gi] > 0) {
      ++digits[gi];
      id += place[gi];
    } else {
      --digits[gi];
      id -= place[gi];
    }
    masks.push_back(id);
  }
  return masks;
}

std::vector<ConfigMask> ConfigSpace::masks_of_rank(int k) const {
  HMPT_REQUIRE(k >= 0 && k <= num_groups(), "rank out of range");
  std::vector<ConfigMask> masks;
  for (std::size_t i = 0; i < size(); ++i) {
    if (popcount(static_cast<ConfigMask>(i)) == k)
      masks.push_back(static_cast<ConfigMask>(i));
  }
  return masks;
}

sim::Placement ConfigSpace::placement(ConfigMask mask) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  std::vector<topo::PoolKind> pools(bytes_.size(), topo::PoolKind::DDR);
  const auto k = static_cast<ConfigMask>(num_tiers_);
  for (int g = 0; g < num_groups(); ++g) {
    pools[static_cast<std::size_t>(g)] =
        static_cast<topo::PoolKind>(mask % k);
    mask /= k;
  }
  return sim::Placement(std::move(pools));
}

ConfigMask ConfigSpace::config_id(const sim::Placement& placement) const {
  HMPT_REQUIRE(placement.size() == num_groups(),
               "placement arity does not match the config space");
  const auto k = static_cast<ConfigMask>(num_tiers_);
  ConfigMask id = 0;
  for (int g = num_groups() - 1; g >= 0; --g) {
    const auto tier = static_cast<ConfigMask>(placement.of(g));
    HMPT_REQUIRE(tier < k, "placement uses a tier beyond the config space");
    id = id * k + tier;
  }
  return id;
}

topo::PoolKind ConfigSpace::tier_of(ConfigMask mask, int group) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  HMPT_REQUIRE(group >= 0 && group < num_groups(), "group out of range");
  const auto k = static_cast<ConfigMask>(num_tiers_);
  for (int g = 0; g < group; ++g) mask /= k;
  return static_cast<topo::PoolKind>(mask % k);
}

double ConfigSpace::tier_bytes(ConfigMask mask, topo::PoolKind tier) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  const auto k = static_cast<ConfigMask>(num_tiers_);
  double bytes = 0.0;
  for (int g = 0; g < num_groups(); ++g) {
    if (static_cast<topo::PoolKind>(mask % k) == tier)
      bytes += bytes_[static_cast<std::size_t>(g)];
    mask /= k;
  }
  return bytes;
}

double ConfigSpace::tier_usage(ConfigMask mask, topo::PoolKind tier) const {
  return tier_bytes(mask, tier) / total_;
}

double ConfigSpace::hbm_usage(ConfigMask mask) const {
  return hbm_bytes(mask) / total_;
}

double ConfigSpace::hbm_bytes(ConfigMask mask) const {
  return tier_bytes(mask, topo::PoolKind::HBM);
}

int ConfigSpace::popcount(ConfigMask mask) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  const auto k = static_cast<ConfigMask>(num_tiers_);
  int count = 0;
  while (mask != 0) {
    count += (mask % k) != 0;
    mask /= k;
  }
  return count;
}

}  // namespace hmpt::tuner
