#include "core/config_space.h"

#include <bit>

#include "common/error.h"

namespace hmpt::tuner {

ConfigSpace::ConfigSpace(std::vector<double> group_bytes)
    : bytes_(std::move(group_bytes)) {
  HMPT_REQUIRE(!bytes_.empty(), "config space needs >= 1 group");
  HMPT_REQUIRE(static_cast<int>(bytes_.size()) <= kMaxGroups,
               "too many groups to enumerate exhaustively");
  for (double b : bytes_) {
    HMPT_REQUIRE(b >= 0.0, "negative group bytes");
    total_ += b;
  }
  HMPT_REQUIRE(total_ > 0.0, "config space with zero total footprint");
}

std::vector<ConfigMask> ConfigSpace::all_masks() const {
  std::vector<ConfigMask> masks(size());
  for (std::size_t i = 0; i < masks.size(); ++i)
    masks[i] = static_cast<ConfigMask>(i);
  return masks;
}

std::vector<ConfigMask> ConfigSpace::gray_masks() const {
  std::vector<ConfigMask> masks(size());
  for (std::size_t i = 0; i < masks.size(); ++i)
    masks[i] = static_cast<ConfigMask>(i ^ (i >> 1));
  return masks;
}

std::vector<ConfigMask> ConfigSpace::masks_of_rank(int k) const {
  HMPT_REQUIRE(k >= 0 && k <= num_groups(), "rank out of range");
  std::vector<ConfigMask> masks;
  for (std::size_t i = 0; i < size(); ++i) {
    if (std::popcount(i) == static_cast<unsigned>(k))
      masks.push_back(static_cast<ConfigMask>(i));
  }
  return masks;
}

sim::Placement ConfigSpace::placement(ConfigMask mask) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  std::vector<topo::PoolKind> pools(bytes_.size(), topo::PoolKind::DDR);
  for (int g = 0; g < num_groups(); ++g)
    if (mask & (ConfigMask{1} << g))
      pools[static_cast<std::size_t>(g)] = topo::PoolKind::HBM;
  return sim::Placement(std::move(pools));
}

double ConfigSpace::hbm_usage(ConfigMask mask) const {
  return hbm_bytes(mask) / total_;
}

double ConfigSpace::hbm_bytes(ConfigMask mask) const {
  HMPT_REQUIRE(mask < size(), "mask out of range");
  double bytes = 0.0;
  for (int g = 0; g < num_groups(); ++g)
    if (mask & (ConfigMask{1} << g))
      bytes += bytes_[static_cast<std::size_t>(g)];
  return bytes;
}

int ConfigSpace::popcount(ConfigMask mask) const {
  return std::popcount(mask);
}

}  // namespace hmpt::tuner
