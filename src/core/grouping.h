// grouping.h — allocation filtering and grouping (Sec. III-A).
//
// The tool captures a subset of allocations (aliased by call site), filters
// out the insignificant ones (smaller than the L2/L3 cache they would fit
// in), and folds the remainder into at most k groups: the top k-1 ranked by
// individual impact plus one "rest" group. Custom groupings (e.g. k-Wave's
// per-vector-field groups) are expressed by explicit label sets.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sample/sampler.h"
#include "shim/registry.h"

namespace hmpt::tuner {

/// One tunable allocation group after filtering/folding.
struct AllocationGroup {
  std::string label;
  std::vector<int> sites;       ///< call sites folded into this group
  double bytes = 0.0;           ///< peak live bytes of the group
  double access_density = 0.0;  ///< fraction of attributed samples
};

enum class GroupRanking {
  ByDensity,  ///< IBS access density (the paper's practical proxy)
  ByBytes,    ///< footprint
};

struct GroupingOptions {
  /// Allocations below this size are folded into the rest group; the paper
  /// uses "smaller than L2 or L3" — pass the cache capacity of interest.
  double min_bytes = 0.0;
  /// Maximum number of groups including the rest group (paper: 8).
  int max_groups = 8;
  GroupRanking ranking = GroupRanking::ByDensity;
};

/// Per-site access densities: attributes the sampler's per-allocation tags
/// back to call sites through the registry's records.
std::vector<double> site_densities(const shim::AllocationRegistry& registry,
                                   const shim::CallSiteRegistry& sites,
                                   const sample::SampleReport& report);

/// Build groups from per-site usage + densities. Result is ordered by rank
/// (hottest first); a final "rest" group folds everything else (it is
/// omitted when empty).
std::vector<AllocationGroup> build_groups(
    const std::vector<shim::SiteUsage>& usage,
    const std::vector<double>& densities, const GroupingOptions& options);

/// Explicit grouping: fold sites whose labels share a prefix up to "::"
/// followed by the given field names (k-Wave style); unmatched labels fold
/// into the rest group.
std::vector<AllocationGroup> build_groups_by_labels(
    const std::vector<shim::SiteUsage>& usage,
    const std::vector<double>& densities,
    const std::vector<std::vector<std::string>>& label_sets);

}  // namespace hmpt::tuner
