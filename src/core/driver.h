// driver.h — the paper's "driver script" as a library object (Fig. 6).
//
// Ties the whole workflow together: take a workload (analytic model or a
// recorded profiling run), tune its placement, summarise, choose a plan
// under the HBM capacity budget, and materialise a shim PlacementPlan for
// the next run. One call replaces the paper's external orchestration.
//
// Layering (Fig. 6, after the strategy redesign): the search itself lives
// behind the TuningStrategy registry (strategy.h) and is driven through
// the Session facade (session.h) — Driver::analyze runs the "exhaustive"
// strategy and layers the paper's full reporting (summary views, linear-
// estimator error, capacity plans) on top of its complete sweep. Callers
// that only need a placement, or a cheaper search ("online", "estimator"),
// use a Session directly; the Driver remains the report-producing path.
#pragma once

#include <optional>
#include <string>

#include "core/config_space.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "core/grouping.h"
#include "core/planner.h"
#include "core/report.h"
#include "core/strategy.h"
#include "core/summary.h"
#include "simmem/simulator.h"
#include "workloads/recorded.h"
#include "workloads/workload.h"

namespace hmpt::tuner {

struct DriverOptions {
  ExperimentOptions experiment;        ///< repetitions, enumeration order
  double threshold_fraction = 0.9;     ///< the paper's 90 % criterion
  /// HBM capacity budget for the recommended plan; <= 0 means "the
  /// machine's full HBM capacity".
  double hbm_budget_bytes = 0.0;
  /// Per-tier capacity caps for the recommended plan (indexed by tier;
  /// tier 1 overrides hbm_budget_bytes when positive), see TuningBudget.
  std::vector<double> tier_budget_bytes;
  /// Memory tiers to search (0 = the machine's native tier count).
  int tiers = 0;
};

/// Everything one analysis produces.
struct AnalysisReport {
  std::string workload_name;
  ConfigSpace space;
  /// The unified strategy-layer result the analysis is built from.
  TuningOutcome outcome;
  SweepResult sweep;
  SummaryAnalysis summary;
  EstimatorError estimator_error;
  PlanChoice recommended;       ///< best under the HBM budget
  PlanChoice minimal90;         ///< cheapest config at >= 90 % of max
  DetailedView detailed;
  SummaryView summary_view;

  /// Full human-readable report (tables + charts + recommendation).
  std::string to_text() const;
};

class Driver {
 public:
  Driver(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
         DriverOptions options = {});

  /// Analyse any workload (analytic app model or recorded run).
  AnalysisReport analyze(const workloads::Workload& workload) const;

  /// Build a RecordedWorkload from a finished profiling run: groups from
  /// the shim registry (filter + top-k fold using the sampling report) and
  /// the trace recorded by the mini kernel. `alloc_order_labels` gives the
  /// trace's group-id ordering (allocation order).
  workloads::RecordedWorkload record(
      const shim::ShimAllocator& shim, const sample::SampleReport& samples,
      sim::PhaseTrace trace,
      const std::vector<std::string>& alloc_order_labels,
      const GroupingOptions& grouping, const std::string& name) const;

  /// Materialise the recommended placement of a report as a shim plan.
  shim::PlacementPlan plan_for(
      const AnalysisReport& report,
      const std::vector<AllocationGroup>& groups) const;
  shim::PlacementPlan plan_for(const AnalysisReport& report,
                               const std::vector<AllocationGroup>& groups,
                               const shim::CallSiteRegistry& sites) const;

  const DriverOptions& options() const { return options_; }

 private:
  double effective_budget() const;
  /// Per-tier caps for the recommended plan (see DriverOptions).
  std::vector<double> effective_caps(int num_tiers) const;

  sim::MachineSimulator* sim_;
  sim::ExecutionContext ctx_;
  DriverOptions options_;
};

}  // namespace hmpt::tuner
