// planner.h — placement planning under an HBM capacity budget.
//
// The practical use of the tool's analysis (Sec. V): given the sweep (or
// just the linear estimator for spaces too large to measure), choose which
// groups go to HBM so performance is maximised within the pool's limited
// capacity (16 GB per tile on the paper's platform), or find the cheapest
// placement achieving a target speedup. Produces a shim PlacementPlan that
// the next application run applies.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/grouping.h"
#include "core/summary.h"
#include "shim/plan.h"

namespace hmpt::tuner {

struct PlanChoice {
  ConfigMask mask = 0;
  double speedup = 0.0;       ///< measured (sweep) or estimated
  double hbm_bytes = 0.0;
  double hbm_usage = 0.0;
  bool from_measurement = true;
};

class CapacityPlanner {
 public:
  /// Plan from exhaustive measurements.
  CapacityPlanner(const SweepResult& sweep, const ConfigSpace& space);

  /// Best configuration whose HBM footprint fits `budget_bytes` (other
  /// non-DDR tiers, if any, stay unconstrained).
  PlanChoice best_under_budget(double budget_bytes) const;

  /// Best configuration fitting every per-tier cap (`caps` indexed by tier;
  /// tier 0 ignored, caps beyond the vector unconstrained).
  PlanChoice best_under_caps(const std::vector<double>& caps) const;

  /// Cheapest (by HBM bytes) configuration with speedup >= target.
  std::optional<PlanChoice> cheapest_reaching(double target_speedup) const;

  /// The whole Pareto front over (hbm_bytes, speedup): ascending bytes,
  /// strictly increasing speedup.
  std::vector<PlanChoice> pareto_front() const;

 private:
  const SweepResult* sweep_;
  const ConfigSpace* space_;
};

/// 0/1-knapsack planning on the *estimator* for group counts too large to
/// sweep exhaustively: value = s({g}) - 1, weight = group bytes. Exact DP
/// with byte resolution `granularity`.
PlanChoice knapsack_plan(const LinearEstimator& estimator,
                         const std::vector<double>& group_bytes,
                         double budget_bytes,
                         double granularity = 64.0 * 1024 * 1024);

/// Materialise a placement as a shim plan: every group's call-site label
/// is pinned to its tier's pool kind (DDR stays on the default). Group
/// labels must be the named call sites the workload allocates with.
shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups,
    const sim::Placement& placement);

/// Same, but pins every member call site by its stack hash through the
/// registry — required when groups fold multiple sites (the rest group).
shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups,
    const sim::Placement& placement, const shim::CallSiteRegistry& sites);

/// Two-tier convenience: `mask` is the HBM bitmask over the groups.
shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups, ConfigMask mask);
shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups, ConfigMask mask,
    const shim::CallSiteRegistry& sites);

}  // namespace hmpt::tuner
