// strategy.h — the pluggable tuning-strategy API.
//
// A TuningStrategy is one search method over the placement configuration
// space: it decides which configurations to measure on the simulated
// platform and which placement to recommend, under a common budget and with
// a common progress/outcome contract. The built-in strategies cover the
// three search regimes of the paper and its outlook:
//
//   "exhaustive"  measure all k^n configurations (Sec. III-A sweep; k = 2
//                 on the paper's two-tier platform),
//   "online"      greedy iterative extension with confirmation runs,
//   "estimator"   fit the linear estimator from the n single-group runs
//                 and measure only the top-k predicted placements —
//                 O(n + k) measurements instead of O(2^n).
//
// Strategies are looked up by name in a string-keyed registry so new
// methods (sharded sweeps, batched search, model-based tuners) plug in
// without another parallel entry point; the Session facade (session.h) is
// the intended front door.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_space.h"
#include "core/experiment.h"
#include "simmem/simulator.h"
#include "workloads/workload.h"

namespace hmpt::tuner {

/// Resource limits common to all strategies.
struct TuningBudget {
  /// HBM capacity the chosen placement must fit; <= 0 means "the machine's
  /// full HBM capacity".
  double hbm_budget_bytes = 0.0;
  /// Per-tier capacity caps indexed by tier (PoolKind value); tier 0 (DDR)
  /// is never constrained. An entry <= 0 — or a tier beyond the vector —
  /// falls back to the machine's capacity of that kind; a positive tier-1
  /// entry takes precedence over the legacy `hbm_budget_bytes`.
  std::vector<double> tier_budget_bytes;
  int repetitions = 3;  ///< simulator runs averaged per configuration
  /// Enumerate exhaustive sweeps in Gray order (single-group deltas).
  bool gray_order = true;
  /// "estimator": number of top predicted configurations to measure.
  int top_k = 3;
  /// Cap on measured runs for iterative strategies; 0 = strategy default.
  int max_measurements = 0;
  /// "online": rejected full passes tolerated before stopping — lower it
  /// on noisy platforms for fewer confirmation runs, raise it for more.
  int patience = 3;
  /// Worker threads for the measurement campaign (exhaustive sweeps and
  /// the estimator's probe batches); 1 = serial, 0 = all hardware threads.
  /// Outcomes are bit-identical at any job count.
  int jobs = 1;
};

/// One progress tick: a configuration finished measuring.
struct TuningProgress {
  std::string strategy;
  int configs_measured = 0;   ///< distinct configurations so far
  ConfigMask mask = 0;        ///< configuration just measured
  double observed_time = 0.0;
  double best_speedup = 1.0;  ///< incumbent so far
};

struct TuningCallbacks {
  std::function<void(const TuningProgress&)> on_progress;  ///< may be empty
};

/// One entry of the search trajectory.
struct TuningStep {
  int index = 0;          ///< 1-based measurement order
  ConfigMask mask = 0;    ///< configuration tried
  double observed_time = 0.0;
  double speedup = 0.0;   ///< vs. the all-DDR baseline
  bool accepted = false;  ///< became (or stayed part of) the incumbent
};

/// Unified result of any strategy: the chosen placement, how the search got
/// there, and the per-configuration table of everything it measured.
struct TuningOutcome {
  std::string strategy;
  std::string workload;
  int num_groups = 0;
  int num_tiers = 2;  ///< tier count of the searched placement space

  ConfigMask chosen_mask = 0;
  /// The chosen placement as a per-group tier vector (decodes chosen_mask).
  sim::Placement chosen_placement;
  double chosen_time = 0.0;
  double baseline_time = 0.0;
  double speedup = 1.0;
  double hbm_bytes = 0.0;  ///< footprint of the chosen placement in HBM
  double hbm_usage = 0.0;

  int configs_measured = 0;  ///< distinct configurations measured
  int measurements = 0;      ///< simulator runs incl. repetitions

  std::vector<TuningStep> trajectory;
  /// Distinct configurations measured, sorted by mask. Strategies that
  /// sweep the whole space store it once in `sweep` instead of duplicating
  /// it here — read through configs(), which serves whichever is present.
  std::vector<ConfigResult> table;
  /// The full sweep, present when the strategy measured the whole space.
  std::optional<SweepResult> sweep;

  /// The per-configuration results, wherever they live.
  const std::vector<ConfigResult>& configs() const {
    return sweep.has_value() ? sweep->configs : table;
  }

  /// Human-readable report: chosen placement, trajectory, config table.
  std::string to_text() const;
};

/// Per-tier capacity caps every strategy (and the Driver's planner)
/// enforces, resolved from a budget: tier 0 (DDR) is never constrained; a
/// non-DDR tier takes its positive tier_budget_bytes entry, falling back
/// to the legacy hbm_budget_bytes for tier 1 and then to the machine's
/// capacity of the tier's pool kind ("<= 0 means the machine's full
/// capacity", as before).
std::vector<double> resolved_caps(const sim::MachineSimulator& sim,
                                  const TuningBudget& budget, int num_tiers);

class TuningStrategy {
 public:
  virtual ~TuningStrategy() = default;

  virtual std::string name() const = 0;
  virtual TuningOutcome tune(sim::MachineSimulator& sim,
                             sim::ExecutionContext ctx,
                             const workloads::Workload& workload,
                             const ConfigSpace& space,
                             const TuningBudget& budget,
                             const TuningCallbacks& callbacks) const = 0;
};

/// String-keyed strategy registry. The built-in strategies are registered
/// on first access; libraries add their own with add().
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TuningStrategy>()>;

  static StrategyRegistry& instance();

  /// Register a factory; throws hmpt::Error on a duplicate name.
  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  /// Instantiate; throws hmpt::Error naming the known strategies when
  /// `name` is not registered.
  std::unique_ptr<TuningStrategy> create(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  StrategyRegistry();
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Convenience: StrategyRegistry::instance().create(name).
std::unique_ptr<TuningStrategy> make_strategy(const std::string& name);

// ------------------------------------------------------ built-in strategies

/// Measures every configuration (wraps ExperimentRunner::sweep); chooses
/// the best measured placement that fits the HBM budget.
class ExhaustiveStrategy : public TuningStrategy {
 public:
  std::string name() const override { return "exhaustive"; }
  TuningOutcome tune(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
                     const workloads::Workload& workload,
                     const ConfigSpace& space, const TuningBudget& budget,
                     const TuningCallbacks& callbacks) const override;
};

/// Greedy iterative extension with confirmation runs (wraps OnlineTuner).
class OnlineGreedyStrategy : public TuningStrategy {
 public:
  std::string name() const override { return "online"; }
  TuningOutcome tune(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
                     const workloads::Workload& workload,
                     const ConfigSpace& space, const TuningBudget& budget,
                     const TuningCallbacks& callbacks) const override;
};

/// Fits the LinearEstimator from the baseline + n single-group runs, then
/// measures only the top-k predicted configurations that fit the budget:
/// 1 + n + k configurations instead of 2^n.
class EstimatorGuidedStrategy : public TuningStrategy {
 public:
  std::string name() const override { return "estimator"; }
  TuningOutcome tune(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
                     const workloads::Workload& workload,
                     const ConfigSpace& space, const TuningBudget& budget,
                     const TuningCallbacks& callbacks) const override;
};

}  // namespace hmpt::tuner
