#include "core/driver.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/units.h"
#include "core/session.h"

namespace hmpt::tuner {

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << "=== analysis: " << workload_name << " ===\n\n";
  os << "configurations measured: " << sweep.configs.size() << " ("
     << space.num_groups() << " groups)\n";
  os << "strategy: " << outcome.strategy << " (" << outcome.measurements
     << " simulator runs)\n";
  os << "all-DDR baseline: " << format_time(sweep.baseline_time) << "\n\n";
  os << "detailed view:\n" << detailed.table.to_text() << '\n'
     << detailed.bar_chart << '\n';
  os << "summary view:\n" << summary_view.scatter << '\n';
  os << "maximum speedup: " << cell(summary.max_speedup, 2) << "x at "
     << format_percent(summary.max_usage) << " HBM usage ("
     << mask_label(summary.max_mask, space.num_groups(), space.num_tiers())
     << ")\n";
  os << "HBM-only speedup: " << cell(summary.hbm_only_speedup, 2) << "x\n";
  os << "90 % of max (" << cell(summary.threshold90, 2) << "x) at "
     << format_percent(summary.usage90) << " HBM usage ("
     << mask_label(summary.usage90_mask, space.num_groups(),
                   space.num_tiers())
     << ")\n";
  os << "linear-estimator error: max " << cell(estimator_error.max_abs, 3)
     << ", rmse " << cell(estimator_error.rmse, 3) << "\n\n";
  os << "recommended placement (budget "
     << format_bytes(recommended.hbm_bytes) << " HBM): "
     << mask_label(recommended.mask, space.num_groups(),
                   space.num_tiers())
     << " at " << cell(recommended.speedup, 2) << "x\n";
  os << "minimal 90 %-speedup placement: "
     << mask_label(minimal90.mask, space.num_groups(), space.num_tiers())
     << " using " << format_bytes(minimal90.hbm_bytes) << " of HBM\n";
  return os.str();
}

Driver::Driver(sim::MachineSimulator& sim, sim::ExecutionContext ctx,
               DriverOptions options)
    : sim_(&sim), ctx_(ctx), options_(options) {
  HMPT_REQUIRE(options_.threshold_fraction > 0.0 &&
                   options_.threshold_fraction <= 1.0,
               "threshold fraction out of range");
}

double Driver::effective_budget() const {
  if (options_.hbm_budget_bytes > 0.0) return options_.hbm_budget_bytes;
  return sim_->machine().capacity_of_kind(topo::PoolKind::HBM);
}

std::vector<double> Driver::effective_caps(int num_tiers) const {
  // One resolution policy for the whole stack: the planner prunes with
  // exactly the caps the strategy layer enforced.
  TuningBudget budget;
  budget.hbm_budget_bytes = options_.hbm_budget_bytes;
  budget.tier_budget_bytes = options_.tier_budget_bytes;
  return resolved_caps(*sim_, budget, num_tiers);
}

AnalysisReport Driver::analyze(const workloads::Workload& workload) const {
  std::vector<double> bytes;
  for (const auto& g : workload.groups()) bytes.push_back(g.bytes);
  const int machine_tiers = sim_->machine().num_memory_tiers();
  const int tiers = options_.tiers == 0 ? machine_tiers : options_.tiers;
  HMPT_REQUIRE(tiers <= machine_tiers,
               "driver requests more tiers than the machine has");
  ConfigSpace space(std::move(bytes), tiers);

  // The measurement campaign runs behind the strategy API; the full report
  // needs the complete space, so the driver always runs "exhaustive".
  Session session = Session::on(*sim_)
                        .workload(workload)
                        .context(ctx_)
                        .strategy("exhaustive")
                        .tiers(tiers)
                        .repetitions(options_.experiment.repetitions)
                        .gray_order(options_.experiment.gray_order)
                        .jobs(options_.experiment.jobs)
                        .budget_bytes(
                            std::max(options_.hbm_budget_bytes, 0.0));
  for (std::size_t t = 1; t < options_.tier_budget_bytes.size(); ++t)
    if (options_.tier_budget_bytes[t] > 0.0)
      session.tier_budget_bytes(static_cast<int>(t),
                                options_.tier_budget_bytes[t]);
  TuningOutcome outcome = session.run();
  // AnalysisReport::sweep becomes the canonical per-config data; the
  // embedded outcome keeps only the summary numbers (its 2^n-sized
  // trajectory adds nothing the report's views don't already show).
  SweepResult sweep = std::move(*outcome.sweep);
  outcome.sweep.reset();
  outcome.trajectory = {};
  SummaryAnalysis summary =
      summarize(sweep, options_.threshold_fraction);
  const LinearEstimator estimator(sweep);

  CapacityPlanner planner(sweep, space);
  PlanChoice recommended = planner.best_under_caps(effective_caps(tiers));
  auto minimal = planner.cheapest_reaching(summary.threshold90);
  HMPT_REQUIRE(minimal.has_value(),
               "no configuration reaches the threshold");

  AnalysisReport report{
      workload.name(),
      space,
      std::move(outcome),
      sweep,
      summary,
      estimator_error(sweep, estimator),
      recommended,
      *minimal,
      render_detailed_view(sweep, summary),
      render_summary_view(summary, workload.name()),
  };
  return report;
}

workloads::RecordedWorkload Driver::record(
    const shim::ShimAllocator& shim, const sample::SampleReport& samples,
    sim::PhaseTrace trace,
    const std::vector<std::string>& alloc_order_labels,
    const GroupingOptions& grouping, const std::string& name) const {
  const auto usage = shim.registry().site_usage(shim.sites());
  const auto densities =
      site_densities(shim.registry(), shim.sites(), samples);
  const auto groups = build_groups(usage, densities, grouping);
  HMPT_REQUIRE(!groups.empty(), "profiling run produced no groups");

  // The recorded trace indexes groups in allocation order; the grouping
  // step returns them ranked by impact. Build the remap table by label.
  std::vector<int> remap(alloc_order_labels.size(), -1);
  for (std::size_t old_id = 0; old_id < alloc_order_labels.size();
       ++old_id) {
    for (std::size_t new_id = 0; new_id < groups.size(); ++new_id) {
      const auto& g = groups[new_id];
      const bool direct = g.label == alloc_order_labels[old_id];
      // Folded sites land in the rest group; detect by membership.
      bool member = direct;
      if (!member) {
        const int site =
            shim.sites().find_by_label(alloc_order_labels[old_id]);
        for (int s : g.sites) member = member || s == site;
      }
      if (member) {
        remap[old_id] = static_cast<int>(new_id);
        break;
      }
    }
    HMPT_REQUIRE(remap[old_id] >= 0, "trace group without a grouping: " +
                                         alloc_order_labels[old_id]);
  }

  // Construct at the trace's allocation-order arity, then fold to the
  // grouped arity via the remap.
  std::vector<workloads::GroupInfo> old_infos;
  for (const auto& label : alloc_order_labels)
    old_infos.push_back({label, 0.0});
  std::vector<workloads::GroupInfo> new_infos;
  for (const auto& g : groups) new_infos.push_back({g.label, g.bytes});

  workloads::RecordedWorkload recorded(name, std::move(old_infos),
                                       std::move(trace));
  recorded.remap_groups(remap, std::move(new_infos));
  return recorded;
}

shim::PlacementPlan Driver::plan_for(
    const AnalysisReport& report,
    const std::vector<AllocationGroup>& groups) const {
  // Decode through the report's space so k-tier ids keep their digits.
  return to_placement_plan(groups,
                           report.space.placement(report.recommended.mask));
}

shim::PlacementPlan Driver::plan_for(
    const AnalysisReport& report,
    const std::vector<AllocationGroup>& groups,
    const shim::CallSiteRegistry& sites) const {
  return to_placement_plan(
      groups, report.space.placement(report.recommended.mask), sites);
}

}  // namespace hmpt::tuner
