#include "core/session.h"

#include <utility>

#include "common/error.h"
#include "common/units.h"
#include "obs/trace.h"

namespace hmpt::tuner {

Session& Session::workload(const workloads::Workload& w) {
  workload_ = &w;
  owned_.reset();
  return *this;
}

Session& Session::workload(workloads::WorkloadPtr w) {
  HMPT_REQUIRE(w != nullptr, "session workload must not be null");
  owned_ = std::move(w);
  workload_ = owned_.get();
  return *this;
}

Session& Session::context(sim::ExecutionContext ctx) {
  ctx_ = ctx;
  return *this;
}

Session& Session::strategy(std::string name) {
  strategy_ = std::move(name);
  return *this;
}

Session& Session::budget_gb(double gb) {
  HMPT_REQUIRE(gb >= 0.0, "HBM budget must be >= 0 GB");
  budget_.hbm_budget_bytes = gb * GB;
  return *this;
}

Session& Session::budget_bytes(double bytes) {
  HMPT_REQUIRE(bytes >= 0.0, "HBM budget must be >= 0 bytes");
  budget_.hbm_budget_bytes = bytes;
  return *this;
}

Session& Session::tier_budget_gb(int tier, double gb) {
  HMPT_REQUIRE(gb >= 0.0, "tier budget must be >= 0 GB");
  return tier_budget_bytes(tier, gb * GB);
}

Session& Session::tier_budget_bytes(int tier, double bytes) {
  HMPT_REQUIRE(tier >= 1 && tier < topo::kNumPoolKinds,
               "tier budget applies to non-DDR tiers only");
  HMPT_REQUIRE(bytes >= 0.0, "tier budget must be >= 0 bytes");
  if (budget_.tier_budget_bytes.size() <=
      static_cast<std::size_t>(tier))
    budget_.tier_budget_bytes.resize(static_cast<std::size_t>(tier) + 1,
                                     0.0);
  budget_.tier_budget_bytes[static_cast<std::size_t>(tier)] = bytes;
  return *this;
}

Session& Session::tiers(int count) {
  HMPT_REQUIRE(count == 0 || (count >= 2 && count <= topo::kNumPoolKinds),
               "tiers must be 0 (machine native) or in [2, kNumPoolKinds]");
  tiers_ = count;
  return *this;
}

Session& Session::repetitions(int reps) {
  HMPT_REQUIRE(reps >= 1, "need >= 1 repetition");
  budget_.repetitions = reps;
  return *this;
}

Session& Session::gray_order(bool enabled) {
  budget_.gray_order = enabled;
  return *this;
}

Session& Session::jobs(int n) {
  HMPT_REQUIRE(n >= 0, "jobs must be >= 0 (0 = all hardware threads)");
  budget_.jobs = n;
  return *this;
}

Session& Session::top_k(int k) {
  HMPT_REQUIRE(k >= 1, "top_k must be >= 1");
  budget_.top_k = k;
  return *this;
}

Session& Session::max_measurements(int n) {
  HMPT_REQUIRE(n >= 0, "max_measurements must be >= 0");
  budget_.max_measurements = n;
  return *this;
}

Session& Session::patience(int passes) {
  HMPT_REQUIRE(passes >= 1, "patience must be >= 1");
  budget_.patience = passes;
  return *this;
}

Session& Session::progress(
    std::function<void(const TuningProgress&)> callback) {
  callbacks_.on_progress = std::move(callback);
  return *this;
}

TuningOutcome Session::run() const {
  HMPT_REQUIRE(workload_ != nullptr, "session has no workload");
  obs::TraceSpan span("session", "run");
  span.arg("strategy", strategy_);
  span.arg("workload", workload_->name());
  const auto strategy = make_strategy(strategy_);

  std::vector<double> bytes;
  for (const auto& g : workload_->groups()) bytes.push_back(g.bytes);
  const int machine_tiers = sim_->machine().num_memory_tiers();
  const int tiers = tiers_ == 0 ? machine_tiers : tiers_;
  HMPT_REQUIRE(tiers <= machine_tiers,
               "session requests more tiers than the machine has");
  // A budget for a tier the search never visits would be silently dead
  // configuration; every entry point (CLI, campaigns, library callers)
  // gets this check by running through here.
  for (std::size_t t = static_cast<std::size_t>(tiers);
       t < budget_.tier_budget_bytes.size(); ++t)
    HMPT_REQUIRE(budget_.tier_budget_bytes[t] <= 0.0,
                 "tier " + std::to_string(t) +
                     " budget names a tier outside the searched space (" +
                     std::to_string(tiers) + " tiers)");
  const ConfigSpace space(std::move(bytes), tiers);

  const sim::ExecutionContext ctx =
      ctx_.has_value() ? *ctx_ : sim_->full_machine();
  return strategy->tune(*sim_, ctx, *workload_, space, budget_, callbacks_);
}

}  // namespace hmpt::tuner
