#include "core/experiment.h"

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hmpt::tuner {

namespace {

/// Fold one timer's lifetime tallies into the process-wide cache metrics
/// and (when tracing) mark them in the owning lane. Called when a timer
/// retires — end of a serial enumeration or of a worker's chunk — so the
/// counters see each hit exactly once.
void note_timer_stats(const sim::CachedTraceTimer* timer) {
  if (timer == nullptr) return;
  const std::uint64_t hits = timer->hits();
  const std::uint64_t misses = timer->misses();
  static obs::Counter& hit_counter = obs::metrics().counter("timer.hits");
  static obs::Counter& miss_counter = obs::metrics().counter("timer.misses");
  hit_counter.add(hits);
  miss_counter.add(misses);
  if (!obs::trace_enabled()) return;
  obs::trace_instant("experiment", "timer_cache",
                     {obs::TraceArg::number("hits", hits),
                      obs::TraceArg::number("misses", misses)});
}

}  // namespace

const ConfigResult& SweepResult::of(ConfigMask mask) const {
  // Dense, mask-indexed tables (the runner's layout) resolve in O(1)...
  if (mask < configs.size() && configs[mask].mask == mask)
    return configs[mask];
  // ...anything else (sparse or reordered tables) falls back to a scan, so
  // a found entry is always the right one.
  for (const auto& cfg : configs)
    if (cfg.mask == mask) return cfg;
  raise("configuration " + std::to_string(mask) +
        " was not measured in this sweep (" +
        std::to_string(configs.size()) + " configurations, " +
        std::to_string(num_groups) + " groups)");
}

const ConfigResult& SweepResult::all_hbm() const {
  // Uniform tier-1 id: sum over groups of 1 * k^g. For two tiers this is
  // 2^n - 1, the last configuration of the sweep.
  return of(config_uniform_id(num_groups, 1, num_tiers));
}

ExperimentRunner::ExperimentRunner(sim::MachineSimulator& sim,
                                   sim::ExecutionContext ctx,
                                   ExperimentOptions options)
    : sim_(&sim), ctx_(ctx), options_(options) {
  HMPT_REQUIRE(options_.repetitions >= 1, "need >= 1 repetition");
  HMPT_REQUIRE(options_.jobs >= 0, "jobs must be >= 0 (0 = hardware)");
}

int ExperimentRunner::resolved_jobs() const {
  return options_.jobs == 0 ? ThreadPool::hardware_jobs() : options_.jobs;
}

ThreadPool& ExperimentRunner::pool() {
  if (!pool_) pool_ = std::make_shared<ThreadPool>(resolved_jobs());
  return *pool_;
}

ExperimentRunner::TraceStats ExperimentRunner::trace_stats(
    const sim::PhaseTrace& trace, int num_groups) {
  TraceStats stats;
  stats.group_bytes.assign(static_cast<std::size_t>(num_groups), 0.0);
  for (const auto& phase : trace.phases) {
    for (const auto& s : phase.streams) {
      const double bytes = s.bytes_read + s.bytes_written;
      HMPT_REQUIRE(s.group >= 0 && s.group < num_groups,
                   "trace group out of range");
      stats.group_bytes[static_cast<std::size_t>(s.group)] += bytes;
      stats.total_bytes += bytes;
    }
  }
  return stats;
}

ConfigResult ExperimentRunner::measure_config(
    const sim::PhaseTrace& trace, const TraceStats& stats,
    const ConfigSpace& space, ConfigMask mask, double baseline_time,
    sim::CachedTraceTimer* timer) const {
  const auto placement = space.placement(mask);
  // The deterministic time is a pure function of the placement: compute it
  // once and apply per-repetition noise on top, instead of re-timing the
  // whole trace `repetitions` times.
  const double t = timer != nullptr
                       ? timer->time(placement)
                       : sim_->time_trace(trace, placement, ctx_);
  RunningStats runs;
  for (int rep = 0; rep < options_.repetitions; ++rep)
    runs.add(t * sim_->noise_factor({mask, static_cast<std::uint64_t>(rep)}));

  ConfigResult result;
  result.mask = mask;
  result.mean_time = runs.mean();
  result.stddev_time = runs.stddev();
  result.speedup = baseline_time > 0.0 ? baseline_time / runs.mean() : 1.0;
  result.hbm_usage = space.hbm_usage(mask);
  // Access density from the per-group totals: bit-for-bit the same value
  // for every enumeration order, job count and cache setting.
  double hbm = 0.0;
  for (int g = 0; g < space.num_groups(); ++g)
    if (placement.of(g) == topo::PoolKind::HBM)
      hbm += stats.group_bytes[static_cast<std::size_t>(g)];
  result.hbm_density = stats.total_bytes > 0.0 ? hbm / stats.total_bytes : 0.0;
  result.groups_in_hbm = space.popcount(mask);
  return result;
}

ConfigResult ExperimentRunner::measure(const workloads::Workload& workload,
                                       const ConfigSpace& space,
                                       ConfigMask mask,
                                       double baseline_time) {
  const auto trace = workload.trace();
  const TraceStats stats = trace_stats(trace, space.num_groups());
  return measure_config(trace, stats, space, mask, baseline_time, nullptr);
}

std::vector<ConfigResult> ExperimentRunner::measure_batch(
    const workloads::Workload& workload, const ConfigSpace& space,
    const std::vector<ConfigMask>& masks, double baseline_time) {
  const auto trace = workload.trace();
  const TraceStats stats = trace_stats(trace, space.num_groups());
  std::vector<ConfigResult> results(masks.size());

  obs::TraceSpan span("experiment", "measure_batch");
  span.arg_number("masks", static_cast<std::uint64_t>(masks.size()));

  const int jobs = resolved_jobs();
  if (jobs <= 1 || masks.size() < 2) {
    std::optional<sim::CachedTraceTimer> timer;
    if (options_.memoize) timer.emplace(sim_->solver(), trace, ctx_);
    for (std::size_t i = 0; i < masks.size(); ++i)
      results[i] = measure_config(trace, stats, space, masks[i],
                                  baseline_time,
                                  timer ? &*timer : nullptr);
    note_timer_stats(timer ? &*timer : nullptr);
    return results;
  }

  pool().parallel_chunks(masks.size(), [&](std::size_t begin,
                                           std::size_t end) {
    std::optional<sim::CachedTraceTimer> timer;
    if (options_.memoize) timer.emplace(sim_->solver(), trace, ctx_);
    for (std::size_t i = begin; i < end; ++i)
      results[i] = measure_config(trace, stats, space, masks[i],
                                  baseline_time,
                                  timer ? &*timer : nullptr);
    note_timer_stats(timer ? &*timer : nullptr);
  });
  return results;
}

SweepResult ExperimentRunner::sweep(const workloads::Workload& workload,
                                    const ConfigSpace& space) {
  return sweep(workload, space, ConfigCallback{});
}

SweepResult ExperimentRunner::sweep(const workloads::Workload& workload,
                                    const ConfigSpace& space,
                                    const ConfigCallback& on_config) {
  HMPT_REQUIRE(space.num_groups() == workload.num_groups(),
               "config space arity does not match the workload");
  const auto trace = workload.trace();
  const TraceStats stats = trace_stats(trace, space.num_groups());

  SweepResult sweep;
  sweep.num_groups = space.num_groups();
  sweep.num_tiers = space.num_tiers();
  sweep.configs.resize(space.size());

  const auto masks =
      options_.gray_order ? space.gray_masks() : space.all_masks();
  const int jobs = resolved_jobs();

  obs::TraceSpan span("experiment", "sweep");
  span.arg_number("configs", static_cast<std::uint64_t>(masks.size()));
  span.arg_number("jobs", static_cast<std::uint64_t>(jobs));

  if (jobs <= 1) {
    // Serial: one timer lives across the whole enumeration, so Gray order
    // re-times only the phases touching the flipped group.
    std::optional<sim::CachedTraceTimer> timer;
    if (options_.memoize) timer.emplace(sim_->solver(), trace, ctx_);
    sim::CachedTraceTimer* t = timer ? &*timer : nullptr;

    // Baseline first: every speedup is relative to the all-DDR mean.
    ConfigResult baseline = measure_config(trace, stats, space, 0, 0.0, t);
    baseline.speedup = 1.0;
    sweep.baseline_time = baseline.mean_time;
    sweep.configs[0] = baseline;
    if (on_config) on_config(sweep.configs[0]);

    for (const ConfigMask mask : masks) {
      if (mask == 0) continue;
      sweep.configs[mask] = measure_config(trace, stats, space, mask,
                                           sweep.baseline_time, t);
      if (on_config) on_config(sweep.configs[mask]);
    }
    note_timer_stats(t);
    return sweep;
  }

  // Parallel: the baseline is measured up front (speedups need its mean),
  // then the remaining enumeration is split into contiguous chunks — each
  // worker keeps its own timer, so Gray-order adjacency still pays off
  // within a chunk. Per-mask result slots make the region write-disjoint.
  ConfigResult baseline = measure_config(trace, stats, space, 0, 0.0,
                                         nullptr);
  baseline.speedup = 1.0;
  sweep.baseline_time = baseline.mean_time;
  sweep.configs[0] = baseline;

  std::vector<ConfigMask> rest;
  rest.reserve(masks.size() - 1);
  for (const ConfigMask mask : masks)
    if (mask != 0) rest.push_back(mask);

  pool().parallel_chunks(rest.size(), [&](std::size_t begin,
                                          std::size_t end) {
    std::optional<sim::CachedTraceTimer> timer;
    if (options_.memoize) timer.emplace(sim_->solver(), trace, ctx_);
    for (std::size_t i = begin; i < end; ++i)
      sweep.configs[rest[i]] =
          measure_config(trace, stats, space, rest[i], sweep.baseline_time,
                         timer ? &*timer : nullptr);
    note_timer_stats(timer ? &*timer : nullptr);
  });

  // Callbacks fire after the barrier, from this thread, in enumeration
  // order — the exact sequence the serial sweep produces.
  if (on_config) {
    on_config(sweep.configs[0]);
    for (const ConfigMask mask : masks)
      if (mask != 0) on_config(sweep.configs[mask]);
  }
  return sweep;
}

double hbm_access_fraction(const sim::PhaseTrace& trace,
                           const sim::Placement& placement) {
  double total = 0.0, hbm = 0.0;
  for (const auto& phase : trace.phases) {
    for (const auto& s : phase.streams) {
      const double bytes = s.bytes_read + s.bytes_written;
      total += bytes;
      if (placement.of(s.group) == topo::PoolKind::HBM) hbm += bytes;
    }
  }
  return total > 0.0 ? hbm / total : 0.0;
}

}  // namespace hmpt::tuner
