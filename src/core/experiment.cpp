#include "core/experiment.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace hmpt::tuner {

const ConfigResult& SweepResult::of(ConfigMask mask) const {
  // Dense, mask-indexed tables (the runner's layout) resolve in O(1)...
  if (mask < configs.size() && configs[mask].mask == mask)
    return configs[mask];
  // ...anything else (sparse or reordered tables) falls back to a scan, so
  // a found entry is always the right one.
  for (const auto& cfg : configs)
    if (cfg.mask == mask) return cfg;
  raise("configuration " + std::to_string(mask) +
        " was not measured in this sweep (" +
        std::to_string(configs.size()) + " configurations, " +
        std::to_string(num_groups) + " groups)");
}

const ConfigResult& SweepResult::all_hbm() const {
  return configs.back();
}

ExperimentRunner::ExperimentRunner(sim::MachineSimulator& sim,
                                   sim::ExecutionContext ctx,
                                   ExperimentOptions options)
    : sim_(&sim), ctx_(ctx), options_(options) {
  HMPT_REQUIRE(options_.repetitions >= 1, "need >= 1 repetition");
}

ConfigResult ExperimentRunner::measure(const workloads::Workload& workload,
                                       const ConfigSpace& space,
                                       ConfigMask mask,
                                       double baseline_time) {
  const auto trace = workload.trace();
  const auto placement = space.placement(mask);
  RunningStats stats;
  for (int rep = 0; rep < options_.repetitions; ++rep)
    stats.add(sim_->measure_trace(trace, placement, ctx_));

  ConfigResult result;
  result.mask = mask;
  result.mean_time = stats.mean();
  result.stddev_time = stats.stddev();
  result.speedup = baseline_time > 0.0 ? baseline_time / stats.mean() : 1.0;
  result.hbm_usage = space.hbm_usage(mask);
  result.hbm_density = hbm_access_fraction(trace, placement);
  result.groups_in_hbm = space.popcount(mask);
  return result;
}

SweepResult ExperimentRunner::sweep(const workloads::Workload& workload,
                                    const ConfigSpace& space) {
  return sweep(workload, space, ConfigCallback{});
}

SweepResult ExperimentRunner::sweep(const workloads::Workload& workload,
                                    const ConfigSpace& space,
                                    const ConfigCallback& on_config) {
  HMPT_REQUIRE(space.num_groups() == workload.num_groups(),
               "config space arity does not match the workload");
  SweepResult sweep;
  sweep.num_groups = space.num_groups();
  sweep.configs.resize(space.size());

  // Baseline first: every speedup is relative to the all-DDR mean.
  ConfigResult baseline = measure(workload, space, 0, 0.0);
  baseline.speedup = 1.0;
  sweep.baseline_time = baseline.mean_time;
  sweep.configs[0] = baseline;
  if (on_config) on_config(sweep.configs[0]);

  const auto masks =
      options_.gray_order ? space.gray_masks() : space.all_masks();
  for (const ConfigMask mask : masks) {
    if (mask == 0) continue;
    sweep.configs[mask] =
        measure(workload, space, mask, sweep.baseline_time);
    if (on_config) on_config(sweep.configs[mask]);
  }
  return sweep;
}

double hbm_access_fraction(const sim::PhaseTrace& trace,
                           const sim::Placement& placement) {
  double total = 0.0, hbm = 0.0;
  for (const auto& phase : trace.phases) {
    for (const auto& s : phase.streams) {
      const double bytes = s.bytes_read + s.bytes_written;
      total += bytes;
      if (placement.of(s.group) == topo::PoolKind::HBM) hbm += bytes;
    }
  }
  return total > 0.0 ? hbm / total : 0.0;
}

}  // namespace hmpt::tuner
