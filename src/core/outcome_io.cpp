#include "core/outcome_io.h"

#include <cstdint>

namespace hmpt::tuner {

namespace {

Json config_to_json(const ConfigResult& c) {
  JsonObject o;
  o["mask"] = Json(static_cast<std::uint64_t>(c.mask));
  o["mean_time"] = Json(c.mean_time);
  o["stddev_time"] = Json(c.stddev_time);
  o["speedup"] = Json(c.speedup);
  o["hbm_usage"] = Json(c.hbm_usage);
  o["hbm_density"] = Json(c.hbm_density);
  o["groups_in_hbm"] = Json(c.groups_in_hbm);
  return Json(std::move(o));
}

ConfigResult config_from_json(const Json& json) {
  ConfigResult c;
  c.mask = static_cast<ConfigMask>(json.at("mask").as_number());
  c.mean_time = json.at("mean_time").as_number();
  c.stddev_time = json.at("stddev_time").as_number();
  c.speedup = json.at("speedup").as_number();
  c.hbm_usage = json.at("hbm_usage").as_number();
  c.hbm_density = json.at("hbm_density").as_number();
  c.groups_in_hbm = static_cast<int>(json.at("groups_in_hbm").as_number());
  return c;
}

Json step_to_json(const TuningStep& s) {
  JsonObject o;
  o["index"] = Json(s.index);
  o["mask"] = Json(static_cast<std::uint64_t>(s.mask));
  o["observed_time"] = Json(s.observed_time);
  o["speedup"] = Json(s.speedup);
  o["accepted"] = Json(s.accepted);
  return Json(std::move(o));
}

TuningStep step_from_json(const Json& json) {
  TuningStep s;
  s.index = static_cast<int>(json.at("index").as_number());
  s.mask = static_cast<ConfigMask>(json.at("mask").as_number());
  s.observed_time = json.at("observed_time").as_number();
  s.speedup = json.at("speedup").as_number();
  s.accepted = json.at("accepted").as_bool();
  return s;
}

}  // namespace

Json outcome_to_json(const TuningOutcome& outcome) {
  JsonObject o;
  o["strategy"] = Json(outcome.strategy);
  o["workload"] = Json(outcome.workload);
  o["num_groups"] = Json(outcome.num_groups);
  o["num_tiers"] = Json(outcome.num_tiers);
  o["chosen_mask"] = Json(static_cast<std::uint64_t>(outcome.chosen_mask));
  {
    JsonArray tiers;
    for (const auto kind : outcome.chosen_placement.pools())
      tiers.push_back(Json(static_cast<int>(kind)));
    o["chosen_placement"] = Json(std::move(tiers));
  }
  o["chosen_time"] = Json(outcome.chosen_time);
  o["baseline_time"] = Json(outcome.baseline_time);
  o["speedup"] = Json(outcome.speedup);
  o["hbm_bytes"] = Json(outcome.hbm_bytes);
  o["hbm_usage"] = Json(outcome.hbm_usage);
  o["configs_measured"] = Json(outcome.configs_measured);
  o["measurements"] = Json(outcome.measurements);
  {
    JsonArray steps;
    for (const auto& s : outcome.trajectory) steps.push_back(step_to_json(s));
    o["trajectory"] = Json(std::move(steps));
  }
  {
    JsonArray table;
    for (const auto& c : outcome.table) table.push_back(config_to_json(c));
    o["table"] = Json(std::move(table));
  }
  if (outcome.sweep.has_value()) {
    JsonObject sweep;
    sweep["baseline_time"] = Json(outcome.sweep->baseline_time);
    sweep["num_groups"] = Json(outcome.sweep->num_groups);
    sweep["num_tiers"] = Json(outcome.sweep->num_tiers);
    JsonArray configs;
    for (const auto& c : outcome.sweep->configs)
      configs.push_back(config_to_json(c));
    sweep["configs"] = Json(std::move(configs));
    o["sweep"] = Json(std::move(sweep));
  }
  return Json(std::move(o));
}

TuningOutcome outcome_from_json(const Json& json) {
  TuningOutcome out;
  out.strategy = json.at("strategy").as_string();
  out.workload = json.at("workload").as_string();
  out.num_groups = static_cast<int>(json.at("num_groups").as_number());
  out.num_tiers = static_cast<int>(json.at("num_tiers").as_number());
  out.chosen_mask = static_cast<ConfigMask>(json.at("chosen_mask").as_number());
  {
    std::vector<topo::PoolKind> pools;
    for (const Json& tier : json.at("chosen_placement").as_array())
      pools.push_back(static_cast<topo::PoolKind>(
          static_cast<int>(tier.as_number())));
    out.chosen_placement = sim::Placement(std::move(pools));
  }
  out.chosen_time = json.at("chosen_time").as_number();
  out.baseline_time = json.at("baseline_time").as_number();
  out.speedup = json.at("speedup").as_number();
  out.hbm_bytes = json.at("hbm_bytes").as_number();
  out.hbm_usage = json.at("hbm_usage").as_number();
  out.configs_measured =
      static_cast<int>(json.at("configs_measured").as_number());
  out.measurements = static_cast<int>(json.at("measurements").as_number());
  for (const Json& step : json.at("trajectory").as_array())
    out.trajectory.push_back(step_from_json(step));
  for (const Json& config : json.at("table").as_array())
    out.table.push_back(config_from_json(config));
  if (const Json* sweep = json.as_object().find("sweep")) {
    SweepResult s;
    s.baseline_time = sweep->at("baseline_time").as_number();
    s.num_groups = static_cast<int>(sweep->at("num_groups").as_number());
    s.num_tiers = static_cast<int>(sweep->at("num_tiers").as_number());
    for (const Json& config : sweep->at("configs").as_array())
      s.configs.push_back(config_from_json(config));
    out.sweep = std::move(s);
  }
  return out;
}

}  // namespace hmpt::tuner
