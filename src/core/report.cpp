#include "core/report.h"

#include <algorithm>

#include "common/units.h"

namespace hmpt::tuner {

std::string mask_label(ConfigMask mask, int num_groups, int num_tiers) {
  const auto k = static_cast<ConfigMask>(num_tiers);
  std::string label = "[";
  bool first = true;
  for (int g = 0; g < num_groups; ++g) {
    const int tier = static_cast<int>(mask % k);
    mask /= k;
    if (tier == 0) continue;
    if (!first) label += ' ';
    label += std::to_string(g);
    if (num_tiers > 2) {
      label += ':';
      label += topo::to_string(static_cast<topo::PoolKind>(tier));
    }
    first = false;
  }
  label += ']';
  return first ? "[DDR]" : label;
}

DetailedView render_detailed_view(const SweepResult& sweep,
                                  const SummaryAnalysis& summary,
                                  int max_rank) {
  DetailedView view;
  view.table = Table({"config", "speedup", "linear_est", "hbm_usage",
                      "hbm_access_fraction", "mean_time_s", "stddev_s"});

  std::vector<BarItem> bars;
  for (const auto& point : summary.points) {
    if (point.mask == 0) continue;
    const auto& cfg = sweep.of(point.mask);
    if (max_rank > 0 && cfg.groups_in_hbm > max_rank) continue;
    const std::string label =
        mask_label(point.mask, sweep.num_groups, sweep.num_tiers);
    view.table.add_row({label, cell(point.speedup, 3),
                        cell(point.estimate, 3), cell(point.hbm_usage, 3),
                        cell(cfg.hbm_density, 3), cell(cfg.mean_time, 4),
                        cell(cfg.stddev_time, 5)});
    bars.push_back({label, point.speedup, point.estimate});
  }
  // The paper orders the x-axis by rank then index; points is mask-ordered,
  // so sort bars the same way Fig. 7a reads.
  std::stable_sort(bars.begin(), bars.end(),
                   [&](const BarItem& a, const BarItem& b) {
                     return a.label.size() < b.label.size();
                   });
  view.bar_chart = render_bar_chart(
      bars, "measured (#) vs linear estimate (~), baseline = all-DDR", 48,
      1.0);
  return view;
}

SummaryView render_summary_view(const SummaryAnalysis& summary,
                                const std::string& workload_name) {
  SummaryView view;
  view.table = Table({"hbm_footprint", "speedup", "linear_est", "config",
                      "kind"});

  ChartSeries combos{"combinations", 'o', {}, {}};
  ChartSeries singles{"groups (single-allocation)", 's', {}, {}};
  ChartSeries estimates{"comb. est.", '+', {}, {}};

  for (const auto& p : summary.points) {
    const bool single = p.single_group || p.mask == 0;
    view.table.add_row({cell(p.hbm_usage, 3), cell(p.speedup, 3),
                        cell(p.estimate, 3),
                        mask_label(p.mask, summary.num_groups,
                                   summary.num_tiers),
                        single ? "group" : "combination"});
    if (single) {
      singles.x.push_back(p.hbm_usage);
      singles.y.push_back(p.speedup);
    } else {
      combos.x.push_back(p.hbm_usage);
      combos.y.push_back(p.speedup);
    }
    estimates.x.push_back(p.hbm_usage);
    estimates.y.push_back(p.estimate);
  }

  ChartOptions options;
  options.title = workload_name + " — speedup vs HBM memory footprint";
  options.x_label = "HBM Memory Footprint [-]";
  options.y_label = "Speedup [-]";
  options.hlines = {summary.max_speedup, summary.threshold90};
  options.x_min = 0.0;
  options.x_max = 1.0;
  view.scatter =
      render_xy_chart({estimates, combos, singles}, options) +
      "  (upper '-' line: max speedup " + cell(summary.max_speedup, 2) +
      ", lower: 90 % of max at usage " + cell(summary.usage90, 3) + ")\n";
  return view;
}

std::vector<std::string> table2_row(const std::string& name,
                                    const SummaryAnalysis& summary) {
  return {name, cell(summary.max_speedup, 2),
          cell(summary.hbm_only_speedup, 2),
          cell(summary.usage90 * 100.0, 1)};
}

}  // namespace hmpt::tuner
