// session.h — the fluent front door of the tuner.
//
// One builder configures platform, workload, strategy and budget, and one
// run() call produces the unified TuningOutcome, whatever search method is
// behind it:
//
//   auto outcome = Session::on(simulator)
//                      .workload(w)
//                      .budget_gb(16)
//                      .strategy("online")
//                      .progress([](const TuningProgress& p) { ... })
//                      .run();
//
// Strategies are resolved by name through the StrategyRegistry, so a
// Session drives any registered method — built-in or user-supplied —
// without the caller wiring up config spaces, runners or tuner options.
#pragma once

#include <optional>
#include <string>

#include "core/strategy.h"

namespace hmpt::tuner {

class Session {
 public:
  /// Start a session on a simulated platform.
  static Session on(sim::MachineSimulator& sim) { return Session(sim); }

  /// The workload to tune (kept by reference; must outlive run()).
  Session& workload(const workloads::Workload& w);
  /// Shared-ownership variant.
  Session& workload(workloads::WorkloadPtr w);

  /// Execution context; defaults to the simulator's full machine.
  Session& context(sim::ExecutionContext ctx);
  /// Strategy name looked up in the registry (default "exhaustive").
  Session& strategy(std::string name);

  Session& budget_gb(double gb);
  Session& budget_bytes(double bytes);
  /// Capacity cap of one non-DDR tier (tier = PoolKind value >= 1);
  /// tier 1 is the HBM budget, tier 2 the CXL budget.
  Session& tier_budget_gb(int tier, double gb);
  Session& tier_budget_bytes(int tier, double bytes);
  /// Number of memory tiers to search over (>= 2, at most the machine's
  /// num_memory_tiers); 0 (the default) = the machine's full tier count.
  Session& tiers(int count);
  Session& repetitions(int reps);
  Session& gray_order(bool enabled);
  /// Measurement worker threads (1 = serial, 0 = all hardware threads);
  /// the outcome is bit-identical at any job count.
  Session& jobs(int n);
  Session& top_k(int k);
  Session& max_measurements(int n);
  Session& patience(int passes);
  Session& progress(std::function<void(const TuningProgress&)> callback);

  const std::string& strategy_name() const { return strategy_; }
  const TuningBudget& budget() const { return budget_; }

  /// Resolve the strategy, build the config space from the workload's
  /// groups, and tune. Throws hmpt::Error when no workload was given or
  /// the strategy name is unknown.
  TuningOutcome run() const;

 private:
  explicit Session(sim::MachineSimulator& sim) : sim_(&sim) {}

  sim::MachineSimulator* sim_;
  const workloads::Workload* workload_ = nullptr;
  workloads::WorkloadPtr owned_;  ///< keeps shared workloads alive
  std::optional<sim::ExecutionContext> ctx_;
  std::string strategy_ = "exhaustive";
  int tiers_ = 0;  ///< 0 = the machine's native tier count
  TuningBudget budget_;
  TuningCallbacks callbacks_;
};

}  // namespace hmpt::tuner
