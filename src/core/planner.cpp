#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hmpt::tuner {

CapacityPlanner::CapacityPlanner(const SweepResult& sweep,
                                 const ConfigSpace& space)
    : sweep_(&sweep), space_(&space) {
  HMPT_REQUIRE(sweep.num_groups == space.num_groups(),
               "sweep/space arity mismatch");
}

PlanChoice CapacityPlanner::best_under_budget(double budget_bytes) const {
  HMPT_REQUIRE(budget_bytes >= 0.0, "negative budget");
  return best_under_caps({0.0, budget_bytes});
}

PlanChoice CapacityPlanner::best_under_caps(
    const std::vector<double>& caps) const {
  PlanChoice best;
  best.speedup = 0.0;
  bool found = false;
  for (const auto& cfg : sweep_->configs) {
    bool fits = true;
    for (int t = 1; t < space_->num_tiers() && fits; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (ti < caps.size())
        fits = space_->tier_bytes(cfg.mask,
                                  static_cast<topo::PoolKind>(t)) <= caps[ti];
    }
    if (!fits) continue;
    const double bytes = space_->hbm_bytes(cfg.mask);
    if (!found || cfg.speedup > best.speedup ||
        (cfg.speedup == best.speedup && bytes < best.hbm_bytes)) {
      found = true;
      best.mask = cfg.mask;
      best.speedup = cfg.speedup;
      best.hbm_bytes = bytes;
      best.hbm_usage = cfg.hbm_usage;
    }
  }
  HMPT_REQUIRE(found, "not even the all-DDR configuration fits");
  return best;
}

std::optional<PlanChoice> CapacityPlanner::cheapest_reaching(
    double target_speedup) const {
  std::optional<PlanChoice> best;
  for (const auto& cfg : sweep_->configs) {
    if (cfg.speedup + 1e-12 < target_speedup) continue;
    const double bytes = space_->hbm_bytes(cfg.mask);
    if (!best || bytes < best->hbm_bytes ||
        (bytes == best->hbm_bytes && cfg.speedup > best->speedup)) {
      best = PlanChoice{cfg.mask, cfg.speedup, bytes, cfg.hbm_usage, true};
    }
  }
  return best;
}

std::vector<PlanChoice> CapacityPlanner::pareto_front() const {
  std::vector<PlanChoice> all;
  for (const auto& cfg : sweep_->configs)
    all.push_back({cfg.mask, cfg.speedup, space_->hbm_bytes(cfg.mask),
                   cfg.hbm_usage, true});
  std::sort(all.begin(), all.end(), [](const PlanChoice& a,
                                       const PlanChoice& b) {
    if (a.hbm_bytes != b.hbm_bytes) return a.hbm_bytes < b.hbm_bytes;
    return a.speedup > b.speedup;
  });
  std::vector<PlanChoice> front;
  double best = -1.0;
  for (const auto& c : all) {
    if (c.speedup > best) {
      front.push_back(c);
      best = c.speedup;
    }
  }
  return front;
}

PlanChoice knapsack_plan(const LinearEstimator& estimator,
                         const std::vector<double>& group_bytes,
                         double budget_bytes, double granularity) {
  const int n = estimator.num_groups();
  HMPT_REQUIRE(static_cast<int>(group_bytes.size()) == n,
               "bytes/estimator arity mismatch");
  HMPT_REQUIRE(granularity > 0.0, "granularity must be positive");

  const auto to_units = [&](double bytes) {
    return static_cast<int>(std::ceil(bytes / granularity));
  };
  const int capacity = static_cast<int>(budget_bytes / granularity);

  // dp[w] = best value using weight <= w; choice tracking via parent masks.
  std::vector<double> dp(static_cast<std::size_t>(capacity) + 1, 0.0);
  std::vector<ConfigMask> pick(static_cast<std::size_t>(capacity) + 1, 0);
  for (int g = 0; g < n; ++g) {
    const double value = estimator.single_speedup(g) - 1.0;
    if (value <= 0.0) continue;  // DDR-preferring groups never help
    const int w = to_units(group_bytes[static_cast<std::size_t>(g)]);
    for (int cap = capacity; cap >= w; --cap) {
      const double candidate =
          dp[static_cast<std::size_t>(cap - w)] + value;
      if (candidate > dp[static_cast<std::size_t>(cap)]) {
        dp[static_cast<std::size_t>(cap)] = candidate;
        pick[static_cast<std::size_t>(cap)] =
            pick[static_cast<std::size_t>(cap - w)] |
            (ConfigMask{1} << g);
      }
    }
  }

  PlanChoice choice;
  choice.from_measurement = false;
  choice.mask = pick[static_cast<std::size_t>(capacity)];
  choice.speedup = 1.0 + dp[static_cast<std::size_t>(capacity)];
  double total = 0.0;
  for (int g = 0; g < n; ++g) {
    total += group_bytes[static_cast<std::size_t>(g)];
    if (choice.mask & (ConfigMask{1} << g))
      choice.hbm_bytes += group_bytes[static_cast<std::size_t>(g)];
  }
  choice.hbm_usage = total > 0.0 ? choice.hbm_bytes / total : 0.0;
  return choice;
}

namespace {

sim::Placement mask_to_placement(std::size_t num_groups, ConfigMask mask) {
  std::vector<topo::PoolKind> pools(num_groups, topo::PoolKind::DDR);
  for (std::size_t g = 0; g < num_groups; ++g)
    if (mask & (ConfigMask{1} << g)) pools[g] = topo::PoolKind::HBM;
  return sim::Placement(std::move(pools));
}

}  // namespace

shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups,
    const sim::Placement& placement) {
  HMPT_REQUIRE(placement.size() == static_cast<int>(groups.size()),
               "placement/groups arity mismatch");
  shim::PlacementPlan plan(topo::PoolKind::DDR);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const topo::PoolKind kind = placement.of(static_cast<int>(g));
    if (kind == topo::PoolKind::DDR) continue;
    plan.set_named_site(groups[g].label, kind);
  }
  return plan;
}

shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups,
    const sim::Placement& placement, const shim::CallSiteRegistry& sites) {
  HMPT_REQUIRE(placement.size() == static_cast<int>(groups.size()),
               "placement/groups arity mismatch");
  shim::PlacementPlan plan(topo::PoolKind::DDR);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const topo::PoolKind kind = placement.of(static_cast<int>(g));
    if (kind == topo::PoolKind::DDR) continue;
    for (const int site : groups[g].sites)
      plan.set_site(sites.site(site).hash, kind);
  }
  return plan;
}

shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups, ConfigMask mask) {
  return to_placement_plan(groups, mask_to_placement(groups.size(), mask));
}

shim::PlacementPlan to_placement_plan(
    const std::vector<AllocationGroup>& groups, ConfigMask mask,
    const shim::CallSiteRegistry& sites) {
  return to_placement_plan(groups, mask_to_placement(groups.size(), mask),
                           sites);
}

}  // namespace hmpt::tuner
