#include "core/grouping.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.h"

namespace hmpt::tuner {

std::vector<double> site_densities(const shim::AllocationRegistry& registry,
                                   const shim::CallSiteRegistry& sites,
                                   const sample::SampleReport& report) {
  std::vector<double> densities(static_cast<std::size_t>(sites.num_sites()),
                                0.0);
  // Allocation-record ids are the PageMap tags the sampler attributes to.
  std::map<std::uint64_t, int> tag_to_site;
  for (const auto& rec : registry.all_records())
    tag_to_site[rec.id] = rec.site;

  for (const auto& tag : report.per_tag) {
    auto it = tag_to_site.find(tag.tag);
    if (it == tag_to_site.end()) continue;  // allocation outside the shim
    if (it->second >= 0 &&
        it->second < static_cast<int>(densities.size()))
      densities[static_cast<std::size_t>(it->second)] +=
          report.density(tag.tag);
  }
  return densities;
}

std::vector<AllocationGroup> build_groups(
    const std::vector<shim::SiteUsage>& usage,
    const std::vector<double>& densities, const GroupingOptions& options) {
  HMPT_REQUIRE(options.max_groups >= 2, "need at least 2 groups");

  auto density_of = [&](int site) {
    return site >= 0 && site < static_cast<int>(densities.size())
               ? densities[static_cast<std::size_t>(site)]
               : 0.0;
  };

  // Partition into significant sites and the fold-away set.
  std::vector<const shim::SiteUsage*> significant;
  AllocationGroup rest;
  rest.label = "rest";
  for (const auto& u : usage) {
    if (static_cast<double>(u.peak_live_bytes) < options.min_bytes) {
      rest.sites.push_back(u.site);
      rest.bytes += static_cast<double>(u.peak_live_bytes);
      rest.access_density += density_of(u.site);
    } else {
      significant.push_back(&u);
    }
  }

  std::sort(significant.begin(), significant.end(),
            [&](const shim::SiteUsage* a, const shim::SiteUsage* b) {
              if (options.ranking == GroupRanking::ByDensity) {
                const double da = density_of(a->site);
                const double db = density_of(b->site);
                if (da != db) return da > db;
              }
              if (a->peak_live_bytes != b->peak_live_bytes)
                return a->peak_live_bytes > b->peak_live_bytes;
              return a->site < b->site;  // deterministic tie-break
            });

  std::vector<AllocationGroup> groups;
  const std::size_t top_n = static_cast<std::size_t>(options.max_groups - 1);
  for (std::size_t i = 0; i < significant.size(); ++i) {
    const auto& u = *significant[i];
    if (i < top_n) {
      AllocationGroup g;
      g.label = u.label.empty() ? "site#" + std::to_string(u.site) : u.label;
      g.sites.push_back(u.site);
      g.bytes = static_cast<double>(u.peak_live_bytes);
      g.access_density = density_of(u.site);
      groups.push_back(std::move(g));
    } else {
      rest.sites.push_back(u.site);
      rest.bytes += static_cast<double>(u.peak_live_bytes);
      rest.access_density += density_of(u.site);
    }
  }
  if (!rest.sites.empty()) groups.push_back(std::move(rest));
  return groups;
}

std::vector<AllocationGroup> build_groups_by_labels(
    const std::vector<shim::SiteUsage>& usage,
    const std::vector<double>& densities,
    const std::vector<std::vector<std::string>>& label_sets) {
  auto density_of = [&](int site) {
    return site >= 0 && site < static_cast<int>(densities.size())
               ? densities[static_cast<std::size_t>(site)]
               : 0.0;
  };

  std::vector<AllocationGroup> groups(label_sets.size());
  AllocationGroup rest;
  rest.label = "rest";

  for (std::size_t g = 0; g < label_sets.size(); ++g) {
    HMPT_REQUIRE(!label_sets[g].empty(), "empty label set");
    std::string label;
    for (const auto& l : label_sets[g]) {
      if (!label.empty()) label += "+";
      label += l;
    }
    groups[g].label = label;
  }

  for (const auto& u : usage) {
    bool placed = false;
    for (std::size_t g = 0; g < label_sets.size() && !placed; ++g) {
      for (const auto& wanted : label_sets[g]) {
        if (u.label == wanted) {
          groups[g].sites.push_back(u.site);
          groups[g].bytes += static_cast<double>(u.peak_live_bytes);
          groups[g].access_density += density_of(u.site);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      rest.sites.push_back(u.site);
      rest.bytes += static_cast<double>(u.peak_live_bytes);
      rest.access_density += density_of(u.site);
    }
  }
  if (!rest.sites.empty()) groups.push_back(std::move(rest));
  return groups;
}

}  // namespace hmpt::tuner
