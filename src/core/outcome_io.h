// outcome_io.h — JSON (de)serialisation of TuningOutcome.
//
// The campaign engine persists every finished scenario as JSON so a re-run
// can skip it (--resume) and external tooling can aggregate fleets of runs;
// hmpt_analyze --json reuses the same serialiser for single runs. The
// format is a faithful field-for-field dump: an outcome parsed back from
// its JSON compares equal to the original (covered by tests), which is
// what makes the on-disk outcome store a cache rather than a lossy log.
#pragma once

#include "common/json.h"
#include "core/strategy.h"

namespace hmpt::tuner {

/// Serialise an outcome (including trajectory, measured table and, when
/// present, the full sweep) to a JSON object.
Json outcome_to_json(const TuningOutcome& outcome);

/// Parse an outcome back; throws hmpt::Error on a malformed document.
TuningOutcome outcome_from_json(const Json& json);

}  // namespace hmpt::tuner
