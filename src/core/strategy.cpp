#include "core/strategy.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/estimator.h"
#include "core/online.h"
#include "core/planner.h"
#include "core/report.h"

namespace hmpt::tuner {

namespace {

/// <= 0 means "the machine's full HBM capacity" across all strategies.
double resolved_budget(const sim::MachineSimulator& sim,
                       const TuningBudget& budget) {
  if (budget.hbm_budget_bytes > 0.0) return budget.hbm_budget_bytes;
  return sim.machine().capacity_of_kind(topo::PoolKind::HBM);
}

void emit_progress(const TuningCallbacks& callbacks, const std::string& name,
                   int configs_measured, ConfigMask mask, double time,
                   double best_speedup) {
  if (!callbacks.on_progress) return;
  callbacks.on_progress({name, configs_measured, mask, time, best_speedup});
}

/// Fill the placement-derived fields of a finished outcome.
void finish_outcome(TuningOutcome& out, const ConfigSpace& space) {
  out.hbm_bytes = space.hbm_bytes(out.chosen_mask);
  out.hbm_usage = space.hbm_usage(out.chosen_mask);
  std::sort(out.table.begin(), out.table.end(),
            [](const ConfigResult& a, const ConfigResult& b) {
              return a.mask < b.mask;
            });
}

}  // namespace

std::string TuningOutcome::to_text() const {
  std::ostringstream os;
  os << "=== tuning: " << workload << " — strategy " << strategy
     << " ===\n\n";
  os << "configurations measured: " << configs_measured << " of "
     << (std::size_t{1} << num_groups) << " (" << measurements
     << " simulator runs, " << num_groups << " groups)\n";
  os << "all-DDR baseline: " << format_time(baseline_time) << "\n";
  os << "recommended placement: " << mask_label(chosen_mask, num_groups)
     << " at " << cell(speedup, 2) << "x, using " << format_bytes(hbm_bytes)
     << " of HBM (" << format_percent(hbm_usage) << " of footprint)\n";

  if (!trajectory.empty()) {
    Table steps({"step", "config", "time", "speedup", "accepted"});
    for (const auto& s : trajectory)
      steps.add_row({std::to_string(s.index),
                     mask_label(s.mask, num_groups),
                     format_time(s.observed_time), cell(s.speedup, 2) + "x",
                     s.accepted ? "yes" : "no"});
    os << "\ntrajectory:\n" << steps.to_text();
  }
  if (!configs().empty()) {
    Table rows({"config", "speedup", "HBM usage", "groups in HBM"});
    for (const auto& c : configs())
      rows.add_row({mask_label(c.mask, num_groups),
                    cell(c.speedup, 2) + "x", format_percent(c.hbm_usage),
                    std::to_string(c.groups_in_hbm)});
    os << "\nmeasured configurations:\n" << rows.to_text();
  }
  return os.str();
}

// --------------------------------------------------------------- registry

StrategyRegistry::StrategyRegistry() {
  add("exhaustive", [] { return std::make_unique<ExhaustiveStrategy>(); });
  add("online", [] { return std::make_unique<OnlineGreedyStrategy>(); });
  add("estimator",
      [] { return std::make_unique<EstimatorGuidedStrategy>(); });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::add(const std::string& name, Factory factory) {
  HMPT_REQUIRE(!name.empty(), "strategy name must not be empty");
  HMPT_REQUIRE(factory != nullptr, "strategy factory must not be null");
  HMPT_REQUIRE(!contains(name), "strategy already registered: " + name);
  factories_.emplace_back(name, std::move(factory));
}

bool StrategyRegistry::contains(const std::string& name) const {
  for (const auto& [key, factory] : factories_)
    if (key == name) return true;
  return false;
}

std::unique_ptr<TuningStrategy> StrategyRegistry::create(
    const std::string& name) const {
  for (const auto& [key, factory] : factories_)
    if (key == name) return factory();
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  raise("unknown tuning strategy: '" + name + "' (known: " + known + ")");
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<TuningStrategy> make_strategy(const std::string& name) {
  return StrategyRegistry::instance().create(name);
}

// ------------------------------------------------------------- exhaustive

TuningOutcome ExhaustiveStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  ExperimentOptions options;
  options.repetitions = budget.repetitions;
  options.gray_order = budget.gray_order;
  options.jobs = budget.jobs;
  ExperimentRunner runner(sim, ctx, options);

  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  const double cap = resolved_budget(sim, budget);
  double best = 0.0;
  SweepResult sweep =
      runner.sweep(workload, space, [&](const ConfigResult& result) {
        ++out.configs_measured;
        const bool fits = space.hbm_bytes(result.mask) <= cap;
        const bool accepted = fits && result.speedup > best;
        if (accepted) best = result.speedup;
        out.trajectory.push_back({out.configs_measured, result.mask,
                                  result.mean_time, result.speedup,
                                  accepted});
        emit_progress(callbacks, name(), out.configs_measured, result.mask,
                      result.mean_time, best);
      });
  out.measurements = out.configs_measured * budget.repetitions;

  const PlanChoice chosen = CapacityPlanner(sweep, space).best_under_budget(cap);
  out.chosen_mask = chosen.mask;
  out.chosen_time = sweep.of(chosen.mask).mean_time;
  out.baseline_time = sweep.baseline_time;
  out.speedup = chosen.speedup;
  out.sweep = std::move(sweep);  // configs() serves the table from here
  finish_outcome(out, space);
  return out;
}

// ------------------------------------------------------------ online greedy

TuningOutcome OnlineGreedyStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  OnlineTunerOptions options;
  options.hbm_budget_bytes = resolved_budget(sim, budget);
  options.patience = budget.patience;
  if (budget.max_measurements > 0)
    options.max_iterations = budget.max_measurements;

  // Per-mask aggregation of the observations the tuner makes along the way
  // (the online search has no separate measurement table). Repeated
  // observations of a mask — confirmation passes — average like the
  // runner's repetitions do, so the table is not min-biased under noise.
  struct Seen {
    RunningStats times;
  };
  std::vector<Seen> seen(space.size());
  int distinct = 0;
  const auto note = [&](ConfigMask mask, double time) {
    if (seen[mask].times.count() == 0) ++distinct;
    seen[mask].times.add(time);
  };

  // The tuner's first observation is the all-DDR baseline; every speedup
  // the hooks report is relative to it.
  options.on_baseline = [&](double time) {
    out.baseline_time = time;
    note(0, time);
    emit_progress(callbacks, name(), distinct, 0, time, 1.0);
  };

  double best_speedup = 1.0;
  options.on_step = [&](const OnlineStep& step) {
    const ConfigMask tried =
        step.kept ? step.mask
                  : step.mask ^ (ConfigMask{1} << step.moved_group);
    note(tried, step.observed_time);
    const double speedup = out.baseline_time / step.observed_time;
    if (step.kept) best_speedup = speedup;
    out.trajectory.push_back(
        {step.iteration, tried, step.observed_time, speedup, step.kept});
    emit_progress(callbacks, name(), distinct, tried, step.observed_time,
                  best_speedup);
  };

  OnlineTuner tuner(sim, ctx, options);
  OnlineResult result = tuner.tune(workload, space);

  out.chosen_mask = result.final_mask;
  out.chosen_time = result.final_time;
  out.speedup = result.speedup;
  out.measurements = result.iterations_used;
  out.configs_measured = distinct;
  for (ConfigMask mask = 0; mask < seen.size(); ++mask) {
    const auto& times = seen[mask].times;
    if (times.count() == 0) continue;
    ConfigResult r;
    r.mask = mask;
    r.mean_time = times.mean();
    r.stddev_time = times.stddev();
    r.speedup = result.baseline_time / times.mean();
    r.hbm_usage = space.hbm_usage(mask);
    r.groups_in_hbm = space.popcount(mask);
    out.table.push_back(r);
  }
  finish_outcome(out, space);
  return out;
}

// -------------------------------------------------------- estimator-guided

TuningOutcome EstimatorGuidedStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  HMPT_REQUIRE(budget.top_k >= 1, "estimator strategy needs top_k >= 1");
  ExperimentOptions options;
  options.repetitions = budget.repetitions;
  options.jobs = budget.jobs;
  ExperimentRunner runner(sim, ctx, options);

  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  const double cap = resolved_budget(sim, budget);
  const int n = space.num_groups();
  double best = 0.0;

  std::vector<char> measured(space.size(), 0);
  // Bookkeeping of one finished measurement. Batches measure in parallel
  // but record in batch order, and the simulator's noise streams are
  // order-independent, so the trajectory matches a serial run exactly.
  const auto record = [&](const ConfigResult& result) {
    measured[result.mask] = 1;
    ++out.configs_measured;
    const bool fits = space.hbm_bytes(result.mask) <= cap;
    const bool accepted = fits && result.speedup > best;
    if (accepted) {
      best = result.speedup;
      out.chosen_mask = result.mask;
      out.chosen_time = result.mean_time;
    }
    out.trajectory.push_back({out.configs_measured, result.mask,
                              result.mean_time, result.speedup, accepted});
    out.table.push_back(result);
    emit_progress(callbacks, name(), out.configs_measured, result.mask,
                  result.mean_time, best);
  };

  // Phase 1: baseline + the n single-group runs the estimator needs. The
  // singles are measured even when over budget — the fit needs them; only
  // the chosen placement must fit.
  ConfigResult baseline = runner.measure(workload, space, 0, 0.0);
  baseline.speedup = 1.0;
  out.baseline_time = baseline.mean_time;
  record(baseline);

  std::vector<ConfigMask> single_masks;
  for (int g = 0; g < n; ++g) single_masks.push_back(ConfigMask{1} << g);
  const auto single_results =
      runner.measure_batch(workload, space, single_masks, out.baseline_time);
  std::vector<double> singles(static_cast<std::size_t>(n), 1.0);
  for (int g = 0; g < n; ++g) {
    record(single_results[static_cast<std::size_t>(g)]);
    singles[static_cast<std::size_t>(g)] =
        single_results[static_cast<std::size_t>(g)].speedup;
  }

  // Phase 2: rank the unmeasured, budget-fitting configurations by the
  // linear estimate and measure only the top-k predicted.
  const LinearEstimator estimator(singles);
  std::vector<std::pair<double, ConfigMask>> ranked;
  for (ConfigMask mask = 0; mask < space.size(); ++mask) {
    if (measured[mask]) continue;
    if (space.hbm_bytes(mask) > cap) continue;
    ranked.emplace_back(estimator.estimate(mask), mask);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(budget.top_k),
                            ranked.size());
  std::vector<ConfigMask> top_masks;
  for (std::size_t i = 0; i < k; ++i) top_masks.push_back(ranked[i].second);
  for (const auto& result :
       runner.measure_batch(workload, space, top_masks, out.baseline_time))
    record(result);

  out.measurements = out.configs_measured * budget.repetitions;
  out.speedup = best;
  finish_outcome(out, space);
  return out;
}

}  // namespace hmpt::tuner
