#include "core/strategy.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/estimator.h"
#include "core/online.h"
#include "core/planner.h"
#include "core/report.h"
#include "obs/trace.h"

namespace hmpt::tuner {

std::vector<double> resolved_caps(const sim::MachineSimulator& sim,
                                  const TuningBudget& budget,
                                  int num_tiers) {
  std::vector<double> caps(static_cast<std::size_t>(num_tiers), 0.0);
  for (int t = 1; t < num_tiers; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (ti < budget.tier_budget_bytes.size() &&
        budget.tier_budget_bytes[ti] > 0.0)
      caps[ti] = budget.tier_budget_bytes[ti];
    else if (t == 1 && budget.hbm_budget_bytes > 0.0)
      caps[ti] = budget.hbm_budget_bytes;
    else
      caps[ti] = sim.machine().capacity_of_kind(
          static_cast<topo::PoolKind>(t));
  }
  return caps;
}

namespace {

/// Does every non-DDR tier of `mask` fit its capacity cap?
bool fits_caps(const ConfigSpace& space, ConfigMask mask,
               const std::vector<double>& caps) {
  for (int t = 1; t < space.num_tiers(); ++t)
    if (space.tier_bytes(mask, static_cast<topo::PoolKind>(t)) >
        caps[static_cast<std::size_t>(t)])
      return false;
  return true;
}

void emit_progress(const TuningCallbacks& callbacks, const std::string& name,
                   int configs_measured, ConfigMask mask, double time,
                   double best_speedup) {
  if (!callbacks.on_progress) return;
  callbacks.on_progress({name, configs_measured, mask, time, best_speedup});
}

/// Fill the placement-derived fields of a finished outcome.
void finish_outcome(TuningOutcome& out, const ConfigSpace& space) {
  out.num_tiers = space.num_tiers();
  out.chosen_placement = space.placement(out.chosen_mask);
  out.hbm_bytes = space.hbm_bytes(out.chosen_mask);
  out.hbm_usage = space.hbm_usage(out.chosen_mask);
  std::sort(out.table.begin(), out.table.end(),
            [](const ConfigResult& a, const ConfigResult& b) {
              return a.mask < b.mask;
            });
}

}  // namespace

std::string TuningOutcome::to_text() const {
  std::ostringstream os;
  os << "=== tuning: " << workload << " — strategy " << strategy
     << " ===\n\n";
  std::size_t total = 1;
  for (int g = 0; g < num_groups; ++g)
    total *= static_cast<std::size_t>(num_tiers);
  os << "configurations measured: " << configs_measured << " of " << total
     << " (" << measurements << " simulator runs, " << num_groups
     << " groups)\n";
  os << "all-DDR baseline: " << format_time(baseline_time) << "\n";
  os << "recommended placement: "
     << mask_label(chosen_mask, num_groups, num_tiers) << " at "
     << cell(speedup, 2) << "x, using " << format_bytes(hbm_bytes)
     << " of HBM (" << format_percent(hbm_usage) << " of footprint)\n";

  if (!trajectory.empty()) {
    Table steps({"step", "config", "time", "speedup", "accepted"});
    for (const auto& s : trajectory)
      steps.add_row({std::to_string(s.index),
                     mask_label(s.mask, num_groups, num_tiers),
                     format_time(s.observed_time), cell(s.speedup, 2) + "x",
                     s.accepted ? "yes" : "no"});
    os << "\ntrajectory:\n" << steps.to_text();
  }
  if (!configs().empty()) {
    Table rows({"config", "speedup", "HBM usage", "groups in HBM"});
    for (const auto& c : configs())
      rows.add_row({mask_label(c.mask, num_groups, num_tiers),
                    cell(c.speedup, 2) + "x", format_percent(c.hbm_usage),
                    std::to_string(c.groups_in_hbm)});
    os << "\nmeasured configurations:\n" << rows.to_text();
  }
  return os.str();
}

// --------------------------------------------------------------- registry

StrategyRegistry::StrategyRegistry() {
  add("exhaustive", [] { return std::make_unique<ExhaustiveStrategy>(); });
  add("online", [] { return std::make_unique<OnlineGreedyStrategy>(); });
  add("estimator",
      [] { return std::make_unique<EstimatorGuidedStrategy>(); });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::add(const std::string& name, Factory factory) {
  HMPT_REQUIRE(!name.empty(), "strategy name must not be empty");
  HMPT_REQUIRE(factory != nullptr, "strategy factory must not be null");
  HMPT_REQUIRE(!contains(name), "strategy already registered: " + name);
  factories_.emplace_back(name, std::move(factory));
}

bool StrategyRegistry::contains(const std::string& name) const {
  for (const auto& [key, factory] : factories_)
    if (key == name) return true;
  return false;
}

std::unique_ptr<TuningStrategy> StrategyRegistry::create(
    const std::string& name) const {
  for (const auto& [key, factory] : factories_)
    if (key == name) return factory();
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  raise("unknown tuning strategy: '" + name + "' (known: " + known + ")");
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<TuningStrategy> make_strategy(const std::string& name) {
  return StrategyRegistry::instance().create(name);
}

// ------------------------------------------------------------- exhaustive

TuningOutcome ExhaustiveStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  ExperimentOptions options;
  options.repetitions = budget.repetitions;
  options.gray_order = budget.gray_order;
  options.jobs = budget.jobs;
  ExperimentRunner runner(sim, ctx, options);

  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  const auto caps = resolved_caps(sim, budget, space.num_tiers());
  double best = 0.0;
  SweepResult sweep = [&] {
    obs::TraceSpan sweep_span("strategy", "sweep");
    sweep_span.arg_number("configs",
                          static_cast<std::uint64_t>(space.size()));
    return runner.sweep(workload, space, [&](const ConfigResult& result) {
      ++out.configs_measured;
      const bool accepted =
          fits_caps(space, result.mask, caps) && result.speedup > best;
      if (accepted) best = result.speedup;
      out.trajectory.push_back({out.configs_measured, result.mask,
                                result.mean_time, result.speedup, accepted});
      emit_progress(callbacks, name(), out.configs_measured, result.mask,
                    result.mean_time, best);
    });
  }();
  out.measurements = out.configs_measured * budget.repetitions;

  const PlanChoice chosen =
      CapacityPlanner(sweep, space).best_under_caps(caps);
  out.chosen_mask = chosen.mask;
  out.chosen_time = sweep.of(chosen.mask).mean_time;
  out.baseline_time = sweep.baseline_time;
  out.speedup = chosen.speedup;
  out.sweep = std::move(sweep);  // configs() serves the table from here
  finish_outcome(out, space);
  return out;
}

// ------------------------------------------------------------ online greedy

TuningOutcome OnlineGreedyStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  OnlineTunerOptions options;
  options.tier_budget_bytes = resolved_caps(sim, budget, space.num_tiers());
  options.patience = budget.patience;
  if (budget.max_measurements > 0)
    options.max_iterations = budget.max_measurements;

  // Per-mask aggregation of the observations the tuner makes along the way
  // (the online search has no separate measurement table). Repeated
  // observations of a mask — confirmation passes — average like the
  // runner's repetitions do, so the table is not min-biased under noise.
  struct Seen {
    RunningStats times;
  };
  std::vector<Seen> seen(space.size());
  int distinct = 0;
  const auto note = [&](ConfigMask mask, double time) {
    if (seen[mask].times.count() == 0) ++distinct;
    seen[mask].times.add(time);
  };

  // The tuner's first observation is the all-DDR baseline; every speedup
  // the hooks report is relative to it.
  options.on_baseline = [&](double time) {
    out.baseline_time = time;
    note(0, time);
    emit_progress(callbacks, name(), distinct, 0, time, 1.0);
  };

  double best_speedup = 1.0;
  options.on_step = [&](const OnlineStep& step) {
    note(step.tried_mask, step.observed_time);
    const double speedup = out.baseline_time / step.observed_time;
    if (step.kept) best_speedup = speedup;
    out.trajectory.push_back({step.iteration, step.tried_mask,
                              step.observed_time, speedup, step.kept});
    emit_progress(callbacks, name(), distinct, step.tried_mask,
                  step.observed_time, best_speedup);
  };

  OnlineTuner tuner(sim, ctx, options);
  OnlineResult result = [&] {
    obs::TraceSpan search_span("strategy", "search");
    search_span.arg_number("patience",
                           static_cast<std::uint64_t>(options.patience));
    return tuner.tune(workload, space);
  }();

  out.chosen_mask = result.final_mask;
  out.chosen_time = result.final_time;
  out.speedup = result.speedup;
  out.measurements = result.iterations_used;
  out.configs_measured = distinct;
  for (ConfigMask mask = 0; mask < seen.size(); ++mask) {
    const auto& times = seen[mask].times;
    if (times.count() == 0) continue;
    ConfigResult r;
    r.mask = mask;
    r.mean_time = times.mean();
    r.stddev_time = times.stddev();
    r.speedup = result.baseline_time / times.mean();
    r.hbm_usage = space.hbm_usage(mask);
    r.groups_in_hbm = space.popcount(mask);
    out.table.push_back(r);
  }
  finish_outcome(out, space);
  return out;
}

// -------------------------------------------------------- estimator-guided

TuningOutcome EstimatorGuidedStrategy::tune(
    sim::MachineSimulator& sim, sim::ExecutionContext ctx,
    const workloads::Workload& workload, const ConfigSpace& space,
    const TuningBudget& budget, const TuningCallbacks& callbacks) const {
  HMPT_REQUIRE(budget.top_k >= 1, "estimator strategy needs top_k >= 1");
  ExperimentOptions options;
  options.repetitions = budget.repetitions;
  options.jobs = budget.jobs;
  ExperimentRunner runner(sim, ctx, options);

  TuningOutcome out;
  out.strategy = name();
  out.workload = workload.name();
  out.num_groups = space.num_groups();

  const auto caps = resolved_caps(sim, budget, space.num_tiers());
  const int n = space.num_groups();
  const int tiers = space.num_tiers();
  double best = 0.0;

  std::vector<char> measured(space.size(), 0);
  // Bookkeeping of one finished measurement. Batches measure in parallel
  // but record in batch order, and the simulator's noise streams are
  // order-independent, so the trajectory matches a serial run exactly.
  const auto record = [&](const ConfigResult& result) {
    measured[result.mask] = 1;
    ++out.configs_measured;
    const bool accepted =
        fits_caps(space, result.mask, caps) && result.speedup > best;
    if (accepted) {
      best = result.speedup;
      out.chosen_mask = result.mask;
      out.chosen_time = result.mean_time;
    }
    out.trajectory.push_back({out.configs_measured, result.mask,
                              result.mean_time, result.speedup, accepted});
    out.table.push_back(result);
    emit_progress(callbacks, name(), out.configs_measured, result.mask,
                  result.mean_time, best);
  };

  // Phase 1: baseline + the n * (tiers - 1) single-group runs the
  // estimator needs — group g alone in each non-DDR tier. The singles are
  // measured even when over budget — the fit needs them; only the chosen
  // placement must fit.
  std::vector<ConfigMask> single_masks;
  for (int g = 0; g < n; ++g)
    for (int t = 1; t < tiers; ++t)
      single_masks.push_back(static_cast<ConfigMask>(t) *
                             config_place_value(g, tiers));
  std::vector<double> singles(single_masks.size(), 1.0);
  {
    obs::TraceSpan phase_span("strategy", "enumerate");
    phase_span.arg_number("singles",
                          static_cast<std::uint64_t>(single_masks.size()));
    ConfigResult baseline = runner.measure(workload, space, 0, 0.0);
    baseline.speedup = 1.0;
    out.baseline_time = baseline.mean_time;
    record(baseline);

    const auto single_results = runner.measure_batch(
        workload, space, single_masks, out.baseline_time);
    for (std::size_t i = 0; i < single_results.size(); ++i) {
      record(single_results[i]);
      singles[i] = single_results[i].speedup;
    }
  }

  // Phase 2: rank the unmeasured, budget-fitting configurations by the
  // linear estimate and measure only the top-k predicted.
  std::vector<ConfigMask> top_masks;
  {
    obs::TraceSpan phase_span("strategy", "estimate");
    const LinearEstimator estimator(singles, tiers);
    std::vector<std::pair<double, ConfigMask>> ranked;
    for (ConfigMask mask = 0; mask < space.size(); ++mask) {
      if (measured[mask]) continue;
      if (!fits_caps(space, mask, caps)) continue;
      ranked.emplace_back(estimator.estimate(mask), mask);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(budget.top_k),
                              ranked.size());
    for (std::size_t i = 0; i < k; ++i)
      top_masks.push_back(ranked[i].second);
    phase_span.arg_number("ranked",
                          static_cast<std::uint64_t>(ranked.size()));
    phase_span.arg_number("top_k", static_cast<std::uint64_t>(k));
  }
  {
    obs::TraceSpan phase_span("strategy", "measure");
    phase_span.arg_number("batch",
                          static_cast<std::uint64_t>(top_masks.size()));
    for (const auto& result : runner.measure_batch(workload, space, top_masks,
                                                   out.baseline_time))
      record(result);
  }

  out.measurements = out.configs_measured * budget.repetitions;
  out.speedup = best;
  finish_outcome(out, space);
  return out;
}

}  // namespace hmpt::tuner
