// estimator.h — the independent-groups linear speedup estimate.
//
// Fig. 7a's orange bars: the expected speedup of a configuration is the
// linear combination of the speedups its groups achieve individually,
// est(S) = 1 + sum_{g in S} (s({g}) - 1), i.e. groups are assumed not to
// interact. Comparing est against measured quantifies how independent the
// groups really are (bench/ablation_estimator sweeps this error).
#pragma once

#include <vector>

#include "core/experiment.h"

namespace hmpt::tuner {

class LinearEstimator {
 public:
  /// Fit from a full sweep: reads off the single-group configurations.
  explicit LinearEstimator(const SweepResult& sweep);
  /// Fit from explicit single-group speedups.
  explicit LinearEstimator(std::vector<double> single_speedups);

  int num_groups() const {
    return static_cast<int>(single_speedups_.size());
  }
  double single_speedup(int group) const;

  /// est(S) = 1 + sum over set bits of (s_i - 1).
  double estimate(ConfigMask mask) const;

  /// Estimates for every mask of an n-group space.
  std::vector<double> estimate_all() const;

 private:
  std::vector<double> single_speedups_;
};

/// Error statistics of the estimator against measured speedups.
struct EstimatorError {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double rmse = 0.0;
  ConfigMask worst_mask = 0;
};
EstimatorError estimator_error(const SweepResult& sweep,
                               const LinearEstimator& estimator);

}  // namespace hmpt::tuner
