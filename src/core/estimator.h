// estimator.h — the independent-groups linear speedup estimate.
//
// Fig. 7a's orange bars: the expected speedup of a configuration is the
// linear combination of the speedups its groups achieve individually,
// est(S) = 1 + sum_{g in S} (s({g}) - 1), i.e. groups are assumed not to
// interact. Comparing est against measured quantifies how independent the
// groups really are (bench/ablation_estimator sweeps this error).
//
// k-tier generalisation: a "single" is now one group moved alone to one
// non-DDR tier (everything else in DDR), so the fit needs n * (k - 1)
// probe configurations and est(config) = 1 + sum over non-DDR groups of
// (s(group alone in its tier) - 1). For k = 2 this is exactly the
// original estimator.
#pragma once

#include <vector>

#include "core/experiment.h"

namespace hmpt::tuner {

class LinearEstimator {
 public:
  /// Fit from a full sweep: reads off the single-group configurations of
  /// every non-DDR tier (the sweep knows its own tier count).
  explicit LinearEstimator(const SweepResult& sweep);
  /// Fit from explicit single-group speedups: `single_speedups` holds the
  /// speedup of group g alone in tier t at index g * (num_tiers - 1) +
  /// (t - 1). The one-argument form is the two-tier fit (one HBM single
  /// per group, the original constructor).
  explicit LinearEstimator(std::vector<double> single_speedups,
                           int num_tiers = 2);

  int num_groups() const { return num_groups_; }
  int num_tiers() const { return num_tiers_; }
  /// Speedup of `group` alone in HBM (tier 1).
  double single_speedup(int group) const;
  /// Speedup of `group` alone in non-DDR tier `tier` (1 <= tier < k).
  double single_speedup(int group, int tier) const;

  /// est(config) = 1 + sum over groups outside DDR of (s_{g,tier} - 1).
  double estimate(ConfigMask mask) const;

  /// Estimates for every configuration id of the space.
  std::vector<double> estimate_all() const;

 private:
  std::size_t configs() const;  ///< num_tiers ^ num_groups

  std::vector<double> single_speedups_;  ///< [g * (k-1) + (t-1)]
  int num_groups_ = 0;
  int num_tiers_ = 2;
};

/// Error statistics of the estimator against measured speedups.
struct EstimatorError {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double rmse = 0.0;
  ConfigMask worst_mask = 0;
};
EstimatorError estimator_error(const SweepResult& sweep,
                               const LinearEstimator& estimator);

}  // namespace hmpt::tuner
